//! Property-based tests for the §2.3 optimality model and the profit metric.

use proptest::prelude::*;
use watchman::core::theory::{
    expected_cost_savings_ratio, expected_miss_cost, lnc_star, lnc_star_skipping, optimal_knapsack,
    KnapsackItem,
};
use watchman::prelude::*;

fn item_strategy() -> impl Strategy<Value = KnapsackItem> {
    (0.01f64..1.0, 1.0f64..1_000.0, 1u64..40).prop_map(|(p, c, s)| KnapsackItem::new(p, c, s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn greedy_never_beats_the_exact_optimum(
        items in proptest::collection::vec(item_strategy(), 1..14),
        capacity in 1u64..300,
    ) {
        let greedy = lnc_star(&items, capacity);
        let skipping = lnc_star_skipping(&items, capacity);
        let optimal = optimal_knapsack(&items, capacity);
        prop_assert!(greedy.expected_saving <= optimal.expected_saving + 1e-9);
        prop_assert!(skipping.expected_saving <= optimal.expected_saving + 1e-9);
        // The skipping refinement never does worse than the plain greedy.
        prop_assert!(skipping.expected_saving >= greedy.expected_saving - 1e-9);
        // No selection exceeds the capacity.
        prop_assert!(greedy.total_size <= capacity);
        prop_assert!(skipping.total_size <= capacity);
        prop_assert!(optimal.total_size <= capacity);
    }

    #[test]
    fn theorem_one_equal_sizes_make_greedy_optimal(
        densities in proptest::collection::vec((0.01f64..1.0, 1.0f64..1_000.0), 1..12),
        size in 1u64..20,
        slots in 0usize..12,
    ) {
        // When every retrieved set has the same size, the cache can always be
        // filled exactly (assumption (11)), and Theorem 1 says the greedy
        // LNC* selection is optimal.
        let items: Vec<KnapsackItem> = densities
            .iter()
            .map(|&(p, c)| KnapsackItem::new(p, c, size))
            .collect();
        let capacity = size * slots as u64;
        let greedy = lnc_star(&items, capacity);
        let optimal = optimal_knapsack(&items, capacity);
        prop_assert!(
            (greedy.expected_saving - optimal.expected_saving).abs() < 1e-6,
            "greedy {} vs optimal {}",
            greedy.expected_saving,
            optimal.expected_saving
        );
    }

    #[test]
    fn miss_cost_and_savings_are_complementary(
        items in proptest::collection::vec(item_strategy(), 1..12),
        capacity in 1u64..200,
    ) {
        let selection = lnc_star_skipping(&items, capacity);
        let total: f64 = items.iter().map(|i| i.probability * i.cost).sum();
        let miss = expected_miss_cost(&items, &selection);
        prop_assert!((miss + selection.expected_saving - total).abs() < 1e-6);
        let csr = expected_cost_savings_ratio(&items, &selection);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&csr));
    }

    #[test]
    fn profit_ordering_is_monotone_in_cost_and_inverse_in_size(
        rate in 0.001f64..10.0,
        cost in 1.0f64..10_000.0,
        size in 1u64..1_000_000,
    ) {
        let base = Profit::of_set(rate, ExecutionCost::from_block_reads(cost), size);
        let pricier = Profit::of_set(rate, ExecutionCost::from_block_reads(cost * 2.0), size);
        let bigger = Profit::of_set(rate, ExecutionCost::from_block_reads(cost), size * 2);
        prop_assert!(pricier > base);
        prop_assert!(bigger < base);
    }

    #[test]
    fn list_profit_lies_between_member_extremes(
        members in proptest::collection::vec((0.001f64..5.0, 1.0f64..5_000.0, 1u64..10_000), 1..10),
    ) {
        let profits: Vec<Profit> = members
            .iter()
            .map(|&(r, c, s)| Profit::of_set(r, ExecutionCost::from_block_reads(c), s))
            .collect();
        let list = Profit::of_list(
            members
                .iter()
                .map(|&(r, c, s)| (r, ExecutionCost::from_block_reads(c), s)),
        );
        let min = profits.iter().copied().min().unwrap();
        let max = profits.iter().copied().max().unwrap();
        // The size-weighted aggregate profit is bounded by the member extremes.
        prop_assert!(list >= Profit::new(min.value() * (1.0 - 1e-9)));
        prop_assert!(list <= Profit::new(max.value() * (1.0 + 1e-9)));
    }

    #[test]
    fn reference_history_rate_never_exceeds_burst_rate(
        gaps in proptest::collection::vec(1u64..1_000_000, 1..20),
        k in 1usize..8,
    ) {
        // λ estimated from any window can never exceed one reference per the
        // smallest observed inter-arrival gap (scaled by the window size).
        let mut history = ReferenceHistory::new(k);
        let mut now = 0u64;
        for gap in &gaps {
            now += gap;
            history.record(Timestamp::from_micros(now));
        }
        let rate = history.rate(Timestamp::from_micros(now)).unwrap();
        prop_assert!(rate.is_finite());
        prop_assert!(rate > 0.0);
        // The window spans at least (samples - 1) minimum gaps (clamped to
        // one microsecond), which bounds the estimate from above.
        let min_gap = *gaps.iter().min().unwrap() as f64;
        let samples = history.sample_count() as f64;
        let min_elapsed = ((samples - 1.0) * min_gap).max(1.0);
        prop_assert!(rate <= samples / min_elapsed + 1e-9);
    }
}
