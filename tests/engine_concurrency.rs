//! Concurrency tests for the `watchman_core::engine` subsystem: single-flight
//! execution under thread pressure, and sharded-vs-unsharded statistics
//! equivalence.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use proptest::prelude::*;
use watchman::prelude::*;

/// N threads race over M keys; every key's fetch must run exactly once, no
/// matter how many sessions miss on it concurrently.
#[test]
fn single_flight_executes_each_miss_exactly_once() {
    const THREADS: usize = 8;
    const KEYS: usize = 24;
    const ROUNDS: usize = 6;

    let engine: Watchman<SizedPayload> = Watchman::builder()
        .shards(8)
        .policy(PolicyKind::LncRa { k: 4 })
        .capacity_bytes(64 << 20) // roomy: nothing is evicted mid-test
        .build();
    let executions: Vec<AtomicU64> = (0..KEYS).map(|_| AtomicU64::new(0)).collect();
    let executions = Arc::new(executions);
    let barrier = Arc::new(Barrier::new(THREADS));

    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let engine = engine.clone();
            let executions = Arc::clone(&executions);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    for offset in 0..KEYS {
                        // Interleave key order per thread so different
                        // sessions collide on the same key at the same time.
                        let key_index = (offset + thread * 3) % KEYS;
                        let key = QueryKey::new(format!("stress-query-{key_index}"));
                        let now = Timestamp::from_micros((round * KEYS + offset + 1) as u64);
                        let lookup = engine.get_or_execute(&key, now, || {
                            executions[key_index].fetch_add(1, Ordering::SeqCst);
                            // Keep the flight open long enough for others to
                            // pile up behind the leader.
                            std::thread::sleep(std::time::Duration::from_micros(300));
                            (
                                SizedPayload::new(256 + key_index as u64),
                                ExecutionCost::from_blocks(1_000),
                            )
                        });
                        assert_eq!(lookup.value.size_bytes(), 256 + key_index as u64);
                    }
                }
            });
        }
    });

    for (key_index, count) in executions.iter().enumerate() {
        assert_eq!(
            count.load(Ordering::SeqCst),
            1,
            "key {key_index} executed more than once despite single-flight"
        );
    }

    let snapshot = engine.stats_snapshot();
    let total_lookups = (THREADS * KEYS * ROUNDS) as u64;
    assert_eq!(
        snapshot.total.references + snapshot.coalesced_misses,
        total_lookups,
        "every lookup is a shard reference or a coalesced wait"
    );
    assert_eq!(
        snapshot.total.misses(),
        KEYS as u64,
        "one recorded miss per key"
    );
    assert_eq!(snapshot.entries, KEYS);
}

/// Replays a synthetic operation sequence through a sharded engine and an
/// unsharded one; with capacity for everything (no evictions), the aggregate
/// statistics must be identical.
fn op_strategy() -> impl Strategy<Value = (u8, u64, u64, u64)> {
    (0u8..60, 1u64..4_000, 1u64..20_000, 1u64..2_000_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_aggregate_stats_match_unsharded_without_evictions(
        ops in proptest::collection::vec(op_strategy(), 1..300),
        shards in 2usize..12,
    ) {
        let capacity = 1u64 << 40; // effectively infinite: no evictions
        let sharded: Watchman<SizedPayload> = Watchman::builder()
            .shards(shards)
            .policy(PolicyKind::LncRa { k: 4 })
            .capacity_bytes(capacity)
            .build();
        let unsharded: Watchman<SizedPayload> = Watchman::builder()
            .shards(1)
            .policy(PolicyKind::LncRa { k: 4 })
            .capacity_bytes(capacity)
            .build();

        let mut now = 0u64;
        for &(query, size, cost, advance) in &ops {
            now += advance;
            let key = QueryKey::new(format!("prop-query-{query}"));
            let ts = Timestamp::from_micros(now);
            for engine in [&sharded, &unsharded] {
                engine.get_or_execute(&key, ts, || {
                    (SizedPayload::new(size), ExecutionCost::from_blocks(cost))
                });
            }
        }

        let a = sharded.stats_snapshot();
        let b = unsharded.stats_snapshot();
        prop_assert_eq!(&a.total, &b.total, "aggregate stats diverged at {} shards", shards);
        prop_assert_eq!(a.used_bytes, b.used_bytes);
        prop_assert_eq!(a.entries, b.entries);
        prop_assert_eq!(a.per_shard.len(), shards);
        // Per-shard counters must partition the totals exactly.
        let refs: u64 = a.per_shard.iter().map(|s| s.references).sum();
        prop_assert_eq!(refs, a.total.references);
    }

    #[test]
    fn sharded_replay_partitions_every_counter(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        // Small capacity: evictions and rejections happen, and the per-shard
        // counters must still sum to the aggregate.
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(4)
            .policy(PolicyKind::LncRa { k: 4 })
            .capacity_bytes(50_000)
            .build();
        let mut now = 0u64;
        for &(query, size, cost, advance) in &ops {
            now += advance;
            let key = QueryKey::new(format!("prop-query-{query}"));
            engine.get_or_execute(&key, Timestamp::from_micros(now), || {
                (SizedPayload::new(size), ExecutionCost::from_blocks(cost))
            });
        }
        let snapshot = engine.stats_snapshot();
        let mut summed = CacheStats::new();
        for shard in &snapshot.per_shard {
            summed.merge(shard);
        }
        prop_assert_eq!(&summed, &snapshot.total);
        prop_assert!(engine.used_bytes() <= engine.capacity_bytes());
    }
}
