//! Concurrency tests for the `watchman_core::engine` subsystem: single-flight
//! execution under thread pressure, and sharded-vs-unsharded statistics
//! equivalence.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use proptest::prelude::*;
use watchman::prelude::*;

/// N threads race over M keys; every key's fetch must run exactly once, no
/// matter how many sessions miss on it concurrently.
#[test]
fn single_flight_executes_each_miss_exactly_once() {
    const THREADS: usize = 8;
    const KEYS: usize = 24;
    const ROUNDS: usize = 6;

    let engine: Watchman<SizedPayload> = Watchman::builder()
        .shards(8)
        .policy(PolicyKind::LncRa { k: 4 })
        .capacity_bytes(64 << 20) // roomy: nothing is evicted mid-test
        .build();
    let executions: Vec<AtomicU64> = (0..KEYS).map(|_| AtomicU64::new(0)).collect();
    let executions = Arc::new(executions);
    let barrier = Arc::new(Barrier::new(THREADS));

    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let engine = engine.clone();
            let executions = Arc::clone(&executions);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    for offset in 0..KEYS {
                        // Interleave key order per thread so different
                        // sessions collide on the same key at the same time.
                        let key_index = (offset + thread * 3) % KEYS;
                        let key = QueryKey::new(format!("stress-query-{key_index}"));
                        let now = Timestamp::from_micros((round * KEYS + offset + 1) as u64);
                        let lookup = engine.get_or_execute(&key, now, || {
                            executions[key_index].fetch_add(1, Ordering::SeqCst);
                            // Keep the flight open long enough for others to
                            // pile up behind the leader.
                            std::thread::sleep(std::time::Duration::from_micros(300));
                            (
                                SizedPayload::new(256 + key_index as u64),
                                ExecutionCost::from_blocks(1_000),
                            )
                        });
                        assert_eq!(lookup.value.size_bytes(), 256 + key_index as u64);
                    }
                }
            });
        }
    });

    for (key_index, count) in executions.iter().enumerate() {
        assert_eq!(
            count.load(Ordering::SeqCst),
            1,
            "key {key_index} executed more than once despite single-flight"
        );
    }

    let snapshot = engine.stats_snapshot();
    let total_lookups = (THREADS * KEYS * ROUNDS) as u64;
    assert_eq!(
        snapshot.total.references, total_lookups,
        "every lookup records exactly one reference (hit, miss or coalesced)"
    );
    assert_eq!(
        snapshot.total.references,
        snapshot.total.hits + snapshot.total.misses() + snapshot.total.coalesced,
        "references must partition into hits, misses and coalesced waits"
    );
    assert_eq!(
        snapshot.coalesced_misses, snapshot.total.coalesced,
        "engine counter and stats counter must agree"
    );
    assert_eq!(
        snapshot.total.misses(),
        KEYS as u64,
        "one recorded miss per key"
    );
    // Coalesced references are hit-equivalent: they saved the leader's cost,
    // so the saved-cost accumulator must cover them.
    assert!(snapshot.total.saved_cost <= snapshot.total.total_cost + 1e-9);
    assert_eq!(snapshot.entries, KEYS);
}

/// Rebalancing under real thread pressure: sessions hammer a small sharded
/// cache while the engine's **background runtime task** moves capacity
/// between shards (passes every 2 ms — never on a session thread), and a
/// monitor thread snapshots the engine throughout.  Conservation
/// (Σ per-shard capacity == configured total) and occupancy
/// (used ≤ capacity per shard) must hold in every snapshot.
#[test]
fn rebalancing_conserves_capacity_under_concurrent_traffic() {
    const THREADS: usize = 4;
    const OPS_PER_THREAD: usize = 3_000;
    const TOTAL: u64 = 100_000;

    let engine: Watchman<SizedPayload> = Watchman::builder()
        .shards(8)
        .policy(PolicyKind::LncRa { k: 4 })
        .capacity_bytes(TOTAL)
        .rebalance(
            RebalanceConfig::new()
                .with_period(std::time::Duration::from_millis(2))
                .with_min_shard_fraction(0.25)
                .with_step_fraction(0.1),
        )
        .build();
    let done = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let engine = engine.clone();
            let done = Arc::clone(&done);
            scope.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    // A skewed keyspace: a small hot set plus a one-off tail.
                    let hot = (i % 7) + thread;
                    let name = if i % 3 == 0 {
                        format!("tail-{thread}-{i}")
                    } else {
                        format!("hot-{hot}")
                    };
                    let now = Timestamp::from_micros((thread * OPS_PER_THREAD + i + 1) as u64);
                    engine.get_or_execute(&QueryKey::new(name), now, || {
                        (
                            SizedPayload::new(500 + (i as u64 % 11) * 400),
                            ExecutionCost::from_blocks(10 + (i as u64 % 5) * 10_000),
                        )
                    });
                }
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Monitor: the invariants must hold in every mid-flight snapshot.
        let engine = engine.clone();
        let done = Arc::clone(&done);
        scope.spawn(move || {
            let mut checks = 0u64;
            while done.load(Ordering::SeqCst) < THREADS as u64 {
                let snapshot = engine.stats_snapshot();
                assert_eq!(
                    snapshot.per_shard_capacity.iter().sum::<u64>(),
                    TOTAL,
                    "capacity not conserved mid-rebalance"
                );
                for (shard, (&used, &capacity)) in snapshot
                    .per_shard_used
                    .iter()
                    .zip(&snapshot.per_shard_capacity)
                    .enumerate()
                {
                    assert!(
                        used <= capacity,
                        "shard {shard} occupancy {used} exceeds capacity {capacity}"
                    );
                }
                checks += 1;
            }
            assert!(checks > 0);
        });
    });

    let snapshot = engine.stats_snapshot();
    assert_eq!(snapshot.per_shard_capacity.iter().sum::<u64>(), TOTAL);
    assert_eq!(snapshot.capacity_bytes, TOTAL);
    assert_eq!(
        snapshot.total.references,
        (THREADS * OPS_PER_THREAD) as u64,
        "one recorded reference per lookup, coalesced included"
    );
    let floor = (0.25 * (TOTAL / 8) as f64) as u64;
    assert!(
        snapshot.per_shard_capacity.iter().all(|&c| c >= floor),
        "floor violated: {:?}",
        snapshot.per_shard_capacity
    );
}

/// Replays a synthetic operation sequence through a sharded engine and an
/// unsharded one; with capacity for everything (no evictions), the aggregate
/// statistics must be identical.
fn op_strategy() -> impl Strategy<Value = (u8, u64, u64, u64)> {
    (0u8..60, 1u64..4_000, 1u64..20_000, 1u64..2_000_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_aggregate_stats_match_unsharded_without_evictions(
        ops in proptest::collection::vec(op_strategy(), 1..300),
        shards in 2usize..12,
    ) {
        let capacity = 1u64 << 40; // effectively infinite: no evictions
        let sharded: Watchman<SizedPayload> = Watchman::builder()
            .shards(shards)
            .policy(PolicyKind::LncRa { k: 4 })
            .capacity_bytes(capacity)
            .build();
        let unsharded: Watchman<SizedPayload> = Watchman::builder()
            .shards(1)
            .policy(PolicyKind::LncRa { k: 4 })
            .capacity_bytes(capacity)
            .build();

        let mut now = 0u64;
        for &(query, size, cost, advance) in &ops {
            now += advance;
            let key = QueryKey::new(format!("prop-query-{query}"));
            let ts = Timestamp::from_micros(now);
            for engine in [&sharded, &unsharded] {
                engine.get_or_execute(&key, ts, || {
                    (SizedPayload::new(size), ExecutionCost::from_blocks(cost))
                });
            }
        }

        let a = sharded.stats_snapshot();
        let b = unsharded.stats_snapshot();
        prop_assert_eq!(&a.total, &b.total, "aggregate stats diverged at {} shards", shards);
        prop_assert_eq!(a.used_bytes, b.used_bytes);
        prop_assert_eq!(a.entries, b.entries);
        prop_assert_eq!(a.per_shard.len(), shards);
        // Per-shard counters must partition the totals exactly.
        let refs: u64 = a.per_shard.iter().map(|s| s.references).sum();
        prop_assert_eq!(refs, a.total.references);
    }

    #[test]
    fn sharded_replay_partitions_every_counter(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        // Small capacity: evictions and rejections happen, and the per-shard
        // counters must still sum to the aggregate.
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(4)
            .policy(PolicyKind::LncRa { k: 4 })
            .capacity_bytes(50_000)
            .build();
        let mut now = 0u64;
        for &(query, size, cost, advance) in &ops {
            now += advance;
            let key = QueryKey::new(format!("prop-query-{query}"));
            engine.get_or_execute(&key, Timestamp::from_micros(now), || {
                (SizedPayload::new(size), ExecutionCost::from_blocks(cost))
            });
        }
        let snapshot = engine.stats_snapshot();
        let mut summed = CacheStats::new();
        for shard in &snapshot.per_shard {
            summed.merge(shard);
        }
        prop_assert_eq!(&summed, &snapshot.total);
        prop_assert!(engine.used_bytes() <= engine.capacity_bytes());
    }

    #[test]
    fn rebalancing_replay_upholds_conservation_and_occupancy(
        ops in proptest::collection::vec(op_strategy(), 50..250),
        shards in 2usize..9,
    ) {
        // Small capacity + aggressive rebalancing (driver-scheduled every 16
        // ops, the deterministic analogue of the background task): capacity
        // moves while the replay runs, and after every operation
        // Σ capacity == total and used ≤ capacity per shard.
        let capacity = 40_000u64;
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(shards)
            .policy(PolicyKind::LncRa { k: 4 })
            .capacity_bytes(capacity)
            .rebalance(
                RebalanceConfig::new()
                    .manual()
                    .with_min_shard_fraction(0.25)
                    .with_step_fraction(0.2),
            )
            .build();
        let mut now = 0u64;
        for (i, &(query, size, cost, advance)) in ops.iter().enumerate() {
            now += advance;
            let key = QueryKey::new(format!("prop-query-{query}"));
            engine.get_or_execute(&key, Timestamp::from_micros(now), || {
                (SizedPayload::new(size), ExecutionCost::from_blocks(cost))
            });
            if i % 16 == 15 {
                engine.rebalance_now(Timestamp::from_micros(now));
            }
            let snapshot = engine.stats_snapshot();
            prop_assert_eq!(
                snapshot.per_shard_capacity.iter().sum::<u64>(),
                capacity,
                "conservation violated after {} rebalances",
                snapshot.rebalances
            );
            for shard in 0..shards {
                prop_assert!(
                    snapshot.per_shard_used[shard] <= snapshot.per_shard_capacity[shard],
                    "shard {} occupancy {} exceeds its capacity {}",
                    shard,
                    snapshot.per_shard_used[shard],
                    snapshot.per_shard_capacity[shard]
                );
            }
        }
    }
}
