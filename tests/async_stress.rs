//! Async execution stress tests: many session tasks on a multi-worker
//! runtime racing through [`Watchman::get_or_execute_async`], plus the
//! abandoned-flight takeover protocol and runtime lifecycle guarantees.
//!
//! CI runs this suite as its dedicated async stress step
//! (`cargo test --test async_stress`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use watchman::prelude::*;

fn engine(shards: usize, capacity: u64, workers: usize) -> Watchman<SizedPayload> {
    Watchman::builder()
        .shards(shards)
        .policy(PolicyKind::LncRa { k: 4 })
        .capacity_bytes(capacity)
        .runtime_workers(workers)
        .build()
}

/// Many more sessions than runtime workers race over a small key set; every
/// key's fetch must execute exactly once, and suspended sessions must not
/// hold worker threads (the pool has 4 workers for 32 sessions — if waiters
/// blocked workers, the leaders' fetches could never run and this would
/// deadlock).
#[test]
fn async_single_flight_executes_each_miss_exactly_once() {
    const SESSIONS: usize = 32;
    const KEYS: usize = 12;
    const ROUNDS: usize = 4;

    let engine = engine(8, 64 << 20, 4);
    let runtime = engine.runtime();
    let executions: Arc<Vec<AtomicU64>> = Arc::new((0..KEYS).map(|_| AtomicU64::new(0)).collect());

    let handles: Vec<_> = (0..SESSIONS)
        .map(|session| {
            let engine = engine.clone();
            let executions = Arc::clone(&executions);
            runtime.spawn(async move {
                for round in 0..ROUNDS {
                    for offset in 0..KEYS {
                        let key_index = (offset + session * 5) % KEYS;
                        let key = QueryKey::new(format!("stress-{key_index}"));
                        let now = Timestamp::from_micros((round * KEYS + offset + 1) as u64);
                        let executions = Arc::clone(&executions);
                        let lookup = engine
                            .get_or_execute_async(&key, now, move || {
                                executions[key_index].fetch_add(1, Ordering::SeqCst);
                                // Hold the flight open long enough for other
                                // sessions to pile up behind the leader.
                                std::thread::sleep(Duration::from_micros(500));
                                (
                                    SizedPayload::new(256 + key_index as u64),
                                    ExecutionCost::from_blocks(1_000),
                                )
                            })
                            .await;
                        assert_eq!(lookup.value.size_bytes(), 256 + key_index as u64);
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        block_on(handle).expect("session task completed");
    }

    for (key_index, count) in executions.iter().enumerate() {
        assert_eq!(
            count.load(Ordering::SeqCst),
            1,
            "key {key_index} executed more than once despite single-flight"
        );
    }
    let snapshot = engine.stats_snapshot();
    let total_lookups = (SESSIONS * KEYS * ROUNDS) as u64;
    assert_eq!(snapshot.total.references, total_lookups);
    assert_eq!(
        snapshot.total.references,
        snapshot.total.hits + snapshot.total.coalesced + snapshot.total.misses(),
        "references must partition into hits, coalesced waits and misses"
    );
    assert_eq!(snapshot.coalesced_misses, snapshot.total.coalesced);
    assert_eq!(snapshot.total.misses(), KEYS as u64, "one miss per key");
    assert!(
        snapshot.total.coalesced > 0,
        "32 sessions over 12 keys must coalesce somewhere"
    );
}

/// The leader-kill regression under the async path: the first leader's fetch
/// panics mid-flight while a crowd of sessions waits.  Exactly one waiter
/// must take over (total fetch attempts == 2), every surviving session must
/// be served the takeover value, and the leader's own session must observe
/// the panic.
#[test]
fn killed_async_leader_hands_over_to_exactly_one_waiter() {
    const WAITERS: usize = 12;

    let engine = engine(1, 1 << 20, 4);
    let runtime = engine.runtime();
    let attempts = Arc::new(AtomicU64::new(0));
    let key = QueryKey::new("doomed-leader");

    // The doomed leader: claims the flight, then dies mid-fetch.
    let leader = {
        let engine = engine.clone();
        let attempts = Arc::clone(&attempts);
        let key = key.clone();
        runtime.spawn(async move {
            engine
                .get_or_execute_async(&key, Timestamp::from_micros(1), move || {
                    attempts.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(30));
                    panic!("warehouse connection lost mid-fetch");
                })
                .await
        })
    };
    // Spawn the waiters only after the doomed leader has really claimed the
    // flight (its fetch started) — a fixed sleep is racy on a loaded box.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while attempts.load(Ordering::SeqCst) == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "leader never started its fetch"
        );
        std::thread::yield_now();
    }

    let waiters: Vec<_> = (0..WAITERS)
        .map(|i| {
            let engine = engine.clone();
            let attempts = Arc::clone(&attempts);
            let key = key.clone();
            runtime.spawn(async move {
                let lookup = engine
                    .get_or_execute_async(&key, Timestamp::from_micros(2 + i as u64), move || {
                        attempts.fetch_add(1, Ordering::SeqCst);
                        (SizedPayload::new(777), ExecutionCost::from_blocks(10))
                    })
                    .await;
                assert_eq!(
                    lookup.value.size_bytes(),
                    777,
                    "waiter served the takeover leader's value"
                );
                lookup.source
            })
        })
        .collect();

    // The leader task panicked (the fetch's panic is re-raised on its
    // session), surfacing through its join handle.
    assert_eq!(
        block_on(leader).unwrap_err(),
        JoinError::Panicked,
        "leader session must re-raise the fetch panic"
    );
    let mut executed = 0;
    for waiter in waiters {
        match block_on(waiter).expect("waiter session completed") {
            LookupSource::Executed => executed += 1,
            LookupSource::Coalesced | LookupSource::Hit => {}
            LookupSource::Stale => unreachable!("stale needs the fallible path"),
        }
    }
    assert_eq!(executed, 1, "exactly one waiter becomes the new leader");
    assert_eq!(
        attempts.load(Ordering::SeqCst),
        2,
        "doomed fetch once, takeover fetch once — no thundering herd of retries"
    );
    assert!(engine.contains(&key));
}

/// The background rebalancer keeps capacity conserved while async sessions
/// hammer the engine, and it stops when the engine is dropped even though
/// the runtime (shared, external) lives on.
#[test]
fn background_rebalancer_under_async_traffic_conserves_and_shuts_down() {
    const SESSIONS: usize = 4;
    const OPS_PER_SESSION: usize = 1_500;
    const TOTAL: u64 = 100_000;

    let runtime = Arc::new(Runtime::with_workers(3));
    let engine: Watchman<SizedPayload> = Watchman::builder()
        .shards(8)
        .policy(PolicyKind::LncRa { k: 4 })
        .capacity_bytes(TOTAL)
        .runtime(Arc::clone(&runtime))
        .rebalance(
            RebalanceConfig::new()
                .with_period(Duration::from_millis(2))
                .with_min_shard_fraction(0.25)
                .with_step_fraction(0.1),
        )
        .build();

    let done = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..SESSIONS)
        .map(|session| {
            let engine = engine.clone();
            let done = Arc::clone(&done);
            runtime.spawn(async move {
                for i in 0..OPS_PER_SESSION {
                    // A skewed keyspace: a small hot set plus a one-off tail.
                    let name = if i % 3 == 0 {
                        format!("tail-{session}-{i}")
                    } else {
                        format!("hot-{}", (i % 7) + session)
                    };
                    let now = Timestamp::from_micros((session * OPS_PER_SESSION + i + 1) as u64);
                    engine
                        .get_or_execute_async(&QueryKey::new(name), now, move || {
                            (
                                SizedPayload::new(500 + (i as u64 % 11) * 400),
                                ExecutionCost::from_blocks(10 + (i as u64 % 5) * 10_000),
                            )
                        })
                        .await;
                }
                done.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();

    // Monitor from this thread while the sessions run: conservation and
    // occupancy must hold in every snapshot, mid-pass included.
    let mut checks = 0u64;
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while done.load(Ordering::SeqCst) < SESSIONS as u64 {
        assert!(
            std::time::Instant::now() < deadline,
            "sessions never finished"
        );
        let snapshot = engine.stats_snapshot();
        assert_eq!(
            snapshot.per_shard_capacity.iter().sum::<u64>(),
            TOTAL,
            "capacity not conserved mid-rebalance"
        );
        for (shard, (&used, &capacity)) in snapshot
            .per_shard_used
            .iter()
            .zip(&snapshot.per_shard_capacity)
            .enumerate()
        {
            assert!(used <= capacity, "shard {shard} over capacity");
        }
        checks += 1;
    }
    assert!(checks > 0);
    for handle in handles {
        block_on(handle).expect("session task completed");
    }

    let snapshot = engine.stats_snapshot();
    assert_eq!(
        snapshot.total.references,
        (SESSIONS * OPS_PER_SESSION) as u64,
        "one recorded reference per lookup, coalesced included"
    );

    // Drop the engine: its background task must exit even though the shared
    // runtime lives on.
    drop(engine);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while runtime.alive_tasks() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "background rebalance task outlived its engine"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Sync and async front doors produce identical statistics on the same
/// deterministic replay (the concurrent-engine acceptance criterion, here at
/// the facade level with a real TPC-D trace via the sim drivers).
#[test]
fn tpcd_trace_sync_and_async_replays_are_byte_identical() {
    let workload = Workload::tpcd(ExperimentScale::quick(2_000).with_seed(42));
    let capacity = (workload.database_bytes() as f64 * 0.01).round() as u64;
    let build = || -> Watchman<SizedPayload> {
        Watchman::builder()
            .shards(8)
            .policy(PolicyKind::LncRa { k: 4 })
            .capacity_bytes(capacity)
            .build()
    };
    let sync_engine = build();
    let async_engine = build();
    let via_sync = replay_trace_engine(&workload.trace, &sync_engine, 0.01);
    let via_async = watchman::sim::replay_trace_engine_async(&workload.trace, &async_engine, 0.01);
    assert_eq!(via_sync, via_async);
    assert_eq!(sync_engine.stats_snapshot(), async_engine.stats_snapshot());
}
