//! Property-based tests over the cache policies.
//!
//! Random operation sequences are replayed against every policy and the
//! structural invariants that all of them must uphold are checked:
//!
//! * occupancy never exceeds capacity;
//! * byte accounting matches the sum of cached payload sizes;
//! * `contains` agrees with `get`;
//! * the statistics counters are internally consistent;
//! * replays are deterministic.

use proptest::prelude::*;
use watchman::prelude::*;

/// One synthetic query class in the generated workloads.
#[derive(Debug, Clone)]
struct Op {
    /// Which query (small id space so that repetitions occur).
    query: u8,
    /// Retrieved-set size in bytes.
    size: u64,
    /// Execution cost in block reads.
    cost: u64,
    /// Logical time increment before the operation.
    advance_us: u64,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..40, 1u64..4_000, 1u64..20_000, 1u64..5_000_000).prop_map(
        |(query, size, cost, advance_us)| Op {
            query,
            size,
            cost,
            advance_us,
        },
    )
}

fn policies(capacity: u64) -> Vec<Box<dyn QueryCache<SizedPayload> + Send>> {
    PolicyKind::all()
        .into_iter()
        .map(|kind| kind.build(capacity))
        .collect()
}

/// Replays the operations against one policy, checking invariants after every
/// step, and returns (hits, admissions).
fn replay_checked(cache: &mut dyn QueryCache<SizedPayload>, ops: &[Op]) -> (u64, u64) {
    let mut now = 0u64;
    for op in ops {
        now += op.advance_us;
        let key = QueryKey::new(format!("prop-query-{}", op.query));
        let ts = Timestamp::from_micros(now);
        let hit = cache.get(&key, ts).is_some();
        assert_eq!(
            hit,
            cache.contains(&key),
            "{}: get and contains disagree",
            cache.name()
        );
        if !hit {
            let outcome = cache.insert(
                key.clone(),
                SizedPayload::new(op.size),
                ExecutionCost::from_blocks(op.cost),
                ts,
            );
            if outcome.is_cached() {
                assert!(
                    cache.contains(&key),
                    "{}: admitted set must be resident",
                    cache.name()
                );
            }
            for evicted in outcome.evicted() {
                assert!(
                    !cache.contains(evicted),
                    "{}: evicted key still resident",
                    cache.name()
                );
            }
        }
        assert!(
            cache.used_bytes() <= cache.capacity_bytes(),
            "{}: occupancy {} exceeds capacity {}",
            cache.name(),
            cache.used_bytes(),
            cache.capacity_bytes()
        );
        let stats = cache.stats();
        assert!(stats.hits <= stats.references);
        assert!(stats.saved_cost <= stats.total_cost + 1e-9);
        assert!(stats.admissions + stats.rejections <= stats.insertions_offered);
    }
    (cache.stats().hits, cache.stats().admissions)
}

/// Shared helper for the dynamic-capacity property: shrinks the cache below
/// its occupancy, then grows it back, checking the `set_capacity_bytes`
/// contract at every step — the capacity invariant is restored by real,
/// stats-counted evictions; growing (or shrinking into free space) evicts
/// nothing.
fn check_capacity_resize(cache: &mut dyn QueryCache<SizedPayload>, now: Timestamp) {
    let original_capacity = cache.capacity_bytes();
    let used = cache.used_bytes();
    let entries = cache.len();
    let evictions_before = cache.stats().evictions;

    // Shrink to half the occupancy: the overshoot must be evicted.
    let target = used / 2;
    let evicted = cache.set_capacity_bytes(target, now);
    assert_eq!(
        cache.capacity_bytes(),
        target,
        "{}: capacity must track the shrink",
        cache.name()
    );
    assert!(
        cache.used_bytes() <= target,
        "{}: occupancy {} exceeds shrunk capacity {}",
        cache.name(),
        cache.used_bytes(),
        target
    );
    for key in &evicted {
        assert!(
            !cache.contains(key),
            "{}: shrink victim still resident",
            cache.name()
        );
    }
    assert_eq!(
        cache.len(),
        entries - evicted.len(),
        "{}: every shrink victim must be reported",
        cache.name()
    );
    assert_eq!(
        cache.stats().evictions,
        evictions_before + evicted.len() as u64,
        "{}: shrink evictions must be recorded in the statistics",
        cache.name()
    );
    if used > 0 {
        assert!(
            !evicted.is_empty(),
            "{}: shrinking below occupancy must evict something",
            cache.name()
        );
    }

    // Grow back: free capacity appears, nothing else changes.
    let survivors = cache.len();
    let evicted = cache.set_capacity_bytes(original_capacity, now);
    assert!(
        evicted.is_empty(),
        "{}: growing must never evict",
        cache.name()
    );
    assert_eq!(cache.capacity_bytes(), original_capacity);
    assert_eq!(cache.len(), survivors);

    // Shrink to zero: everything must go.
    let evicted = cache.set_capacity_bytes(0, now);
    assert_eq!(
        evicted.len(),
        survivors,
        "{}: shrink-to-zero evicts all",
        cache.name()
    );
    assert_eq!(cache.used_bytes(), 0);
    assert_eq!(cache.len(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_policies_uphold_structural_invariants(
        ops in proptest::collection::vec(op_strategy(), 1..250),
        capacity in 1_000u64..200_000,
    ) {
        for mut cache in policies(capacity) {
            replay_checked(cache.as_mut(), &ops);
            // Clearing always resets occupancy.
            cache.clear();
            prop_assert_eq!(cache.used_bytes(), 0);
            prop_assert_eq!(cache.len(), 0);
        }
    }

    #[test]
    fn set_capacity_shrink_grow_semantics_hold_for_every_policy(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        capacity in 2_000u64..150_000,
    ) {
        let mut now = 0u64;
        for op in &ops {
            now += op.advance_us;
        }
        let end = Timestamp::from_micros(now + 1);
        for mut cache in policies(capacity) {
            replay_checked(cache.as_mut(), &ops);
            check_capacity_resize(cache.as_mut(), end);
        }
    }

    #[test]
    fn replays_are_deterministic(
        ops in proptest::collection::vec(op_strategy(), 1..150),
        capacity in 1_000u64..100_000,
    ) {
        for kind in PolicyKind::all() {
            let mut a = kind.build(capacity);
            let mut b = kind.build(capacity);
            let ra = replay_checked(a.as_mut(), &ops);
            let rb = replay_checked(b.as_mut(), &ops);
            prop_assert_eq!(ra, rb, "{} diverged between identical replays", kind);
            prop_assert_eq!(a.stats(), b.stats());
        }
    }

    #[test]
    fn unbounded_lnc_ra_never_misses_twice(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        // With unlimited capacity every distinct query misses exactly once.
        let mut cache: LncCache<SizedPayload> = LncCache::new(LncConfig::unbounded());
        let mut distinct = std::collections::HashSet::new();
        let mut now = 0u64;
        for op in &ops {
            now += op.advance_us;
            let key = QueryKey::new(format!("prop-query-{}", op.query));
            distinct.insert(op.query);
            let ts = Timestamp::from_micros(now);
            if cache.get(&key, ts).is_none() {
                cache.insert(
                    key,
                    SizedPayload::new(op.size),
                    ExecutionCost::from_blocks(op.cost),
                    ts,
                );
            }
        }
        prop_assert_eq!(cache.stats().misses(), distinct.len() as u64);
        prop_assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn csr_is_always_a_valid_ratio(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        capacity in 1_000u64..50_000,
    ) {
        for mut cache in policies(capacity) {
            replay_checked(cache.as_mut(), &ops);
            let stats = cache.stats();
            let csr = stats.cost_savings_ratio();
            let hr = stats.hit_ratio();
            prop_assert!((0.0..=1.0).contains(&csr), "{}: CSR {}", cache.name(), csr);
            prop_assert!((0.0..=1.0).contains(&hr), "{}: HR {}", cache.name(), hr);
        }
    }
}
