//! End-to-end integration tests spanning every crate: warehouse → trace →
//! cache policies → metrics, exercised through the public facade.

use watchman::prelude::*;

fn tpcd_workload(queries: usize, seed: u64) -> Workload {
    Workload::tpcd(ExperimentScale::quick(queries).with_seed(seed))
}

#[test]
fn full_pipeline_is_deterministic() {
    let a = tpcd_workload(1_000, 11);
    let b = tpcd_workload(1_000, 11);
    assert_eq!(a.trace, b.trace);
    let run_a = run_policy(&a.trace, PolicyKind::LNC_RA, 0.01);
    let run_b = run_policy(&b.trace, PolicyKind::LNC_RA, 0.01);
    assert_eq!(run_a, run_b);
}

#[test]
fn no_policy_beats_the_infinite_cache() {
    let workload = tpcd_workload(1_500, 3);
    let ceiling = run_infinite(&workload.trace);
    for kind in PolicyKind::all() {
        let result = run_policy(&workload.trace, kind, 0.02);
        assert!(
            result.cost_savings_ratio <= ceiling.cost_savings_ratio + 1e-9,
            "{kind} exceeded the infinite-cache CSR"
        );
        assert!(
            result.hit_ratio <= ceiling.hit_ratio + 1e-9,
            "{kind} exceeded the infinite-cache HR"
        );
    }
}

#[test]
fn infinite_cache_matches_trace_statistics() {
    let workload = Workload::set_query(ExperimentScale::quick(1_200).with_seed(9));
    let stats = TraceStats::of(&workload.trace);
    let ceiling = run_infinite(&workload.trace);
    assert!((ceiling.hit_ratio - stats.max_hit_ratio).abs() < 1e-9);
    assert!((ceiling.cost_savings_ratio - stats.max_cost_savings_ratio).abs() < 1e-9);
}

#[test]
fn lnc_ra_beats_lru_on_both_benchmarks_at_small_caches() {
    for workload in Workload::both(ExperimentScale::quick(3_000)) {
        let lnc = run_policy(&workload.trace, PolicyKind::LNC_RA, 0.005);
        let lru = run_policy(&workload.trace, PolicyKind::Lru, 0.005);
        assert!(
            lnc.cost_savings_ratio > lru.cost_savings_ratio,
            "{}: LNC-RA ({}) must beat LRU ({})",
            workload.kind(),
            lnc.cost_savings_ratio,
            lru.cost_savings_ratio
        );
    }
}

#[test]
fn larger_caches_never_reduce_lnc_ra_cost_savings_much() {
    // CSR should be (weakly) increasing in cache size, modulo small
    // admission-heuristic noise.
    let workload = tpcd_workload(2_000, 5);
    let mut previous = 0.0;
    for fraction in [0.002, 0.01, 0.03, 0.05] {
        let result = run_policy(&workload.trace, PolicyKind::LNC_RA, fraction);
        assert!(
            result.cost_savings_ratio >= previous - 0.03,
            "CSR dropped from {previous} to {} when growing the cache to {fraction}",
            result.cost_savings_ratio
        );
        previous = previous.max(result.cost_savings_ratio);
    }
}

#[test]
fn executor_results_can_be_cached_and_served_byte_identical() {
    // Cache the actual materialized retrieved sets (not just their sizes) and
    // verify a hit returns exactly what execution returned.
    let benchmark = watchman::warehouse::tpcd::benchmark();
    let executor = QueryExecutor::new(&benchmark);
    let mut cache: LncCache<RetrievedSet> = LncCache::lnc_ra(4 << 20);
    let clock = ManualClock::new();

    // 15 distinct instances referenced 40 times: plenty of repetition.
    let instances: Vec<QueryInstance> = (0..40u32)
        .map(|i| QueryInstance::new(TemplateId((i % 5) as u16), u64::from(i % 3)))
        .collect();

    let mut executions = 0usize;
    for &instance in &instances {
        let now = clock.advance(1_000);
        let key = executor.query_key(instance);
        if let Some(cached) = cache.get(&key, now) {
            let fresh = executor.execute(instance);
            assert_eq!(
                cached, &fresh.retrieved_set,
                "cache must serve identical rows"
            );
        } else {
            let fresh = executor.execute(instance);
            executions += 1;
            cache.insert(key, fresh.retrieved_set, fresh.cost, now);
        }
    }
    assert!(
        executions < instances.len(),
        "repeated queries must hit the cache"
    );
    assert!(cache.stats().hits > 0);
}

#[test]
fn trace_round_trips_through_json() {
    let workload = tpcd_workload(200, 21);
    let json = workload.trace.to_json().expect("serialize");
    let back = Trace::from_json(&json).expect("deserialize");
    assert_eq!(workload.trace, back);
    // A replay of the deserialized trace gives identical results.
    let a = run_policy(&workload.trace, PolicyKind::Lru, 0.01);
    let b = run_policy(&back, PolicyKind::Lru, 0.01);
    assert_eq!(a, b);
}

#[test]
fn engine_serves_concurrent_sessions() {
    let benchmark = watchman::warehouse::setquery::benchmark();
    let engine: Watchman<SizedPayload> = Watchman::builder()
        .shards(4)
        .policy(PolicyKind::LNC_RA)
        .capacity_bytes(8 << 20)
        .build();
    let clock = std::sync::Arc::new(ManualClock::new());

    std::thread::scope(|scope| {
        for session in 0..4u16 {
            let engine = engine.clone();
            let clock = std::sync::Arc::clone(&clock);
            let benchmark = &benchmark;
            scope.spawn(move || {
                let executor = QueryExecutor::new(benchmark);
                for i in 0..100u64 {
                    let instance =
                        QueryInstance::new(TemplateId(((session as u64 + i) % 13) as u16), i % 11);
                    let now = clock.advance(500);
                    let key = executor.query_key(instance);
                    engine.get_or_execute(&key, now, || {
                        let result = executor.execute(instance);
                        (SizedPayload::new(result.declared_result_bytes), result.cost)
                    });
                }
            });
        }
    });

    let snapshot = engine.stats_snapshot();
    // One-call-per-reference protocol: every lookup is recorded as a hit, an
    // executed miss, or a coalesced wait on another session's execution.
    assert_eq!(snapshot.total.references, 400);
    assert_eq!(
        snapshot.total.references,
        snapshot.total.hits + snapshot.total.coalesced + snapshot.total.misses()
    );
    assert_eq!(snapshot.coalesced_misses, snapshot.total.coalesced);
    assert!(
        snapshot.total.hits > 0,
        "concurrent sessions must share cached results"
    );
    assert!(engine.used_bytes() <= engine.capacity_bytes());
    assert_eq!(snapshot.per_shard.len(), 4);
}

#[test]
fn async_engine_serves_suspended_sessions_end_to_end() {
    // The async front door against real executor results: session tasks on
    // the engine's runtime await lookups whose fetches execute warehouse
    // queries, and the aggregate accounting still balances.
    let benchmark = watchman::warehouse::tpcd::benchmark();
    let engine: Watchman<SizedPayload> = Watchman::builder()
        .shards(4)
        .policy(PolicyKind::LNC_RA)
        .capacity_bytes(8 << 20)
        .runtime_workers(2)
        .build();
    let runtime = engine.runtime();
    let clock = std::sync::Arc::new(ManualClock::new());

    let handles: Vec<_> = (0..4u16)
        .map(|session| {
            let engine = engine.clone();
            let clock = std::sync::Arc::clone(&clock);
            let benchmark = benchmark.clone();
            runtime.spawn(async move {
                let executor = QueryExecutor::new(&benchmark);
                for i in 0..100u64 {
                    let instance =
                        QueryInstance::new(TemplateId(((session as u64 + i) % 13) as u16), i % 11);
                    let now = clock.advance(500);
                    let key = executor.query_key(instance);
                    // The fetch runs on a runtime worker, so it owns its own
                    // benchmark copy (the closure must be Send + 'static).
                    let fetch_benchmark = benchmark.clone();
                    let lookup = engine
                        .get_or_execute_async(&key, now, move || {
                            let executor = QueryExecutor::new(&fetch_benchmark);
                            let result = executor.execute(instance);
                            (SizedPayload::new(result.declared_result_bytes), result.cost)
                        })
                        .await;
                    assert!(lookup.value.size_bytes() > 0);
                }
            })
        })
        .collect();
    for handle in handles {
        block_on(handle).expect("session task completed");
    }

    let snapshot = engine.stats_snapshot();
    assert_eq!(snapshot.total.references, 400);
    assert_eq!(
        snapshot.total.references,
        snapshot.total.hits + snapshot.total.coalesced + snapshot.total.misses()
    );
    assert!(
        snapshot.total.hits > 0,
        "sessions must share cached results"
    );
    assert!(engine.used_bytes() <= engine.capacity_bytes());
}
