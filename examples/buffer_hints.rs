//! WATCHMAN ↔ buffer-manager cooperation (paper §3, Figure 7).
//!
//! This example wires the retrieved-set engine, the page-level buffer pool
//! and the query-reference tracker together through the engine's cache-event
//! stream: a [`RedundancyHintObserver`] subscribes to admissions and demotes
//! p₀-redundant pages automatically, replacing the hand-wired hint loop the
//! Figure 7 experiment runs.
//!
//! Run with: `cargo run --release --example buffer_hints`

use std::sync::Arc;

use watchman::core::sync::Mutex;
use watchman::prelude::*;
use watchman::warehouse::synthetic;
use watchman_trace::{TraceConfig, TraceGenerator};

fn main() {
    // The 14-relation, 100 MB warehouse of the paper's buffer experiment,
    // with a shortened trace so the example finishes in seconds.
    let benchmark = synthetic::benchmark();
    let trace = TraceGenerator::new(&benchmark, TraceConfig::quick(600, 7)).generate();

    println!(
        "database: {} relations, {:.0} MB",
        benchmark.catalog().relation_count(),
        benchmark.catalog().total_bytes() as f64 / (1024.0 * 1024.0)
    );
    println!("trace   : {} queries\n", trace.len());

    for p0 in [None, Some(0.6), Some(0.0)] {
        let (hit_ratio, demotions) = run_with_hints(&benchmark, &trace, p0);
        match p0 {
            None => println!("no hints        -> buffer hit ratio {hit_ratio:.3}"),
            Some(t) => println!(
                "hints, p0 = {:>3.0}% -> buffer hit ratio {hit_ratio:.3} ({demotions} pages demoted)",
                t * 100.0
            ),
        }
    }
    println!("\nModerate thresholds free buffer space held by pages whose queries are");
    println!("already answered from the WATCHMAN cache; p0 = 0% demotes everything and");
    println!("degenerates the buffer's LRU into MRU.");
}

/// Replays the trace once, returning the buffer hit ratio and the number of
/// pages the observer's hints demoted.
fn run_with_hints(benchmark: &Benchmark, trace: &Trace, p0: Option<f64>) -> (f64, u64) {
    let pool = Arc::new(Mutex::new(BufferPool::with_capacity_bytes(
        15 * 1024 * 1024,
    )));

    // The observer resolves an admitted query's page accesses from the
    // benchmark's access model, looking the query up by its cache key.  With
    // hints disabled (`p0 == None`) no observer is subscribed at all and the
    // pool runs plain LRU.
    let observer = p0.map(|threshold| {
        let benchmark = benchmark.clone();
        let instances: std::collections::HashMap<QueryKey, QueryInstance> = trace
            .iter()
            .map(|record| {
                (
                    QueryKey::from_raw_query(&record.query_text),
                    record.instance,
                )
            })
            .collect();
        Arc::new(RedundancyHintObserver::new(
            Arc::clone(&pool),
            threshold,
            move |key: &QueryKey| {
                instances
                    .get(key)
                    .map(|&instance| benchmark.page_accesses(instance))
                    .unwrap_or_default()
            },
        ))
    });

    let mut builder = Watchman::builder()
        .policy(PolicyKind::LncRa { k: 4 })
        .capacity_bytes(15 * 1024 * 1024);
    if let Some(observer) = &observer {
        builder = builder.observer(observer.clone());
    }
    let cache: Watchman<SizedPayload> = builder.build();

    for record in trace.iter() {
        let now = Timestamp::from_micros(record.timestamp_us);
        let key = QueryKey::from_raw_query(&record.query_text);
        if cache.get(&key, now).is_some() {
            continue; // answered from the retrieved-set cache: no page I/O
        }
        // Miss: the query runs against the warehouse and touches its pages.
        let pages = benchmark.page_accesses(record.instance);
        {
            let mut pool = pool.lock();
            for &page in &pages {
                pool.access(page);
            }
        }
        if let Some(observer) = &observer {
            observer.record_access(&pages, key.signature());
        }

        // Offering the set for admission triggers the observer: if admitted,
        // the now-redundant pages are demoted in the pool automatically.
        cache.insert(
            key,
            SizedPayload::new(record.result_bytes),
            ExecutionCost::from_blocks(record.cost_blocks),
            now,
        );
    }
    let pool = pool.lock();
    (pool.stats().hit_ratio(), pool.stats().demotions)
}
