//! WATCHMAN ↔ buffer-manager cooperation (paper §3, Figure 7).
//!
//! This example wires the retrieved-set cache, the page-level buffer pool and
//! the query-reference tracker together by hand — the same loop the Figure 7
//! experiment runs — and shows how the p₀-redundancy hints change the buffer
//! manager's hit ratio.
//!
//! Run with: `cargo run --release --example buffer_hints`

use std::collections::HashSet;

use watchman::prelude::*;
use watchman::warehouse::synthetic;
use watchman_trace::{TraceConfig, TraceGenerator};

fn main() {
    // The 14-relation, 100 MB warehouse of the paper's buffer experiment,
    // with a shortened trace so the example finishes in seconds.
    let benchmark = synthetic::benchmark();
    let trace = TraceGenerator::new(&benchmark, TraceConfig::quick(600, 7)).generate();

    println!("database: {} relations, {:.0} MB", benchmark.catalog().relation_count(),
        benchmark.catalog().total_bytes() as f64 / (1024.0 * 1024.0));
    println!("trace   : {} queries\n", trace.len());

    for p0 in [None, Some(0.6), Some(0.0)] {
        let hit_ratio = run_with_hints(&benchmark, &trace, p0);
        match p0 {
            None => println!("no hints        -> buffer hit ratio {hit_ratio:.3}"),
            Some(t) => println!("hints, p0 = {:>3.0}% -> buffer hit ratio {hit_ratio:.3}", t * 100.0),
        }
    }
    println!("\nModerate thresholds free buffer space held by pages whose queries are");
    println!("already answered from the WATCHMAN cache; p0 = 0% demotes everything and");
    println!("degenerates the buffer's LRU into MRU.");
}

/// Replays the trace once and returns the buffer hit ratio.
fn run_with_hints(benchmark: &Benchmark, trace: &Trace, p0: Option<f64>) -> f64 {
    let mut pool = BufferPool::with_capacity_bytes(15 * 1024 * 1024);
    let mut tracker = QueryReferenceTracker::new();
    let mut cache: LncCache<SizedPayload> = LncCache::lnc_ra(15 * 1024 * 1024);

    for record in trace.iter() {
        let now = Timestamp::from_micros(record.timestamp_us);
        let key = QueryKey::from_raw_query(&record.query_text);
        if cache.get(&key, now).is_some() {
            continue; // answered from the retrieved-set cache: no page I/O
        }
        let pages = benchmark.page_accesses(record.instance);
        for &page in &pages {
            pool.access(page);
        }
        tracker.record_all(&pages, key.signature());

        let outcome = cache.insert(
            key,
            SizedPayload::new(record.result_bytes),
            ExecutionCost::from_blocks(record.cost_blocks),
            now,
        );
        if outcome.is_admitted() {
            if let Some(threshold) = p0 {
                let cached: HashSet<Signature> = cache
                    .cached_keys()
                    .into_iter()
                    .map(|k| k.signature())
                    .collect();
                let hint = tracker.redundant_pages(&pages, threshold, |sig| cached.contains(&sig));
                pool.demote(&hint);
            }
        }
    }
    pool.stats().hit_ratio()
}
