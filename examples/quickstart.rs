//! Quickstart: cache warehouse query results behind the Watchman engine.
//!
//! This example plays the role of a tiny warehouse front end.  It executes
//! queries from the synthetic TPC-D benchmark through the
//! [`watchman::warehouse::QueryExecutor`], caches the retrieved sets in an
//! LNC-RA [`Watchman`] engine, and prints what the cache decided and what it
//! saved.
//!
//! Run with: `cargo run --release --example quickstart`

use watchman::prelude::*;
use watchman::warehouse::tpcd;

fn main() {
    // The synthetic 30 MB TPC-D warehouse and its executor.
    let benchmark = tpcd::benchmark();
    let executor = QueryExecutor::new(&benchmark);

    // A 1 MB LNC-RA engine (the paper's configuration: K = 4, admission
    // control and retained reference information enabled). One shard is
    // plenty for a single session; a multiuser front end would raise
    // `.shards(..)` and clone the handle into every session thread.
    let cache: Watchman<RetrievedSet> = Watchman::builder()
        .policy(PolicyKind::LncRa { k: 4 })
        .capacity_bytes(1 << 20)
        .build();
    let clock = ManualClock::new();

    // A small interactive session: the analyst keeps coming back to the
    // same two summary queries while occasionally drilling down.
    let session: Vec<QueryInstance> = vec![
        QueryInstance::new(TemplateId(0), 30), // Q1, pricing summary
        QueryInstance::new(TemplateId(5), 7),  // Q6, revenue forecast
        QueryInstance::new(TemplateId(0), 30), // Q1 again — should hit
        QueryInstance::new(TemplateId(12), 987_654_321), // Q13 drill-down, never repeated
        QueryInstance::new(TemplateId(5), 7),  // Q6 again — should hit
        QueryInstance::new(TemplateId(0), 30), // Q1 again — should hit
    ];

    for instance in session {
        let now = clock.advance(1_000_000); // one second between queries
        let key = executor.query_key(instance);
        let lookup = cache.get_or_execute(&key, now, || {
            let executed = executor.execute(instance);
            (executed.retrieved_set, executed.cost)
        });
        match lookup.source {
            LookupSource::Hit => println!(
                "HIT   {:<60} -> {} rows served from cache",
                truncate(&key.to_string(), 60),
                lookup.value.len()
            ),
            LookupSource::Coalesced => println!(
                "WAIT  {:<60} -> joined another session's execution",
                truncate(&key.to_string(), 60),
            ),
            LookupSource::Executed => println!(
                "MISS  {:<60} -> executed ({} rows), {}",
                truncate(&key.to_string(), 60),
                lookup.value.len(),
                lookup
                    .outcome
                    .map(|outcome| outcome.to_string())
                    .unwrap_or_default()
            ),
            // The infallible path never degrades to stale.
            LookupSource::Stale => unreachable!("stale needs the fallible path"),
        }
    }

    let stats = cache.stats();
    println!();
    println!("references          : {}", stats.references);
    println!("hits                : {}", stats.hits);
    println!("hit ratio           : {:.2}", stats.hit_ratio());
    println!("cost savings ratio  : {:.2}", stats.cost_savings_ratio());
    println!("block reads saved   : {:.0}", stats.saved_cost);
    println!(
        "cache occupancy     : {} / {} bytes",
        cache.used_bytes(),
        cache.capacity_bytes()
    );
}

fn truncate(text: &str, limit: usize) -> String {
    if text.len() <= limit {
        text.to_owned()
    } else {
        format!("{}…", &text[..limit.saturating_sub(1)])
    }
}
