//! Quickstart: cache warehouse query results with the LNC-RA policy.
//!
//! This example plays the role of a tiny warehouse front end.  It executes
//! queries from the synthetic TPC-D benchmark through the
//! [`watchman::warehouse::QueryExecutor`], caches the retrieved sets in an
//! LNC-RA cache, and prints what the cache decided and what it saved.
//!
//! Run with: `cargo run --release --example quickstart`

use watchman::prelude::*;
use watchman::warehouse::tpcd;

fn main() {
    // The synthetic 30 MB TPC-D warehouse and its executor.
    let benchmark = tpcd::benchmark();
    let executor = QueryExecutor::new(&benchmark);

    // A 1 MB LNC-RA cache (the paper's configuration: K = 4, admission
    // control and retained reference information enabled).
    let mut cache: LncCache<RetrievedSet> = LncCache::lnc_ra(1 << 20);
    let clock = ManualClock::new();

    // A small interactive session: the analyst keeps coming back to the
    // same two summary queries while occasionally drilling down.
    let session: Vec<QueryInstance> = vec![
        QueryInstance::new(TemplateId(0), 30), // Q1, pricing summary
        QueryInstance::new(TemplateId(5), 7),  // Q6, revenue forecast
        QueryInstance::new(TemplateId(0), 30), // Q1 again — should hit
        QueryInstance::new(TemplateId(12), 987_654_321), // Q13 drill-down, never repeated
        QueryInstance::new(TemplateId(5), 7),  // Q6 again — should hit
        QueryInstance::new(TemplateId(0), 30), // Q1 again — should hit
    ];

    for instance in session {
        let now = clock.advance(1_000_000); // one second between queries
        let key = executor.query_key(instance);
        match cache.get(&key, now) {
            Some(result) => {
                println!(
                    "HIT   {:<60} -> {} rows served from cache",
                    truncate(&key.to_string(), 60),
                    result.len()
                );
            }
            None => {
                let executed = executor.execute(instance);
                let outcome = cache.insert(
                    key.clone(),
                    executed.retrieved_set.clone(),
                    executed.cost,
                    now,
                );
                println!(
                    "MISS  {:<60} -> executed for {} ({} rows), {}",
                    truncate(&key.to_string(), 60),
                    executed.cost,
                    executed.retrieved_set.len(),
                    describe(&outcome)
                );
            }
        }
    }

    let stats = cache.stats();
    println!();
    println!("references          : {}", stats.references);
    println!("hits                : {}", stats.hits);
    println!("hit ratio           : {:.2}", stats.hit_ratio());
    println!("cost savings ratio  : {:.2}", stats.cost_savings_ratio());
    println!("block reads saved   : {:.0}", stats.saved_cost);
    println!("cache occupancy     : {} / {} bytes", cache.used_bytes(), cache.capacity_bytes());
}

fn describe(outcome: &InsertOutcome) -> String {
    match outcome {
        InsertOutcome::Admitted { evicted } if evicted.is_empty() => "admitted".to_owned(),
        InsertOutcome::Admitted { evicted } => format!("admitted, evicted {}", evicted.len()),
        InsertOutcome::AlreadyCached => "already cached".to_owned(),
        InsertOutcome::Rejected(reason) => format!("rejected ({reason:?})"),
    }
}

fn truncate(text: &str, limit: usize) -> String {
    if text.len() <= limit {
        text.to_owned()
    } else {
        format!("{}…", &text[..limit.saturating_sub(1)])
    }
}
