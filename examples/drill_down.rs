//! Drill-down analysis workload: compare LNC-RA against LRU on a full
//! synthetic trace.
//!
//! This example reproduces, at a small scale, the scenario the paper's
//! introduction motivates: a multiuser decision-support environment where
//! high-level summary queries repeat frequently and drill-down detail queries
//! almost never do.  It generates a drill-down trace for both benchmarks and
//! reports the cost savings ratio of LNC-RA, LNC-R and LRU at a cache of 1 %
//! of the database size.
//!
//! Run with: `cargo run --release --example drill_down`

use watchman::prelude::*;

fn main() {
    let scale = ExperimentScale::quick(5_000);
    let cache_fraction = 0.01;

    for workload in Workload::both(scale) {
        let stats = TraceStats::of(&workload.trace);
        println!("=== {} ===", workload.kind());
        println!(
            "trace: {} queries, {} distinct, max HR {:.2}, max CSR {:.2}, working set {:.1} MB",
            workload.trace.len(),
            stats.distinct_queries,
            stats.max_hit_ratio,
            stats.max_cost_savings_ratio,
            stats.working_set_bytes as f64 / (1024.0 * 1024.0),
        );

        for kind in [PolicyKind::LNC_RA, PolicyKind::LNC_R, PolicyKind::Lru] {
            let result = run_policy(&workload.trace, kind, cache_fraction);
            println!(
                "  {:<8}  CSR {:.3}   HR {:.3}   admissions {}   rejections {}   evictions {}",
                result.policy,
                result.cost_savings_ratio,
                result.hit_ratio,
                result.admissions,
                result.rejections,
                result.evictions,
            );
        }

        let lnc = run_policy(&workload.trace, PolicyKind::LNC_RA, cache_fraction);
        let lru = run_policy(&workload.trace, PolicyKind::Lru, cache_fraction);
        if lru.cost_savings_ratio > 0.0 {
            println!(
                "  => LNC-RA saves {:.1}x the execution cost LRU saves at a {:.0}% cache",
                lnc.cost_savings_ratio / lru.cost_savings_ratio,
                cache_fraction * 100.0
            );
        }

        // The same workload through an 8-shard engine — the deployment shape
        // a concurrent front end runs. Partitioning the capacity perturbs
        // individual eviction decisions but preserves the savings.
        let sharded = run_policy_sharded(&workload.trace, PolicyKind::LNC_RA, cache_fraction, 8);
        println!(
            "  8-shard LNC-RA engine: CSR {:.3} (unsharded {:.3})\n",
            sharded.cost_savings_ratio, lnc.cost_savings_ratio
        );
    }
}
