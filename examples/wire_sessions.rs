//! The cache as a network service: a `watchmand` server on loopback, three
//! analyst sessions as real TCP clients.
//!
//! Demonstrates the full wire surface:
//!
//! * concurrent clients missing on the same query **coalesce across
//!   connections** — the warehouse executes it once;
//! * a pipelined `get_many` batch pays one round trip;
//! * admin opcodes: a non-perturbing `PEEK`, a `STATS` snapshot, an
//!   `INVALIDATE` after a warehouse update, and a draining `SHUTDOWN`.
//!
//! Run with `--quick` (CI) for a smaller session count.

use std::sync::{Arc, Barrier};

use watchman::prelude::*;
use watchman::server::wire::WireSource;
use watchman::server::{serve, Client, GetRequest, ServerConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sessions = if quick { 3 } else { 8 };

    // An in-process watchmand on an ephemeral loopback port — exactly what
    // the standalone binary runs.
    let server = serve(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        shards: 4,
        policy: PolicyKind::LncRa { k: 4 },
        capacity_bytes: 8 << 20,
        runtime_workers: 2,
        rebalance: None,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.addr().to_string();
    println!("watchmand listening on {addr}");

    // --- Storm: every session asks for the same expensive report at once.
    let report = "SELECT l_returnflag, sum(l_extendedprice) FROM lineitem GROUP BY l_returnflag";
    let barrier = Arc::new(Barrier::new(sessions));
    std::thread::scope(|scope| {
        for session in 0..sessions {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("session connects");
                barrier.wait();
                let response = client
                    .get(GetRequest {
                        key: report.to_owned(),
                        timestamp_us: 1_000 + session as u64,
                        result_bytes: 4_096,
                        cost_blocks: 48_000,
                        fetch_delay_us: 2_000, // a 2 ms stand-in for the scan
                        deadline_hint_us: 0,
                        payload_prefix_cap: 8,
                    })
                    .expect("storm get");
                println!(
                    "  session {session}: {} ({} bytes, {} us)",
                    response.source, response.full_len, response.service_us
                );
            });
        }
    });

    let mut admin = Client::connect(addr).expect("admin connects");
    let snapshot = admin.stats().expect("stats");
    println!(
        "storm: {} references = {} hits + {} coalesced + {} misses (executed once)",
        snapshot.total.references,
        snapshot.total.hits,
        snapshot.total.coalesced,
        snapshot.total.misses()
    );
    assert_eq!(
        snapshot.total.misses(),
        1,
        "the report executed exactly once"
    );

    // --- Pipelining: a drill-down batch in one round trip.
    let batch: Vec<GetRequest> = (0..6)
        .map(|week| {
            GetRequest::metrics_only(
                format!("SELECT count(*) FROM orders WHERE o_week = {week}"),
                10_000 + week,
                512,
                6_000,
            )
        })
        .collect();
    let responses = admin.get_many(batch).expect("pipelined batch");
    let executed = responses
        .iter()
        .filter(|r| r.source == WireSource::Executed)
        .count();
    println!(
        "pipelined drill-down: {} queries, {executed} executed, one round trip",
        responses.len()
    );

    // --- Admin path: peek never perturbs, invalidation follows an update.
    let before = admin.stats().expect("stats");
    assert!(admin.peek(report).expect("peek").is_some());
    assert_eq!(
        before,
        admin.stats().expect("stats"),
        "peek is non-perturbing"
    );
    let (affected, invalidated) = admin
        .invalidate_relation("LINEITEM")
        .expect("invalidate after a warehouse update");
    println!("update on LINEITEM: {affected} dependent sets, {invalidated} invalidated");
    assert!(admin.peek(report).expect("peek").is_none());

    // --- Drain.
    admin.shutdown_server().expect("shutdown");
    server.wait();
    println!("server drained, done");
}
