//! Async sessions: many suspended analysts, few threads.
//!
//! WATCHMAN's premise is that warehouse queries take seconds, so a cache
//! manager must never serialize sessions behind one another's executions
//! (paper §3).  This example plays a busy morning at a warehouse front end:
//! a crowd of analyst sessions — far more sessions than the runtime has
//! worker threads — issue overlapping report queries through
//! [`Watchman::get_or_execute_async`].  Sessions that miss on a query
//! already in flight *suspend* (a registered waker, not a parked thread)
//! and share the leader's result when it lands; the engine's thread count
//! stays at the worker-pool size throughout.
//!
//! Run with: `cargo run --release --example async_sessions [-- --quick]`

use std::sync::Arc;
use watchman::prelude::*;
use watchman::warehouse::tpcd;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sessions: usize = if quick { 8 } else { 24 };
    let queries_per_session: u64 = if quick { 40 } else { 120 };

    // The synthetic TPC-D warehouse; every fetch below "executes" against it.
    let benchmark = tpcd::benchmark();

    // An 8-shard LNC-RA engine whose runtime has only 2 workers: at most two
    // warehouse queries execute at once (a multiprogramming level of 2), yet
    // dozens of sessions make progress because waiters suspend.
    let engine: Watchman<SizedPayload> = Watchman::builder()
        .shards(8)
        .policy(PolicyKind::LncRa { k: 4 })
        .capacity_bytes(4 << 20)
        .runtime_workers(2)
        .build();
    let runtime = engine.runtime();
    let clock = Arc::new(ManualClock::new());

    println!(
        "{sessions} analyst sessions × {queries_per_session} queries on a \
         {}-worker runtime\n",
        runtime.worker_count()
    );

    let handles: Vec<_> = (0..sessions)
        .map(|session| {
            let engine = engine.clone();
            let clock = Arc::clone(&clock);
            let benchmark = benchmark.clone();
            runtime.spawn(async move {
                let executor = QueryExecutor::new(&benchmark);
                let mut sources = [0u64; 3]; // hit, executed, coalesced
                for i in 0..queries_per_session {
                    // Analysts cluster on the same few drill-down reports:
                    // lots of overlap between sessions → hits + coalescing.
                    let instance =
                        QueryInstance::new(TemplateId(((session as u64 + i) % 9) as u16), i % 7);
                    let key = executor.query_key(instance);
                    let now = clock.advance(1_000);
                    let fetch_benchmark = benchmark.clone();
                    let lookup = engine
                        .get_or_execute_async(&key, now, move || {
                            let executor = QueryExecutor::new(&fetch_benchmark);
                            let result = executor.execute(instance);
                            (SizedPayload::new(result.declared_result_bytes), result.cost)
                        })
                        .await;
                    match lookup.source {
                        LookupSource::Hit => sources[0] += 1,
                        LookupSource::Executed => sources[1] += 1,
                        LookupSource::Coalesced => sources[2] += 1,
                        // The infallible path never degrades to stale.
                        LookupSource::Stale => unreachable!("stale needs the fallible path"),
                    }
                }
                sources
            })
        })
        .collect();

    let mut totals = [0u64; 3];
    for handle in handles {
        let sources = block_on(handle).expect("session completed");
        for (total, count) in totals.iter_mut().zip(sources) {
            *total += count;
        }
    }

    let snapshot = engine.stats_snapshot();
    println!("per-session outcomes summed across sessions:");
    println!("  hits       {:>8}", totals[0]);
    println!("  executed   {:>8}", totals[1]);
    println!(
        "  coalesced  {:>8}  (suspended on another session's flight)",
        totals[2]
    );
    println!();
    println!(
        "engine: {} references = {} hits + {} coalesced + {} misses",
        snapshot.total.references,
        snapshot.total.hits,
        snapshot.total.coalesced,
        snapshot.total.misses()
    );
    println!(
        "cost savings ratio {:.3}, hit ratio {:.3}, {} sets cached ({} KB)",
        snapshot.cost_savings_ratio(),
        snapshot.hit_ratio(),
        snapshot.entries,
        snapshot.used_bytes / 1024,
    );
    assert_eq!(
        snapshot.total.references,
        (sessions as u64) * queries_per_session,
        "every lookup recorded exactly one reference"
    );
}
