//! Compare every cache policy in the library on the same workload.
//!
//! Runs the full policy zoo — LNC-RA, LNC-R, LRU, LRU-K, LFU, LCS and
//! GreedyDual-Size — over a drill-down Set Query trace at several cache
//! sizes, and also reports how close the on-line LNC-RA policy comes to the
//! static LNC* selection of the paper's §2.3 optimality analysis.
//!
//! Run with: `cargo run --release --example policy_comparison`

use watchman::core::theory::{expected_cost_savings_ratio, lnc_star_skipping, KnapsackItem};
use watchman::prelude::*;

fn main() {
    let scale = ExperimentScale::quick(5_000);
    let workload = Workload::set_query(scale);
    let fractions = [0.005, 0.01, 0.05];

    println!(
        "Set Query trace: {} queries against a {:.0} MB database\n",
        workload.trace.len(),
        workload.database_bytes() as f64 / (1024.0 * 1024.0)
    );

    println!(
        "{:<16} {:>10} {:>10} {:>10}",
        "policy", "0.5% CSR", "1% CSR", "5% CSR"
    );
    for kind in PolicyKind::all() {
        let mut row = format!("{:<16}", kind.label());
        for &fraction in &fractions {
            let result = run_policy(&workload.trace, kind, fraction);
            row.push_str(&format!(" {:>10.3}", result.cost_savings_ratio));
        }
        println!("{row}");
    }

    // Static LNC* oracle: what a clairvoyant selection (knowing the trace's
    // reference frequencies in advance) would achieve.
    println!();
    let mut per_query: std::collections::HashMap<QueryInstance, (u64, u64, u64)> =
        std::collections::HashMap::new();
    for record in workload.trace.iter() {
        let entry = per_query.entry(record.instance).or_insert((
            0,
            record.cost_blocks,
            record.result_bytes,
        ));
        entry.0 += 1;
    }
    let items: Vec<KnapsackItem> = per_query
        .values()
        .map(|&(refs, cost, bytes)| KnapsackItem::new(refs as f64, cost as f64, bytes))
        .collect();
    for &fraction in &fractions {
        let capacity = (workload.database_bytes() as f64 * fraction) as u64;
        let selection = lnc_star_skipping(&items, capacity);
        let static_csr = expected_cost_savings_ratio(&items, &selection);
        let online = run_policy(&workload.trace, PolicyKind::LNC_RA, fraction);
        println!(
            "cache {:>4.1}%: static LNC* upper bound {:.3}, on-line LNC-RA achieved {:.3}",
            fraction * 100.0,
            static_csr,
            online.cost_savings_ratio
        );
    }
}
