//! The Set Query benchmark definition (scaled to the paper's 100 MB database).
//!
//! The Set Query benchmark (O'Neil, 1993) runs read-only "set processing"
//! queries — counts, sums, multi-condition selections, grouped reports and
//! join-like combinations — against a single table `BENCH` whose columns
//! `K2, K4, K5, K10, K25, K100, K1K, K10K, K40K, K100K, K250K, K500K, KSEQ`
//! have the cardinality their name indicates.
//!
//! The original benchmark has fewer than one hundred distinct query
//! instances, so — exactly as the paper did — we *extend its
//! parameterization* so that the instance space is large enough to model the
//! drill-down distribution: cheap, high-summarization counts repeat
//! frequently, while low-summarization selections and report queries rarely
//! repeat.
//!
//! The decisive property of this workload (paper §4.2, Figure 2 discussion)
//! is that **its execution-cost distribution is much more skewed than
//! TPC-D's**: index-assisted counts read a few dozen pages while full-table
//! reports and join-like queries read tens of thousands, and several cheap
//! *projection* queries return large retrieved sets.  That skew is what makes
//! the cost-savings ratio diverge from the hit ratio.

use crate::benchmark::{Benchmark, BenchmarkKind};
use crate::catalog::{Catalog, Relation};
use crate::pages::RelationId;
use crate::template::{
    QueryTemplate, RelationAccess, RowCountModel, SummarizationLevel, TemplateId,
};

/// The single `BENCH` relation.
pub const BENCH: RelationId = RelationId(0);

/// The paper's database size for this benchmark: 100 MB.
pub const PAPER_DATABASE_BYTES: u64 = 100 * 1024 * 1024;

/// Builds the Set Query catalog scaled so the `BENCH` table occupies
/// approximately `target_bytes`.
///
/// The benchmark's canonical table has one million 200-byte rows (~200 MB);
/// the paper scaled it down to 100 MB, i.e. roughly 500 000 rows.
pub fn catalog(target_bytes: u64) -> Catalog {
    let rows = (target_bytes / 200).max(1);
    Catalog::new("SetQuery", vec![Relation::new("BENCH", rows, 200)])
}

/// Builds the Set Query query templates with extended parameterization.
pub fn templates() -> Vec<QueryTemplate> {
    let t = |id: u16,
             name: &str,
             sql: &str,
             summarization: SummarizationLevel,
             instance_space: u64,
             accesses: Vec<RelationAccess>,
             result_rows: RowCountModel,
             result_row_bytes: u32| QueryTemplate {
        id: TemplateId(id),
        name: name.to_owned(),
        sql_pattern: sql.to_owned(),
        summarization,
        instance_space,
        accesses,
        result_rows,
        result_row_bytes,
    };
    use RowCountModel::{Fixed, Range};
    use SummarizationLevel::{High, Low, Medium};

    vec![
        // Q1: single exact-match count, answered almost entirely from an
        // index — very cheap, tiny result, small parameter space.
        t(
            0,
            "SQ1",
            "SELECT count(*) FROM bench WHERE kn = :p",
            High,
            65,
            vec![RelationAccess::lookup(BENCH, 24)],
            Fixed(1),
            16,
        ),
        // Q2A / Q2B: two-condition counts (AND / AND NOT).
        t(
            1,
            "SQ2A",
            "SELECT count(*) FROM bench WHERE k2 = 2 AND kn = :p",
            High,
            130,
            vec![RelationAccess::lookup(BENCH, 60)],
            Fixed(1),
            16,
        ),
        t(
            2,
            "SQ2B",
            "SELECT count(*) FROM bench WHERE k2 = 2 AND NOT kn = :p",
            High,
            130,
            vec![RelationAccess::selective(BENCH, 0.02)],
            Fixed(1),
            16,
        ),
        // Q3A / Q3B: sums over selections, Q3B additionally grouped.  These
        // are mid-level summary queries that repeat moderately often.
        t(
            3,
            "SQ3A",
            "SELECT sum(k1k) FROM bench WHERE kseq BETWEEN :p AND :p+4000 AND kn = 3",
            Medium,
            900,
            vec![RelationAccess::selective(BENCH, 0.08)],
            Fixed(1),
            16,
        ),
        t(
            4,
            "SQ3B",
            "SELECT k10, sum(k1k) FROM bench WHERE kseq BETWEEN :p AND :p+20000 AND kn = 3 GROUP BY k10",
            Medium,
            700,
            vec![RelationAccess::selective(BENCH, 0.12)],
            Range { min: 5, max: 10 },
            24,
        ),
        // Q4A / Q4B: multi-condition counts (3 and 5 conditions), answered by
        // index ANDing — moderately cheap, and Q4B drills down to detail
        // combinations that essentially never repeat.
        t(
            5,
            "SQ4A",
            "SELECT count(*) FROM bench WHERE k10 = :p AND k25 = 11 AND k100 > 80",
            Medium,
            1_200,
            vec![RelationAccess::selective(BENCH, 0.05)],
            Fixed(1),
            16,
        ),
        t(
            6,
            "SQ4B",
            "SELECT count(*) FROM bench WHERE k2 = 1 AND k4 = 3 AND k10 = :p AND k100 < 41 AND k25 in (11,19)",
            Low,
            2_000_000_000,
            vec![RelationAccess::selective(BENCH, 0.03)],
            Fixed(1),
            16,
        ),
        // Q5: grouped report over the whole table — the expensive summary
        // report everyone re-runs.
        t(
            7,
            "SQ5",
            "SELECT k2, k100, count(*) FROM bench GROUP BY k2, k100 HAVING variant = :p",
            High,
            60,
            vec![RelationAccess::scan(BENCH)],
            Fixed(200),
            24,
        ),
        // Q6A / Q6B: join-like report queries.  These are the most expensive
        // queries of the benchmark and, like Q5, correspond to standard
        // reports with small parameter spaces that repeat within a trace.
        t(
            8,
            "SQ6A",
            "SELECT a.kseq, b.kseq FROM bench a, bench b WHERE a.k40k = b.k40k AND a.kseq BETWEEN :p AND :p+5000",
            High,
            160,
            vec![
                RelationAccess::selective(BENCH, 0.35),
                RelationAccess::selective(BENCH, 0.2),
            ],
            Range { min: 40, max: 400 },
            48,
        ),
        t(
            9,
            "SQ6B",
            "SELECT a.kseq, b.kseq FROM bench a, bench b WHERE a.k250k = b.k500k AND a.k25 = :p AND b.k100k < 30",
            Medium,
            420,
            vec![
                RelationAccess::scan(BENCH),
                RelationAccess::selective(BENCH, 0.3),
            ],
            Range { min: 100, max: 1_000 },
            48,
        ),
        // Projection queries: cheap index-range retrievals with large
        // retrieved sets — the "inexpensive projections" the paper singles
        // out as the reason the Set Query cost distribution is skewed.  They
        // sit at the bottom of the drill-down hierarchy and rarely repeat.
        t(
            10,
            "SQ7P1",
            "SELECT kseq, k500k FROM bench WHERE kseq BETWEEN :p AND :p+10000",
            Low,
            100_000_000,
            vec![RelationAccess::selective(BENCH, 0.012)],
            Range { min: 200, max: 1_500 },
            16,
        ),
        t(
            11,
            "SQ7P2",
            "SELECT kseq, k100, k10k FROM bench WHERE k100k = :p",
            Low,
            150_000,
            vec![RelationAccess::selective(BENCH, 0.006)],
            Range { min: 100, max: 800 },
            24,
        ),
        // A very cheap point projection with a moderate parameter space: the
        // highest-frequency cheap query in the mix.
        t(
            12,
            "SQ8",
            "SELECT kseq, k2, k4, k10 FROM bench WHERE k10k = :p",
            High,
            200,
            vec![RelationAccess::lookup(BENCH, 30)],
            Range { min: 20, max: 80 },
            24,
        ),
    ]
}

/// Builds the full Set Query benchmark at the paper's 100 MB scale.
pub fn benchmark() -> Benchmark {
    benchmark_with(PAPER_DATABASE_BYTES, 0x5345_5451)
}

/// Builds the Set Query benchmark with a custom database size and seed.
pub fn benchmark_with(database_bytes: u64, seed: u64) -> Benchmark {
    Benchmark::new(
        BenchmarkKind::SetQuery,
        catalog(database_bytes),
        templates(),
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::QueryInstance;

    #[test]
    fn catalog_matches_target_size() {
        let c = catalog(PAPER_DATABASE_BYTES);
        let total = c.total_bytes() as f64;
        let target = PAPER_DATABASE_BYTES as f64;
        assert!((total - target).abs() / target < 0.01);
        assert_eq!(c.relation_count(), 1);
        assert_eq!(c.relation_id("BENCH"), Some(BENCH));
    }

    #[test]
    fn has_more_skewed_costs_than_tpcd() {
        // The max/min cost ratio must be much larger than TPC-D's — this is
        // the property the paper uses to explain why Set Query's CSR and HR
        // diverge.
        let sq = benchmark();
        let tpcd = crate::tpcd::benchmark();
        let spread = |b: &Benchmark| {
            let costs: Vec<u64> = b
                .templates()
                .iter()
                .map(|t| b.cost_blocks(QueryInstance::new(t.id, 0)))
                .collect();
            let max = *costs.iter().max().unwrap() as f64;
            let min = *costs.iter().min().unwrap() as f64;
            max / min.max(1.0)
        };
        assert!(
            spread(&sq) > 10.0 * spread(&tpcd),
            "Set Query cost spread {} should far exceed TPC-D's {}",
            spread(&sq),
            spread(&tpcd)
        );
    }

    #[test]
    fn cheap_queries_exist_and_are_really_cheap() {
        let b = benchmark();
        let q1_cost = b.cost_blocks(QueryInstance::new(TemplateId(0), 1));
        let scan_pages = u64::from(b.catalog().relation(BENCH).unwrap().pages());
        assert!(q1_cost * 100 < scan_pages, "SQ1 must be index-cheap");
    }

    #[test]
    fn projection_queries_have_large_results_and_low_cost() {
        // SQ7P1 (cheap projection) vs SQ5 (expensive report): the projection
        // costs a small fraction of the report but returns, on average, a
        // larger retrieved set — the cost/size skew the paper highlights.
        let b = benchmark();
        let avg = |template: u16, f: &dyn Fn(QueryInstance) -> u64| -> f64 {
            (0..20)
                .map(|p| f(QueryInstance::new(TemplateId(template), p)) as f64)
                .sum::<f64>()
                / 20.0
        };
        let proj_bytes = avg(10, &|i| b.result_bytes(i));
        let report_bytes = avg(7, &|i| b.result_bytes(i));
        let proj_cost = avg(10, &|i| b.cost_blocks(i));
        let report_cost = avg(7, &|i| b.cost_blocks(i));
        assert!(proj_bytes > report_bytes);
        assert!(proj_cost < report_cost / 10.0);
    }

    #[test]
    fn instance_spaces_span_orders_of_magnitude() {
        let templates = templates();
        let min = templates.iter().map(|t| t.instance_space).min().unwrap();
        let max = templates.iter().map(|t| t.instance_space).max().unwrap();
        assert!(min <= 100);
        assert!(max >= 1_000_000_000);
        assert_eq!(templates.len(), 13);
    }

    #[test]
    fn benchmark_is_deterministic() {
        let a = benchmark();
        let b = benchmark();
        let i = QueryInstance::new(TemplateId(8), 99);
        assert_eq!(a.cost_blocks(i), b.cost_blocks(i));
        assert_eq!(a.result_bytes(i), b.result_bytes(i));
        assert_eq!(a.kind(), BenchmarkKind::SetQuery);
    }
}
