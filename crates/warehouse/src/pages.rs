//! Physical identifiers: relations and pages.
//!
//! The warehouse stores every relation as a contiguous run of fixed-size disk
//! pages.  Page identifiers are what the query access model produces and what
//! the buffer manager ([`watchman-buffer`]) caches; the number of *logical
//! block reads* a query performs (its execution cost in the paper's setup,
//! §4.1) is simply the length of its page-access list.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a relation within a [`crate::catalog::Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RelationId(pub u16);

impl RelationId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Identifies one disk page of one relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId {
    /// The relation the page belongs to.
    pub relation: RelationId,
    /// The page number within the relation (zero-based).
    pub page: u32,
}

impl PageId {
    /// Creates a page id.
    pub const fn new(relation: RelationId, page: u32) -> Self {
        PageId { relation, page }
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.relation, self.page)
    }
}

/// The fixed page size used throughout the warehouse, in bytes.
///
/// The traces in the paper were collected on Oracle 7, whose default block
/// size was 2 KB; we use 4 KB, the more common modern default.  Only the
/// *relative* costs of queries matter to the cache policies, so the choice
/// does not affect any experimental conclusion.
pub const PAGE_SIZE_BYTES: u64 = 4096;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let page = PageId::new(RelationId(3), 17);
        assert_eq!(page.to_string(), "R3:17");
        assert_eq!(RelationId(3).to_string(), "R3");
    }

    #[test]
    fn ordering_is_by_relation_then_page() {
        let a = PageId::new(RelationId(1), 100);
        let b = PageId::new(RelationId(2), 0);
        let c = PageId::new(RelationId(2), 5);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn relation_index_round_trip() {
        assert_eq!(RelationId(7).index(), 7);
    }
}
