//! Query execution against the synthetic warehouse.
//!
//! The executor turns a [`QueryInstance`] into everything the cache manager
//! and the experiments need: the canonical query text, the execution cost,
//! the materialized retrieved set (actual rows, for library users and
//! examples) and — on demand — the page-access list for the buffer-manager
//! experiment.
//!
//! Execution is a simulation: no tuples are stored on disk, but every
//! quantity is a deterministic function of the query instance, so repeated
//! executions of the same query return identical results, exactly like
//! re-running a deterministic SQL query against a static warehouse.

use watchman_core::key::QueryKey;
use watchman_core::value::{Datum, ExecutionCost, RetrievedSet};

use crate::benchmark::Benchmark;
use crate::hashing::{mix3, unit_from};
use crate::pages::PageId;
use crate::template::QueryInstance;

/// The outcome of executing one query against the warehouse.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionResult {
    /// The query instance that was executed.
    pub instance: QueryInstance,
    /// The cache key (compressed query ID) for this query.
    pub key: QueryKey,
    /// Execution cost in logical block reads.
    pub cost: ExecutionCost,
    /// The materialized retrieved set.
    pub retrieved_set: RetrievedSet,
    /// The declared result size used by the cost/size models (bytes).
    ///
    /// The byte size of `retrieved_set` is close to but not exactly equal to
    /// this value (rows are synthesized to approximately the declared width);
    /// experiments use the declared size so that results are exactly
    /// reproducible, while applications caching the actual rows use the
    /// payload's own size.
    pub declared_result_bytes: u64,
}

/// Executes queries against a [`Benchmark`].
#[derive(Debug, Clone)]
pub struct QueryExecutor<'a> {
    benchmark: &'a Benchmark,
}

impl<'a> QueryExecutor<'a> {
    /// Creates an executor for the given benchmark.
    pub fn new(benchmark: &'a Benchmark) -> Self {
        QueryExecutor { benchmark }
    }

    /// The benchmark this executor runs against.
    pub fn benchmark(&self) -> &Benchmark {
        self.benchmark
    }

    /// The cache key (query ID) of an instance without executing it.
    pub fn query_key(&self, instance: QueryInstance) -> QueryKey {
        QueryKey::from_raw_query(&self.benchmark.query_text(instance))
    }

    /// Executes a query: computes its cost and synthesizes its retrieved set.
    pub fn execute(&self, instance: QueryInstance) -> ExecutionResult {
        let cost = ExecutionCost::from_blocks(self.benchmark.cost_blocks(instance));
        let retrieved_set = self.synthesize_result(instance);
        ExecutionResult {
            instance,
            key: self.query_key(instance),
            cost,
            retrieved_set,
            declared_result_bytes: self.benchmark.result_bytes(instance),
        }
    }

    /// The pages the query reads, in execution order (used by the buffer
    /// manager experiment; separate from [`execute`](Self::execute) because
    /// the cache-policy experiments do not need page lists).
    pub fn page_accesses(&self, instance: QueryInstance) -> Vec<PageId> {
        self.benchmark.page_accesses(instance)
    }

    /// Synthesizes the rows of the retrieved set.
    ///
    /// High-summarization queries produce aggregate rows (group key, sum,
    /// count); the values are deterministic functions of the instance so a
    /// re-executed query returns byte-identical results.
    fn synthesize_result(&self, instance: QueryInstance) -> RetrievedSet {
        let template = &self.benchmark.templates()[instance.template.index()];
        let rows = self.benchmark.result_rows(instance);
        let columns = template.result_columns();
        let mut set = RetrievedSet::new(columns);
        let seed = mix3(
            self.benchmark.seed(),
            u64::from(instance.template.0),
            instance.param,
        );
        for row_idx in 0..rows {
            let group = format!("{}-{}", template.name, row_idx);
            let sum = unit_from(seed, row_idx * 2 + 1) * 1_000_000.0;
            let count = (unit_from(seed, row_idx * 2 + 2) * 10_000.0) as i64 + 1;
            set.push_row(vec![
                Datum::Text(group),
                Datum::Float(sum),
                Datum::Int(count),
            ]);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::TemplateId;
    use watchman_core::value::CachePayload;

    #[test]
    fn execution_is_deterministic() {
        let benchmark = crate::tpcd::benchmark();
        let executor = QueryExecutor::new(&benchmark);
        let instance = QueryInstance::new(TemplateId(0), 12);
        let a = executor.execute(instance);
        let b = executor.execute(instance);
        assert_eq!(a, b);
        assert_eq!(a.key, b.key);
    }

    #[test]
    fn different_parameters_yield_different_keys_and_results() {
        let benchmark = crate::tpcd::benchmark();
        let executor = QueryExecutor::new(&benchmark);
        let a = executor.execute(QueryInstance::new(TemplateId(2), 1));
        let b = executor.execute(QueryInstance::new(TemplateId(2), 2));
        assert_ne!(a.key, b.key);
    }

    #[test]
    fn retrieved_set_row_count_matches_model() {
        let benchmark = crate::setquery::benchmark();
        let executor = QueryExecutor::new(&benchmark);
        let instance = QueryInstance::new(TemplateId(7), 3);
        let result = executor.execute(instance);
        assert_eq!(
            result.retrieved_set.len() as u64,
            benchmark.result_rows(instance)
        );
        assert!(result.retrieved_set.size_bytes() > 0);
    }

    #[test]
    fn cost_matches_benchmark_model() {
        let benchmark = crate::setquery::benchmark();
        let executor = QueryExecutor::new(&benchmark);
        let instance = QueryInstance::new(TemplateId(0), 7);
        let result = executor.execute(instance);
        assert_eq!(result.cost.value(), benchmark.cost_blocks(instance) as f64);
        assert_eq!(
            executor.page_accesses(instance).len() as u64,
            benchmark.cost_blocks(instance)
        );
    }

    #[test]
    fn query_key_is_stable_and_compressed() {
        let benchmark = crate::tpcd::benchmark();
        let executor = QueryExecutor::new(&benchmark);
        let key = executor.query_key(QueryInstance::new(TemplateId(5), 9));
        assert_eq!(
            key,
            executor.query_key(QueryInstance::new(TemplateId(5), 9))
        );
        assert!(
            !key.text().contains("  "),
            "query ID must be delimiter-compressed"
        );
    }
}
