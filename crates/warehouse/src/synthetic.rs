//! The synthetic multi-relation workload used for the buffer-manager
//! interaction experiment (paper §4.2, Figure 7).
//!
//! That experiment does not reuse the TPC-D or Set Query databases; the paper
//! describes "an environment with a 15 Mbyte page buffer pool, a 15 Mbyte
//! WATCHMAN cache and **14 relations of total size 100 Mbytes**", driven by
//! 17 000 queries producing more than 26 million page references.  This
//! module builds that environment: fourteen relations whose sizes follow a
//! mild Zipf-like progression and a family of templates that scan and join
//! subsets of them, so that pages are shared between queries and the
//! p₀-redundancy hints have something to act on.

use crate::benchmark::{Benchmark, BenchmarkKind};
use crate::catalog::{Catalog, Relation};
use crate::pages::RelationId;
use crate::template::{
    QueryTemplate, RelationAccess, RowCountModel, SummarizationLevel, TemplateId,
};

/// Number of relations in the buffer-experiment database.
pub const RELATION_COUNT: usize = 14;

/// The paper's database size for the buffer experiment: 100 MB.
pub const PAPER_DATABASE_BYTES: u64 = 100 * 1024 * 1024;

/// Builds the 14-relation catalog with total size approximately
/// `target_bytes`.
pub fn catalog(target_bytes: u64) -> Catalog {
    // Weights decay geometrically so there are a few large fact tables and
    // many smaller dimension tables, as in a real warehouse star schema.
    let weights: Vec<f64> = (0..RELATION_COUNT)
        .map(|i| 0.78_f64.powi(i as i32))
        .collect();
    let total_weight: f64 = weights.iter().sum();
    let relations = weights
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let bytes = (target_bytes as f64 * w / total_weight).round() as u64;
            let row_bytes = 120;
            Relation::new(
                format!("REL{i:02}"),
                (bytes / row_bytes).max(1),
                row_bytes as u32,
            )
        })
        .collect();
    Catalog::new("BufferWorkload", relations)
}

/// Builds the query templates for the buffer experiment.
///
/// Each template joins a small group of relations (one large "fact" relation
/// scanned selectively plus a few smaller ones scanned fully), with parameter
/// spaces spanning the drill-down range so that a realistic share of queries
/// repeats and can be satisfied from the WATCHMAN cache.
pub fn templates() -> Vec<QueryTemplate> {
    let mut templates = Vec::new();
    let spaces: [u64; 10] = [
        20,
        40,
        80,
        150,
        400,
        2_000,
        20_000,
        1_000_000,
        100_000_000,
        1_000_000_000_000,
    ];
    for (i, &space) in spaces.iter().enumerate() {
        let fact = RelationId((i % 4) as u16);
        let dim_a = RelationId((4 + (i * 3) % 10) as u16);
        let dim_b = RelationId((4 + (i * 7 + 2) % 10) as u16);
        let summarization = if space <= 200 {
            SummarizationLevel::High
        } else if space <= 100_000 {
            SummarizationLevel::Medium
        } else {
            SummarizationLevel::Low
        };
        let result_rows = match summarization {
            SummarizationLevel::High => RowCountModel::Fixed(8),
            SummarizationLevel::Medium => RowCountModel::Range { min: 20, max: 200 },
            SummarizationLevel::Low => RowCountModel::Range {
                min: 100,
                max: 2_000,
            },
        };
        templates.push(QueryTemplate {
            id: TemplateId(i as u16),
            name: format!("B{i}"),
            sql_pattern: format!(
                "SELECT g, sum(v) FROM rel{:02} f, rel{:02} a, rel{:02} b WHERE f.k = a.k AND f.j = b.k AND f.filter = :p GROUP BY g",
                fact.0, dim_a.0, dim_b.0
            ),
            summarization,
            instance_space: space,
            accesses: vec![
                RelationAccess::selective(fact, 0.20 + 0.05 * (i % 3) as f64),
                RelationAccess::scan(dim_a),
                RelationAccess::scan(dim_b),
            ],
            result_rows,
            result_row_bytes: 40,
        });
    }
    templates
}

/// Builds the full buffer-experiment benchmark at the paper's 100 MB scale.
pub fn benchmark() -> Benchmark {
    benchmark_with(PAPER_DATABASE_BYTES, 0x4255_4646)
}

/// Builds the buffer-experiment benchmark with a custom size and seed.
pub fn benchmark_with(database_bytes: u64, seed: u64) -> Benchmark {
    Benchmark::new(
        BenchmarkKind::SetQuery,
        catalog(database_bytes),
        templates(),
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::QueryInstance;

    #[test]
    fn catalog_has_fourteen_relations_totalling_target_size() {
        let c = catalog(PAPER_DATABASE_BYTES);
        assert_eq!(c.relation_count(), RELATION_COUNT);
        let total = c.total_bytes() as f64;
        let target = PAPER_DATABASE_BYTES as f64;
        assert!((total - target).abs() / target < 0.02);
    }

    #[test]
    fn relation_sizes_are_skewed() {
        let c = catalog(PAPER_DATABASE_BYTES);
        let first = c.relations()[0].total_bytes();
        let last = c.relations()[RELATION_COUNT - 1].total_bytes();
        assert!(first > 5 * last, "fact tables must dwarf dimension tables");
    }

    #[test]
    fn templates_reference_valid_relations_and_spaces() {
        let b = benchmark();
        assert_eq!(b.template_count(), 10);
        for t in b.templates() {
            assert_eq!(t.accesses.len(), 3);
        }
        let spaces: Vec<u64> = b.templates().iter().map(|t| t.instance_space).collect();
        assert!(spaces.iter().any(|&s| s <= 100));
        assert!(spaces.iter().any(|&s| s >= 1_000_000_000));
    }

    #[test]
    fn queries_generate_many_page_references() {
        let b = benchmark();
        let pages = b.page_accesses(QueryInstance::new(TemplateId(0), 3));
        // Each query touches on the order of thousands of pages, consistent
        // with 17 000 queries generating over 26 million page references.
        assert!(pages.len() > 500, "only {} pages referenced", pages.len());
    }

    #[test]
    fn page_references_overlap_between_different_templates() {
        // The p0-redundancy mechanism only matters if different queries share
        // pages; verify that two templates reading the same fact relation
        // overlap.
        let b = benchmark();
        use std::collections::HashSet;
        let a: HashSet<_> = b
            .page_accesses(QueryInstance::new(TemplateId(0), 1))
            .into_iter()
            .collect();
        let c: HashSet<_> = b
            .page_accesses(QueryInstance::new(TemplateId(4), 2))
            .into_iter()
            .collect();
        assert!(a.intersection(&c).count() > 0);
    }
}
