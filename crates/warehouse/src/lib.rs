//! # watchman-warehouse
//!
//! The synthetic data-warehouse substrate for the WATCHMAN reproduction.
//!
//! The paper gathered its traces by running the TPC-D and Set Query
//! benchmarks against an Oracle 7 installation (30 MB and 100 MB databases
//! respectively) and recording, per query, the retrieval timestamp, the query
//! ID, the retrieved-set size and the execution cost in logical block reads.
//! This crate replaces that installation with a deterministic model:
//!
//! * [`catalog`] — relations, row counts and page counts for a target
//!   database size;
//! * [`template`] — query templates with parameter spaces spanning many
//!   orders of magnitude (the "drill-down analysis" distribution);
//! * [`benchmark`] — the cost, result-size and page-access models tying a
//!   catalog and its templates together;
//! * [`tpcd`], [`setquery`], [`synthetic`] — the three concrete workloads
//!   used in the paper's experiments (TPC-D, Set Query, and the 14-relation
//!   buffer-manager workload of Figure 7);
//! * [`executor`] — turns a [`template::QueryInstance`] into a cache key, an
//!   execution cost and a materialized retrieved set.
//!
//! Everything is a pure function of the query instance and the benchmark
//! seed, so traces and experiments are exactly reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod benchmark;
pub mod catalog;
pub mod datagen;
pub mod executor;
pub mod hashing;
pub mod pages;
pub mod setquery;
pub mod synthetic;
pub mod template;
pub mod tpcd;

pub use benchmark::{Benchmark, BenchmarkKind};
pub use catalog::{Catalog, Relation};
pub use datagen::{ColumnKind, ColumnSpec, DataGenerator};
pub use executor::{ExecutionResult, QueryExecutor};
pub use pages::{PageId, RelationId, PAGE_SIZE_BYTES};
pub use template::{
    AccessKind, QueryInstance, QueryTemplate, RelationAccess, RowCountModel, SummarizationLevel,
    TemplateId,
};
