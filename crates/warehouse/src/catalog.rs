//! The warehouse catalog: relations, their sizes and page counts.
//!
//! The paper's traces were collected against physical databases of 30 MB
//! (TPC-D) and 100 MB (Set Query).  The catalog captures exactly the
//! information the cost and access models need — relation cardinalities, row
//! widths and derived page counts — without materializing any tuple data.

use serde::{Deserialize, Serialize};

use crate::pages::{PageId, RelationId, PAGE_SIZE_BYTES};

/// Metadata for one relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relation {
    /// Relation name (upper-case by convention, e.g. `LINEITEM`).
    pub name: String,
    /// Number of rows.
    pub row_count: u64,
    /// Average row width in bytes.
    pub row_bytes: u32,
}

impl Relation {
    /// Creates relation metadata.
    pub fn new(name: impl Into<String>, row_count: u64, row_bytes: u32) -> Self {
        Relation {
            name: name.into(),
            row_count,
            row_bytes: row_bytes.max(1),
        }
    }

    /// Total data volume of the relation in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.row_count * u64::from(self.row_bytes)
    }

    /// Number of pages the relation occupies (at least one).
    pub fn pages(&self) -> u32 {
        let pages = self.total_bytes().div_ceil(PAGE_SIZE_BYTES);
        u32::try_from(pages.max(1)).unwrap_or(u32::MAX)
    }

    /// Rows per page (at least one).
    pub fn rows_per_page(&self) -> u64 {
        (PAGE_SIZE_BYTES / u64::from(self.row_bytes)).max(1)
    }
}

/// The collection of relations forming one benchmark database.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Catalog {
    name: String,
    relations: Vec<Relation>,
}

impl Catalog {
    /// Creates a catalog from a list of relations.
    pub fn new(name: impl Into<String>, relations: Vec<Relation>) -> Self {
        Catalog {
            name: name.into(),
            relations,
        }
    }

    /// The catalog (benchmark database) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All relations, in id order.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Looks up a relation by id.
    pub fn relation(&self, id: RelationId) -> Option<&Relation> {
        self.relations.get(id.index())
    }

    /// Looks up a relation id by name (case-sensitive).
    pub fn relation_id(&self, name: &str) -> Option<RelationId> {
        self.relations
            .iter()
            .position(|r| r.name == name)
            .map(|i| RelationId(i as u16))
    }

    /// Total database size in bytes (data only, excluding indices, matching
    /// the paper's reported sizes).
    pub fn total_bytes(&self) -> u64 {
        self.relations.iter().map(Relation::total_bytes).sum()
    }

    /// Total number of data pages.
    pub fn total_pages(&self) -> u64 {
        self.relations.iter().map(|r| u64::from(r.pages())).sum()
    }

    /// Iterates over every page id of a relation.
    pub fn pages_of(&self, id: RelationId) -> impl Iterator<Item = PageId> + '_ {
        let pages = self.relation(id).map_or(0, Relation::pages);
        (0..pages).map(move |p| PageId::new(id, p))
    }

    /// A cache size expressed as a fraction of the database size, in bytes —
    /// the way all cache sizes are specified in the paper's experiments
    /// ("cache size (% of database size)").
    pub fn cache_bytes_for_fraction(&self, fraction: f64) -> u64 {
        let fraction = fraction.clamp(0.0, 1.0);
        (self.total_bytes() as f64 * fraction).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_catalog() -> Catalog {
        Catalog::new(
            "SAMPLE",
            vec![
                Relation::new("SMALL", 100, 64),
                Relation::new("BIG", 100_000, 128),
            ],
        )
    }

    #[test]
    fn relation_derived_quantities() {
        let r = Relation::new("T", 10_000, 100);
        assert_eq!(r.total_bytes(), 1_000_000);
        assert_eq!(r.pages(), 245); // ceil(1_000_000 / 4096)
        assert_eq!(r.rows_per_page(), 40);
    }

    #[test]
    fn tiny_relation_occupies_at_least_one_page() {
        let r = Relation::new("TINY", 1, 8);
        assert_eq!(r.pages(), 1);
        assert!(r.rows_per_page() >= 1);
    }

    #[test]
    fn catalog_lookup_by_name_and_id() {
        let catalog = sample_catalog();
        let big = catalog.relation_id("BIG").unwrap();
        assert_eq!(big, RelationId(1));
        assert_eq!(catalog.relation(big).unwrap().name, "BIG");
        assert!(catalog.relation_id("MISSING").is_none());
        assert!(catalog.relation(RelationId(9)).is_none());
    }

    #[test]
    fn totals_sum_over_relations() {
        let catalog = sample_catalog();
        assert_eq!(catalog.total_bytes(), 100 * 64 + 100_000 * 128);
        assert_eq!(
            catalog.total_pages(),
            u64::from(catalog.relations()[0].pages()) + u64::from(catalog.relations()[1].pages())
        );
        assert_eq!(catalog.relation_count(), 2);
    }

    #[test]
    fn pages_of_enumerates_every_page() {
        let catalog = sample_catalog();
        let small = catalog.relation_id("SMALL").unwrap();
        let pages: Vec<PageId> = catalog.pages_of(small).collect();
        assert_eq!(
            pages.len(),
            catalog.relation(small).unwrap().pages() as usize
        );
        assert_eq!(pages[0], PageId::new(small, 0));
    }

    #[test]
    fn cache_fraction_conversion() {
        let catalog = sample_catalog();
        let one_percent = catalog.cache_bytes_for_fraction(0.01);
        assert_eq!(
            one_percent,
            (catalog.total_bytes() as f64 * 0.01).round() as u64
        );
        assert_eq!(catalog.cache_bytes_for_fraction(-1.0), 0);
        assert_eq!(catalog.cache_bytes_for_fraction(2.0), catalog.total_bytes());
    }
}
