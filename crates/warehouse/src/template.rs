//! Query templates and query instances.
//!
//! Both benchmarks used in the paper are defined as a set of *query
//! templates* that are instantiated with randomly drawn parameters (paper
//! §4.1).  Because the parameter spaces of different templates differ by many
//! orders of magnitude, instantiating them uniformly produces the
//! "drill-down analysis" reference distribution: high-summarization queries
//! (small parameter spaces) repeat frequently within a trace, while
//! low-summarization queries (huge parameter spaces) essentially never
//! repeat.
//!
//! A [`QueryTemplate`] describes everything the warehouse needs to know about
//! one template: its parameter-space size, which relations it touches and
//! how, and the shape of its retrieved set.  A [`QueryInstance`] is a
//! template plus one point of its parameter space.

use serde::{Deserialize, Serialize};

use crate::pages::RelationId;

/// Identifies a query template within a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TemplateId(pub u16);

impl TemplateId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// The summarization level of a template in the drill-down hierarchy.
///
/// High-summarization queries aggregate large portions of the warehouse into
/// tiny statistical results and are re-issued frequently by many users;
/// low-summarization queries drill down to detail data, produce larger
/// retrieved sets and rarely repeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SummarizationLevel {
    /// Top of the drill-down hierarchy: tiny results, frequent repetition.
    High,
    /// Intermediate level.
    Medium,
    /// Detail level: larger results, essentially never repeated.
    Low,
}

/// How a template reads one relation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessKind {
    /// Reads every page of the relation (table scan, scan side of a join).
    FullScan,
    /// Reads roughly `fraction` of the relation's pages (index range scan /
    /// selective predicate).  The exact count varies per instance.
    Selective {
        /// Fraction of the relation's pages touched, in `(0, 1]`.
        fraction: f64,
    },
    /// Reads a fixed small number of pages (index point lookups).
    IndexLookup {
        /// Number of pages touched.
        pages: u32,
    },
}

/// One relation access performed by a template.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelationAccess {
    /// The relation read.
    pub relation: RelationId,
    /// How it is read.
    pub access: AccessKind,
}

impl RelationAccess {
    /// Convenience constructor for a full scan.
    pub fn scan(relation: RelationId) -> Self {
        RelationAccess {
            relation,
            access: AccessKind::FullScan,
        }
    }

    /// Convenience constructor for a selective scan.
    pub fn selective(relation: RelationId, fraction: f64) -> Self {
        RelationAccess {
            relation,
            access: AccessKind::Selective {
                fraction: fraction.clamp(1e-6, 1.0),
            },
        }
    }

    /// Convenience constructor for an index lookup.
    pub fn lookup(relation: RelationId, pages: u32) -> Self {
        RelationAccess {
            relation,
            access: AccessKind::IndexLookup {
                pages: pages.max(1),
            },
        }
    }
}

/// The number of rows a template's retrieved set contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowCountModel {
    /// Every instance returns exactly this many rows.
    Fixed(u64),
    /// Instances return between `min` and `max` rows (inclusive), varying
    /// deterministically with the parameter value.
    Range {
        /// Minimum number of rows.
        min: u64,
        /// Maximum number of rows.
        max: u64,
    },
}

impl RowCountModel {
    /// The largest number of rows any instance of the template can return.
    pub fn max_rows(&self) -> u64 {
        match *self {
            RowCountModel::Fixed(n) => n,
            RowCountModel::Range { max, .. } => max,
        }
    }
}

/// A benchmark query template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTemplate {
    /// The template's id within its benchmark.
    pub id: TemplateId,
    /// Short name, e.g. `"Q6"` or `"SQ3B"`.
    pub name: String,
    /// A human-readable SQL pattern; the literal `:p` is replaced by the
    /// instance parameter when building the query ID.
    pub sql_pattern: String,
    /// Where the template sits in the drill-down hierarchy.
    pub summarization: SummarizationLevel,
    /// Number of distinct parameter combinations the template can be
    /// instantiated with.
    pub instance_space: u64,
    /// The relation accesses the template performs.
    pub accesses: Vec<RelationAccess>,
    /// Shape of the retrieved set.
    pub result_rows: RowCountModel,
    /// Average bytes per result row.
    pub result_row_bytes: u32,
}

impl QueryTemplate {
    /// Whether two different parameter values ever produce the same query ID.
    /// (They never do; this is the exact-match caching model of §3.)
    pub fn instance_space(&self) -> u64 {
        self.instance_space.max(1)
    }

    /// Names of the result columns (synthesized from the template name).
    pub fn result_columns(&self) -> Vec<String> {
        vec![
            format!("{}_group", self.name.to_lowercase()),
            "agg_sum".to_owned(),
            "agg_count".to_owned(),
        ]
    }
}

/// One instantiation of a query template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QueryInstance {
    /// The template being instantiated.
    pub template: TemplateId,
    /// The parameter value, in `[0, instance_space)`.
    pub param: u64,
}

impl QueryInstance {
    /// Creates a query instance.
    pub const fn new(template: TemplateId, param: u64) -> Self {
        QueryInstance { template, param }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template() -> QueryTemplate {
        QueryTemplate {
            id: TemplateId(3),
            name: "Q3".into(),
            sql_pattern: "SELECT sum(x) FROM t WHERE k = :p".into(),
            summarization: SummarizationLevel::High,
            instance_space: 100,
            accesses: vec![RelationAccess::scan(RelationId(0))],
            result_rows: RowCountModel::Fixed(10),
            result_row_bytes: 32,
        }
    }

    #[test]
    fn access_constructors_clamp_inputs() {
        let sel = RelationAccess::selective(RelationId(1), 5.0);
        assert_eq!(
            sel.access,
            AccessKind::Selective { fraction: 1.0 },
            "fractions are clamped to (0, 1]"
        );
        let lookup = RelationAccess::lookup(RelationId(1), 0);
        assert_eq!(lookup.access, AccessKind::IndexLookup { pages: 1 });
    }

    #[test]
    fn row_count_model_max() {
        assert_eq!(RowCountModel::Fixed(7).max_rows(), 7);
        assert_eq!(RowCountModel::Range { min: 1, max: 9 }.max_rows(), 9);
    }

    #[test]
    fn template_instance_space_is_at_least_one() {
        let mut t = template();
        t.instance_space = 0;
        assert_eq!(t.instance_space(), 1);
    }

    #[test]
    fn result_columns_are_derived_from_name() {
        let t = template();
        let cols = t.result_columns();
        assert_eq!(cols.len(), 3);
        assert_eq!(cols[0], "q3_group");
    }

    #[test]
    fn query_instances_compare_by_value() {
        let a = QueryInstance::new(TemplateId(1), 5);
        let b = QueryInstance::new(TemplateId(1), 5);
        let c = QueryInstance::new(TemplateId(1), 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
