//! A benchmark = a catalog + a set of query templates + the cost, result-size
//! and page-access models that tie them together.
//!
//! The paper collected its traces by running benchmark queries against a live
//! Oracle 7 installation and recording, for every query, the retrieval
//! timestamp, the query ID, the retrieved-set size and the execution cost
//! measured in logical block reads (§4.1).  [`Benchmark`] is the synthetic
//! substitute for that installation: given a [`QueryInstance`] it produces
//! deterministically
//!
//! * the canonical query text (and hence the query ID),
//! * the execution cost in logical block reads,
//! * the retrieved-set size in bytes (and, through
//!   [`crate::executor`], the actual rows), and
//! * the exact list of pages the execution reads (for the buffer-manager
//!   experiment of Figure 7).
//!
//! All quantities are pure functions of the instance, as they would be when
//! re-running a deterministic SQL query against a static warehouse.

use serde::{Deserialize, Serialize};

use crate::catalog::Catalog;
use crate::hashing::{bounded, mix3, unit_from};
use crate::pages::{PageId, RelationId};
use crate::template::{AccessKind, QueryInstance, QueryTemplate, RowCountModel, TemplateId};

/// Which of the two paper benchmarks a [`Benchmark`] instance models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkKind {
    /// The TPC-D decision-support benchmark (17 query templates, 30 MB
    /// database in the paper's setup).
    TpcD,
    /// The Set Query benchmark (modified parameterization, 100 MB database).
    SetQuery,
}

impl BenchmarkKind {
    /// A short display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            BenchmarkKind::TpcD => "TPC-D",
            BenchmarkKind::SetQuery => "Set Query",
        }
    }
}

impl std::fmt::Display for BenchmarkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A fully specified synthetic benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Benchmark {
    kind: BenchmarkKind,
    catalog: Catalog,
    templates: Vec<QueryTemplate>,
    /// Seed mixed into every deterministic draw so two benchmarks with the
    /// same templates but different seeds produce different (but internally
    /// consistent) workload details.
    seed: u64,
}

impl Benchmark {
    /// Creates a benchmark from its parts.
    ///
    /// # Panics
    ///
    /// Panics if a template references a relation that is not in the catalog,
    /// or if template ids are not dense and in order — these are programming
    /// errors in the benchmark definition, not runtime conditions.
    pub fn new(
        kind: BenchmarkKind,
        catalog: Catalog,
        templates: Vec<QueryTemplate>,
        seed: u64,
    ) -> Self {
        for (i, t) in templates.iter().enumerate() {
            assert_eq!(t.id.index(), i, "template ids must be dense and ordered");
            for access in &t.accesses {
                assert!(
                    catalog.relation(access.relation).is_some(),
                    "template {} references unknown relation {:?}",
                    t.name,
                    access.relation
                );
            }
        }
        Benchmark {
            kind,
            catalog,
            templates,
            seed,
        }
    }

    /// The benchmark kind.
    pub fn kind(&self) -> BenchmarkKind {
        self.kind
    }

    /// The catalog (database) this benchmark runs against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// All query templates.
    pub fn templates(&self) -> &[QueryTemplate] {
        &self.templates
    }

    /// Looks up a template by id.
    pub fn template(&self, id: TemplateId) -> Option<&QueryTemplate> {
        self.templates.get(id.index())
    }

    /// Number of templates.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// The workload seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn instance_seed(&self, instance: QueryInstance, stream: u64) -> u64 {
        mix3(
            self.seed ^ u64::from(instance.template.0),
            instance.param,
            stream,
        )
    }

    /// The canonical query text of an instance (the query ID of §3 is this
    /// text after delimiter compression).
    pub fn query_text(&self, instance: QueryInstance) -> String {
        let template = &self.templates[instance.template.index()];
        let rendered = if template.sql_pattern.contains(":p") {
            template
                .sql_pattern
                .replace(":p", &instance.param.to_string())
        } else {
            format!("{} -- p={}", template.sql_pattern, instance.param)
        };
        format!("/* {}.{} */ {}", self.kind.label(), template.name, rendered)
    }

    /// How many pages of each relation the instance reads.
    ///
    /// The total over all relations is the execution cost in logical block
    /// reads; [`Benchmark::page_accesses`] materializes exactly these counts.
    pub fn access_counts(&self, instance: QueryInstance) -> Vec<(RelationId, u32)> {
        let template = &self.templates[instance.template.index()];
        template
            .accesses
            .iter()
            .enumerate()
            .map(|(i, access)| {
                let relation_pages = self
                    .catalog
                    .relation(access.relation)
                    .map_or(1, |r| r.pages());
                let count = match access.access {
                    AccessKind::FullScan => relation_pages,
                    AccessKind::Selective { fraction } => {
                        // Vary the touched fraction by ±50 % across instances.
                        let factor =
                            0.5 + unit_from(self.instance_seed(instance, 100 + i as u64), 0);
                        let pages = (f64::from(relation_pages) * fraction * factor).ceil() as u32;
                        pages.clamp(1, relation_pages)
                    }
                    AccessKind::IndexLookup { pages } => pages.min(relation_pages).max(1),
                };
                (access.relation, count)
            })
            .collect()
    }

    /// The execution cost of an instance in logical block reads.
    pub fn cost_blocks(&self, instance: QueryInstance) -> u64 {
        self.access_counts(instance)
            .iter()
            .map(|&(_, count)| u64::from(count))
            .sum()
    }

    /// Number of rows in the instance's retrieved set.
    pub fn result_rows(&self, instance: QueryInstance) -> u64 {
        let template = &self.templates[instance.template.index()];
        match template.result_rows {
            RowCountModel::Fixed(n) => n,
            RowCountModel::Range { min, max } => {
                let span = max.saturating_sub(min) + 1;
                min + bounded(self.instance_seed(instance, 7), 0, span)
            }
        }
    }

    /// Size of the instance's retrieved set in bytes.
    ///
    /// A fixed per-set header models the result's schema metadata, so even a
    /// zero-row aggregate occupies a realistic minimum amount of cache space.
    pub fn result_bytes(&self, instance: QueryInstance) -> u64 {
        let template = &self.templates[instance.template.index()];
        let rows = self.result_rows(instance);
        64 + rows * u64::from(template.result_row_bytes)
    }

    /// The exact pages the instance reads, in execution order.
    ///
    /// Full scans enumerate every page of the relation; selective scans read
    /// a contiguous page range (modelling an index range scan on a clustered
    /// key); index lookups read individually chosen pages.  The list length
    /// equals [`Benchmark::cost_blocks`].
    pub fn page_accesses(&self, instance: QueryInstance) -> Vec<PageId> {
        let counts = self.access_counts(instance);
        let mut pages = Vec::with_capacity(counts.iter().map(|&(_, c)| c as usize).sum());
        for (i, (relation, count)) in counts.into_iter().enumerate() {
            let relation_pages = self.catalog.relation(relation).map_or(1, |r| r.pages());
            let seed = self.instance_seed(instance, 200 + i as u64);
            match self.templates[instance.template.index()].accesses[i].access {
                AccessKind::FullScan => {
                    pages.extend((0..count).map(|p| PageId::new(relation, p)));
                }
                AccessKind::Selective { .. } => {
                    let start = bounded(seed, 0, u64::from(relation_pages)) as u32;
                    pages.extend(
                        (0..count).map(|off| PageId::new(relation, (start + off) % relation_pages)),
                    );
                }
                AccessKind::IndexLookup { .. } => {
                    pages.extend((0..count).map(|off| {
                        PageId::new(
                            relation,
                            bounded(seed, u64::from(off), u64::from(relation_pages)) as u32,
                        )
                    }));
                }
            }
        }
        pages
    }

    /// An upper bound on the size of any retrieved set this benchmark can
    /// produce, used to sanity-check cache configurations.
    pub fn max_result_bytes(&self) -> u64 {
        self.templates
            .iter()
            .map(|t| 64 + t.result_rows.max_rows() * u64::from(t.result_row_bytes))
            .max()
            .unwrap_or(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Relation;
    use crate::template::{RelationAccess, SummarizationLevel};

    fn sample_benchmark() -> Benchmark {
        let catalog = Catalog::new(
            "TEST",
            vec![
                Relation::new("FACT", 100_000, 100), // ~2442 pages
                Relation::new("DIM", 1_000, 50),     // ~13 pages
            ],
        );
        let fact = RelationId(0);
        let dim = RelationId(1);
        let templates = vec![
            QueryTemplate {
                id: TemplateId(0),
                name: "AGG".into(),
                sql_pattern: "SELECT sum(v) FROM fact, dim WHERE fact.k = dim.k AND dim.g = :p"
                    .into(),
                summarization: SummarizationLevel::High,
                instance_space: 50,
                accesses: vec![RelationAccess::scan(fact), RelationAccess::scan(dim)],
                result_rows: RowCountModel::Fixed(5),
                result_row_bytes: 40,
            },
            QueryTemplate {
                id: TemplateId(1),
                name: "DETAIL".into(),
                sql_pattern: "SELECT * FROM fact WHERE k BETWEEN :p AND :p+100".into(),
                summarization: SummarizationLevel::Low,
                instance_space: 1_000_000_000,
                accesses: vec![RelationAccess::selective(fact, 0.05)],
                result_rows: RowCountModel::Range { min: 50, max: 500 },
                result_row_bytes: 100,
            },
            QueryTemplate {
                id: TemplateId(2),
                name: "POINT".into(),
                sql_pattern: "SELECT v FROM dim WHERE k = :p".into(),
                summarization: SummarizationLevel::High,
                instance_space: 10,
                accesses: vec![RelationAccess::lookup(dim, 3)],
                result_rows: RowCountModel::Fixed(1),
                result_row_bytes: 16,
            },
        ];
        Benchmark::new(BenchmarkKind::TpcD, catalog, templates, 42)
    }

    #[test]
    fn query_text_embeds_parameter_and_template() {
        let b = sample_benchmark();
        let text = b.query_text(QueryInstance::new(TemplateId(0), 7));
        assert!(text.contains("dim.g = 7"));
        assert!(text.contains("TPC-D.AGG"));
        // Different parameters give different query IDs.
        let other = b.query_text(QueryInstance::new(TemplateId(0), 8));
        assert_ne!(text, other);
    }

    #[test]
    fn cost_is_deterministic_per_instance() {
        let b = sample_benchmark();
        let i = QueryInstance::new(TemplateId(1), 123);
        assert_eq!(b.cost_blocks(i), b.cost_blocks(i));
        assert_eq!(b.result_bytes(i), b.result_bytes(i));
        assert_eq!(b.page_accesses(i), b.page_accesses(i));
    }

    #[test]
    fn full_scan_cost_equals_relation_pages() {
        let b = sample_benchmark();
        let i = QueryInstance::new(TemplateId(0), 3);
        let fact_pages = b.catalog().relation(RelationId(0)).unwrap().pages();
        let dim_pages = b.catalog().relation(RelationId(1)).unwrap().pages();
        assert_eq!(
            b.cost_blocks(i),
            u64::from(fact_pages) + u64::from(dim_pages)
        );
    }

    #[test]
    fn selective_costs_vary_across_instances_but_stay_bounded() {
        let b = sample_benchmark();
        let fact_pages = u64::from(b.catalog().relation(RelationId(0)).unwrap().pages());
        let costs: Vec<u64> = (0..50)
            .map(|p| b.cost_blocks(QueryInstance::new(TemplateId(1), p)))
            .collect();
        assert!(costs.iter().any(|&c| c != costs[0]), "costs should vary");
        for &c in &costs {
            assert!(c >= 1);
            assert!(c <= fact_pages);
        }
    }

    #[test]
    fn page_accesses_length_equals_cost() {
        let b = sample_benchmark();
        for template in 0..3u16 {
            for param in 0..5u64 {
                let i = QueryInstance::new(TemplateId(template), param);
                assert_eq!(
                    b.page_accesses(i).len() as u64,
                    b.cost_blocks(i),
                    "template {template} param {param}"
                );
            }
        }
    }

    #[test]
    fn page_accesses_reference_valid_pages() {
        let b = sample_benchmark();
        for param in 0..10u64 {
            for page in b.page_accesses(QueryInstance::new(TemplateId(1), param)) {
                let rel = b.catalog().relation(page.relation).unwrap();
                assert!(page.page < rel.pages());
            }
        }
    }

    #[test]
    fn result_rows_respect_the_model() {
        let b = sample_benchmark();
        assert_eq!(b.result_rows(QueryInstance::new(TemplateId(0), 9)), 5);
        for p in 0..50 {
            let rows = b.result_rows(QueryInstance::new(TemplateId(1), p));
            assert!((50..=500).contains(&rows));
        }
    }

    #[test]
    fn result_bytes_include_header() {
        let b = sample_benchmark();
        let i = QueryInstance::new(TemplateId(2), 1);
        assert_eq!(b.result_bytes(i), 64 + 16);
    }

    #[test]
    fn max_result_bytes_covers_all_templates() {
        let b = sample_benchmark();
        assert_eq!(b.max_result_bytes(), 64 + 500 * 100);
    }

    #[test]
    #[should_panic(expected = "unknown relation")]
    fn construction_rejects_dangling_relation_references() {
        let catalog = Catalog::new("T", vec![Relation::new("A", 10, 10)]);
        let templates = vec![QueryTemplate {
            id: TemplateId(0),
            name: "BAD".into(),
            sql_pattern: "SELECT 1".into(),
            summarization: SummarizationLevel::High,
            instance_space: 1,
            accesses: vec![RelationAccess::scan(RelationId(5))],
            result_rows: RowCountModel::Fixed(1),
            result_row_bytes: 8,
        }];
        let _ = Benchmark::new(BenchmarkKind::TpcD, catalog, templates, 0);
    }

    #[test]
    fn kind_labels() {
        assert_eq!(BenchmarkKind::TpcD.label(), "TPC-D");
        assert_eq!(BenchmarkKind::SetQuery.to_string(), "Set Query");
    }
}
