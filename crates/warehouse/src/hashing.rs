//! Small deterministic hashing helpers used by the cost and access models.
//!
//! Every per-instance quantity (execution cost jitter, result size, page
//! selection) must be a *pure function* of the query instance so that
//! re-running the same query always yields the same cost and the same pages —
//! exactly as re-executing a deterministic SQL query against a static
//! warehouse would.  The helpers here are based on SplitMix64, which has
//! excellent avalanche behaviour and needs no allocation or state.

/// SplitMix64: maps a 64-bit value to a well-mixed 64-bit value.
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines two 64-bit values into one well-mixed value.
pub fn mix2(a: u64, b: u64) -> u64 {
    splitmix64(a ^ splitmix64(b))
}

/// Combines three 64-bit values into one well-mixed value.
pub fn mix3(a: u64, b: u64, c: u64) -> u64 {
    splitmix64(mix2(a, b) ^ splitmix64(c.wrapping_add(0x51_7C_C1_B7_27_22_0A_95)))
}

/// Maps a 64-bit value to a float uniformly distributed in `[0, 1)`.
pub fn unit_f64(value: u64) -> f64 {
    // Use the top 53 bits for a dyadic rational in [0, 1).
    (value >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic uniform draw in `[0, 1)` from a seed and a stream index.
pub fn unit_from(seed: u64, stream: u64) -> f64 {
    unit_f64(mix2(seed, stream))
}

/// Deterministic integer draw in `[0, bound)` (returns 0 for `bound == 0`).
pub fn bounded(seed: u64, stream: u64, bound: u64) -> u64 {
    if bound == 0 {
        0
    } else {
        mix2(seed, stream) % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        // Adjacent seeds should differ in many bits.
        let diff = (splitmix64(1) ^ splitmix64(2)).count_ones();
        assert!(diff > 16, "poor avalanche: only {diff} differing bits");
    }

    #[test]
    fn mix_functions_depend_on_all_arguments() {
        assert_ne!(mix2(1, 2), mix2(2, 1));
        assert_ne!(mix3(1, 2, 3), mix3(1, 2, 4));
        assert_ne!(mix3(1, 2, 3), mix3(3, 2, 1));
    }

    #[test]
    fn unit_values_are_in_range() {
        for i in 0..1_000u64 {
            let u = unit_from(12345, i);
            assert!((0.0..1.0).contains(&u), "out of range: {u}");
        }
    }

    #[test]
    fn unit_values_are_roughly_uniform() {
        let n = 10_000u64;
        let mean: f64 = (0..n).map(|i| unit_from(7, i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn bounded_respects_bound() {
        for i in 0..100u64 {
            assert!(bounded(9, i, 17) < 17);
        }
        assert_eq!(bounded(9, 1, 0), 0);
        assert_eq!(bounded(9, 1, 1), 0);
    }
}
