//! Synthetic tuple generation for the warehouse relations.
//!
//! The paper populated its benchmark databases "with synthetic data according
//! to the benchmark specifications".  The cache-policy experiments only need
//! the *derived* quantities (sizes, costs, page counts), but applications
//! embedding the library — and the examples — benefit from being able to look
//! at actual rows.  This module generates deterministic synthetic tuples for
//! any relation page: the same `(relation, page, row)` coordinates always
//! produce the same tuple, so generated data behaves like a static warehouse
//! without storing anything.

use watchman_core::value::{Datum, Row};

use crate::catalog::Catalog;
use crate::hashing::{bounded, mix3, unit_from};
use crate::pages::{PageId, RelationId};

/// Column kinds used by the synthetic schemas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColumnKind {
    /// A dense primary-key-like integer.
    SequentialKey,
    /// A foreign-key-like integer drawn from `[0, cardinality)`.
    ForeignKey {
        /// Number of distinct values.
        cardinality: u64,
    },
    /// A measure (price, quantity, discount) in `[0, scale)`.
    Measure {
        /// Upper bound of the generated values.
        scale: f64,
    },
    /// A low-cardinality categorical code ("flag", "status", "segment").
    Category {
        /// Number of distinct categories.
        cardinality: u64,
    },
}

/// A synthetic column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// How values are generated.
    pub kind: ColumnKind,
}

impl ColumnSpec {
    /// Creates a column spec.
    pub fn new(name: impl Into<String>, kind: ColumnKind) -> Self {
        ColumnSpec {
            name: name.into(),
            kind,
        }
    }
}

/// A deterministic tuple generator for one catalog.
#[derive(Debug, Clone)]
pub struct DataGenerator<'a> {
    catalog: &'a Catalog,
    seed: u64,
}

impl<'a> DataGenerator<'a> {
    /// Creates a generator for the catalog with the given seed.
    pub fn new(catalog: &'a Catalog, seed: u64) -> Self {
        DataGenerator { catalog, seed }
    }

    /// A generic column layout used for relations without a bespoke schema:
    /// a sequential key, two foreign keys, two measures and a category.
    pub fn default_columns(&self, relation: RelationId) -> Vec<ColumnSpec> {
        let rows = self
            .catalog
            .relation(relation)
            .map_or(1, |r| r.row_count.max(1));
        vec![
            ColumnSpec::new("row_key", ColumnKind::SequentialKey),
            ColumnSpec::new(
                "fk_primary",
                ColumnKind::ForeignKey {
                    cardinality: (rows / 10).max(1),
                },
            ),
            ColumnSpec::new(
                "fk_secondary",
                ColumnKind::ForeignKey {
                    cardinality: (rows / 100).max(1),
                },
            ),
            ColumnSpec::new("amount", ColumnKind::Measure { scale: 10_000.0 }),
            ColumnSpec::new("quantity", ColumnKind::Measure { scale: 50.0 }),
            ColumnSpec::new("status", ColumnKind::Category { cardinality: 5 }),
        ]
    }

    /// The number of rows stored on a given page (the last page may be
    /// partially filled).
    pub fn rows_on_page(&self, page: PageId) -> u64 {
        let Some(relation) = self.catalog.relation(page.relation) else {
            return 0;
        };
        let per_page = relation.rows_per_page();
        let start = u64::from(page.page) * per_page;
        if start >= relation.row_count {
            0
        } else {
            per_page.min(relation.row_count - start)
        }
    }

    /// Generates one tuple identified by `(relation, row_index)`.
    pub fn row(&self, relation: RelationId, row_index: u64, columns: &[ColumnSpec]) -> Row {
        let seed = mix3(self.seed, u64::from(relation.0), row_index);
        columns
            .iter()
            .enumerate()
            .map(|(i, column)| {
                let stream = i as u64;
                match column.kind {
                    ColumnKind::SequentialKey => Datum::Int(row_index as i64),
                    ColumnKind::ForeignKey { cardinality } => {
                        Datum::Int(bounded(seed, stream, cardinality) as i64)
                    }
                    ColumnKind::Measure { scale } => Datum::Float(unit_from(seed, stream) * scale),
                    ColumnKind::Category { cardinality } => {
                        let code = bounded(seed, stream, cardinality);
                        Datum::Text(format!("C{code:02}"))
                    }
                }
            })
            .collect()
    }

    /// Generates every tuple stored on a page.
    pub fn page_rows(&self, page: PageId, columns: &[ColumnSpec]) -> Vec<Row> {
        let Some(relation) = self.catalog.relation(page.relation) else {
            return Vec::new();
        };
        let per_page = relation.rows_per_page();
        let start = u64::from(page.page) * per_page;
        (0..self.rows_on_page(page))
            .map(|offset| self.row(page.relation, start + offset, columns))
            .collect()
    }

    /// Total number of rows the generator will produce for a relation
    /// (matches the catalog's cardinality).
    pub fn total_rows(&self, relation: RelationId) -> u64 {
        self.catalog.relation(relation).map_or(0, |r| r.row_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Relation;

    fn catalog() -> Catalog {
        Catalog::new(
            "GEN",
            vec![
                Relation::new("FACT", 1_000, 100),
                Relation::new("DIM", 37, 64),
            ],
        )
    }

    #[test]
    fn rows_are_deterministic() {
        let catalog = catalog();
        let generator = DataGenerator::new(&catalog, 7);
        let columns = generator.default_columns(RelationId(0));
        let a = generator.row(RelationId(0), 123, &columns);
        let b = generator.row(RelationId(0), 123, &columns);
        assert_eq!(a, b);
        let c = generator.row(RelationId(0), 124, &columns);
        assert_ne!(a, c);
    }

    #[test]
    fn sequential_key_matches_row_index() {
        let catalog = catalog();
        let generator = DataGenerator::new(&catalog, 7);
        let columns = generator.default_columns(RelationId(0));
        let row = generator.row(RelationId(0), 55, &columns);
        assert_eq!(row[0], Datum::Int(55));
    }

    #[test]
    fn foreign_keys_and_categories_stay_in_range() {
        let catalog = catalog();
        let generator = DataGenerator::new(&catalog, 9);
        let columns = vec![
            ColumnSpec::new("fk", ColumnKind::ForeignKey { cardinality: 10 }),
            ColumnSpec::new("cat", ColumnKind::Category { cardinality: 3 }),
            ColumnSpec::new("m", ColumnKind::Measure { scale: 100.0 }),
        ];
        for row_index in 0..200 {
            let row = generator.row(RelationId(0), row_index, &columns);
            match (&row[0], &row[1], &row[2]) {
                (Datum::Int(fk), Datum::Text(cat), Datum::Float(m)) => {
                    assert!((0..10).contains(fk));
                    assert!(["C00", "C01", "C02"].contains(&cat.as_str()));
                    assert!((0.0..100.0).contains(m));
                }
                other => panic!("unexpected row shape: {other:?}"),
            }
        }
    }

    #[test]
    fn page_rows_cover_the_relation_exactly_once() {
        let catalog = catalog();
        let generator = DataGenerator::new(&catalog, 3);
        let dim = RelationId(1);
        let columns = generator.default_columns(dim);
        let mut total = 0u64;
        for page in catalog.pages_of(dim) {
            let rows = generator.page_rows(page, &columns);
            assert_eq!(rows.len() as u64, generator.rows_on_page(page));
            total += rows.len() as u64;
        }
        assert_eq!(total, generator.total_rows(dim));
        assert_eq!(total, 37);
    }

    #[test]
    fn out_of_range_pages_yield_no_rows() {
        let catalog = catalog();
        let generator = DataGenerator::new(&catalog, 3);
        let beyond = PageId::new(RelationId(1), 10_000);
        assert_eq!(generator.rows_on_page(beyond), 0);
        assert!(generator
            .page_rows(beyond, &generator.default_columns(RelationId(1)))
            .is_empty());
        let missing_relation = PageId::new(RelationId(9), 0);
        assert_eq!(generator.rows_on_page(missing_relation), 0);
    }
}
