//! The TPC-D benchmark definition (scaled to the paper's 30 MB database).
//!
//! The paper populated a 30 MB TPC-D database (about scale factor 0.03),
//! excluded the two update templates, and ran 17 000 random instantiations of
//! the remaining 17 query templates.  This module defines the scaled catalog
//! and the 17 templates.  Parameter-space sizes follow the benchmark's
//! parameter-substitution rules in spirit: they range from a few tens of
//! combinations (high-summarization queries such as Q1 or Q6, which therefore
//! repeat frequently in a 17 000-query trace) up to 10¹³–10¹⁵ combinations
//! (low-summarization queries that essentially never repeat), which is the
//! "drill-down analysis" distribution the paper relies on.
//!
//! Every TPC-D query joins and/or scans the large `LINEITEM`/`ORDERS` tables,
//! so execution costs are uniformly high; retrieved sets at high
//! summarization levels are tiny (a handful of aggregate rows) while
//! drill-down queries return larger sets.  Both properties are what the
//! paper's analysis of Figure 2 attributes the TPC-D results to.

use crate::benchmark::{Benchmark, BenchmarkKind};
use crate::catalog::{Catalog, Relation};
use crate::pages::RelationId;
use crate::template::{
    QueryTemplate, RelationAccess, RowCountModel, SummarizationLevel, TemplateId,
};

/// Relation indices of the TPC-D catalog, in catalog order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpcdRelations {
    /// `LINEITEM`
    pub lineitem: RelationId,
    /// `ORDERS`
    pub orders: RelationId,
    /// `PARTSUPP`
    pub partsupp: RelationId,
    /// `PART`
    pub part: RelationId,
    /// `CUSTOMER`
    pub customer: RelationId,
    /// `SUPPLIER`
    pub supplier: RelationId,
    /// `NATION`
    pub nation: RelationId,
    /// `REGION`
    pub region: RelationId,
}

/// The fixed relation layout used by [`catalog`].
pub const RELATIONS: TpcdRelations = TpcdRelations {
    lineitem: RelationId(0),
    orders: RelationId(1),
    partsupp: RelationId(2),
    part: RelationId(3),
    customer: RelationId(4),
    supplier: RelationId(5),
    nation: RelationId(6),
    region: RelationId(7),
};

/// Builds the TPC-D catalog scaled so the total data volume is approximately
/// `target_bytes` (the paper used 30 MB).
///
/// Row counts follow the TPC-D cardinality ratios (LINEITEM : ORDERS :
/// PARTSUPP : PART : CUSTOMER : SUPPLIER = 6 000 000 : 1 500 000 : 800 000 :
/// 200 000 : 150 000 : 10 000 at scale factor 1); NATION and REGION are
/// fixed-size.
pub fn catalog(target_bytes: u64) -> Catalog {
    // Bytes per scale-factor-1 unit of each relation (row count × row bytes).
    // Total at SF 1 is ~1 GB; we scale linearly to the requested size.
    let sf = target_bytes as f64 / 1_015_000_000.0;
    let rows = |base: u64| ((base as f64 * sf).round() as u64).max(1);
    Catalog::new(
        "TPC-D",
        vec![
            Relation::new("LINEITEM", rows(6_000_000), 112),
            Relation::new("ORDERS", rows(1_500_000), 104),
            Relation::new("PARTSUPP", rows(800_000), 144),
            Relation::new("PART", rows(200_000), 128),
            Relation::new("CUSTOMER", rows(150_000), 160),
            Relation::new("SUPPLIER", rows(10_000), 144),
            Relation::new("NATION", 25, 88),
            Relation::new("REGION", 5, 88),
        ],
    )
}

/// The paper's database size for this benchmark: 30 MB.
pub const PAPER_DATABASE_BYTES: u64 = 30 * 1024 * 1024;

/// Builds the 17 TPC-D query templates (updates UF1/UF2 are excluded, as in
/// the paper).
pub fn templates() -> Vec<QueryTemplate> {
    let r = RELATIONS;
    let t = |id: u16,
             name: &str,
             sql: &str,
             summarization: SummarizationLevel,
             instance_space: u64,
             accesses: Vec<RelationAccess>,
             result_rows: RowCountModel,
             result_row_bytes: u32| QueryTemplate {
        id: TemplateId(id),
        name: name.to_owned(),
        sql_pattern: sql.to_owned(),
        summarization,
        instance_space,
        accesses,
        result_rows,
        result_row_bytes,
    };
    use RowCountModel::{Fixed, Range};
    use SummarizationLevel::{High, Low, Medium};

    vec![
        t(
            0,
            "Q1",
            "SELECT l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice), avg(l_discount), count(*) FROM lineitem WHERE l_shipdate <= date '1998-12-01' - interval ':p' day GROUP BY l_returnflag, l_linestatus",
            High,
            61,
            vec![RelationAccess::scan(r.lineitem)],
            Fixed(6),
            96,
        ),
        t(
            1,
            "Q2",
            "SELECT s_acctbal, s_name, n_name, p_partkey FROM part, supplier, partsupp, nation, region WHERE p_size = :p AND ps_supplycost = (SELECT min(ps_supplycost) ...)",
            Medium,
            600,
            vec![
                RelationAccess::selective(r.part, 0.25),
                RelationAccess::selective(r.partsupp, 0.3),
                RelationAccess::scan(r.supplier),
                RelationAccess::scan(r.nation),
                RelationAccess::scan(r.region),
            ],
            Range { min: 4, max: 100 },
            120,
        ),
        t(
            2,
            "Q3",
            "SELECT l_orderkey, sum(l_extendedprice*(1-l_discount)), o_orderdate, o_shippriority FROM customer, orders, lineitem WHERE c_mktsegment = ':p' GROUP BY l_orderkey, o_orderdate, o_shippriority ORDER BY revenue DESC",
            High,
            155,
            vec![
                RelationAccess::scan(r.customer),
                RelationAccess::scan(r.orders),
                RelationAccess::selective(r.lineitem, 0.55),
            ],
            Fixed(10),
            56,
        ),
        t(
            3,
            "Q4",
            "SELECT o_orderpriority, count(*) FROM orders WHERE o_orderdate >= date ':p' AND exists (SELECT * FROM lineitem WHERE l_commitdate < l_receiptdate) GROUP BY o_orderpriority",
            High,
            58,
            vec![
                RelationAccess::scan(r.orders),
                RelationAccess::selective(r.lineitem, 0.35),
            ],
            Fixed(5),
            40,
        ),
        t(
            4,
            "Q5",
            "SELECT n_name, sum(l_extendedprice*(1-l_discount)) FROM customer, orders, lineitem, supplier, nation, region WHERE r_name = ':p' GROUP BY n_name",
            High,
            25,
            vec![
                RelationAccess::scan(r.customer),
                RelationAccess::scan(r.orders),
                RelationAccess::scan(r.lineitem),
                RelationAccess::scan(r.supplier),
                RelationAccess::scan(r.nation),
                RelationAccess::scan(r.region),
            ],
            Fixed(5),
            48,
        ),
        t(
            5,
            "Q6",
            "SELECT sum(l_extendedprice*l_discount) FROM lineitem WHERE l_shipdate >= date ':p' AND l_discount BETWEEN x AND y AND l_quantity < z",
            High,
            45,
            vec![RelationAccess::selective(r.lineitem, 0.15)],
            Fixed(1),
            24,
        ),
        t(
            6,
            "Q7",
            "SELECT supp_nation, cust_nation, l_year, sum(volume) FROM supplier, lineitem, orders, customer, nation n1, nation n2 WHERE nations = ':p' GROUP BY supp_nation, cust_nation, l_year",
            Medium,
            300,
            vec![
                RelationAccess::scan(r.supplier),
                RelationAccess::scan(r.lineitem),
                RelationAccess::scan(r.orders),
                RelationAccess::scan(r.customer),
                RelationAccess::scan(r.nation),
            ],
            Fixed(4),
            64,
        ),
        t(
            7,
            "Q8",
            "SELECT o_year, sum(case when nation = ':p' then volume else 0 end) / sum(volume) FROM ... GROUP BY o_year",
            Medium,
            2_500,
            vec![
                RelationAccess::scan(r.part),
                RelationAccess::scan(r.supplier),
                RelationAccess::scan(r.lineitem),
                RelationAccess::scan(r.orders),
                RelationAccess::scan(r.customer),
                RelationAccess::scan(r.nation),
                RelationAccess::scan(r.region),
            ],
            Fixed(2),
            32,
        ),
        t(
            8,
            "Q9",
            "SELECT nation, o_year, sum(amount) FROM part, supplier, lineitem, partsupp, orders, nation WHERE p_name like '%:p%' GROUP BY nation, o_year",
            Medium,
            92,
            vec![
                RelationAccess::scan(r.part),
                RelationAccess::scan(r.supplier),
                RelationAccess::scan(r.lineitem),
                RelationAccess::scan(r.partsupp),
                RelationAccess::scan(r.orders),
                RelationAccess::scan(r.nation),
            ],
            Fixed(175),
            48,
        ),
        t(
            9,
            "Q10",
            "SELECT c_custkey, c_name, sum(l_extendedprice*(1-l_discount)), c_acctbal, n_name FROM customer, orders, lineitem, nation WHERE o_orderdate >= date ':p' AND l_returnflag = 'R' GROUP BY c_custkey, ...",
            High,
            24,
            vec![
                RelationAccess::scan(r.customer),
                RelationAccess::scan(r.orders),
                RelationAccess::selective(r.lineitem, 0.25),
                RelationAccess::scan(r.nation),
            ],
            Fixed(20),
            160,
        ),
        t(
            10,
            "Q11",
            "SELECT ps_partkey, sum(ps_supplycost*ps_availqty) FROM partsupp, supplier, nation WHERE n_name = ':p' GROUP BY ps_partkey HAVING sum(...) > fraction",
            Medium,
            25,
            vec![
                RelationAccess::scan(r.partsupp),
                RelationAccess::scan(r.supplier),
                RelationAccess::scan(r.nation),
            ],
            Range { min: 50, max: 400 },
            24,
        ),
        t(
            11,
            "Q12",
            "SELECT l_shipmode, sum(case when o_orderpriority in ('1-URGENT','2-HIGH') then 1 else 0 end) FROM orders, lineitem WHERE l_shipmode in (':p') GROUP BY l_shipmode",
            High,
            105,
            vec![
                RelationAccess::scan(r.orders),
                RelationAccess::selective(r.lineitem, 0.3),
            ],
            Fixed(2),
            40,
        ),
        t(
            12,
            "Q13",
            "SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, sum(l_quantity) FROM customer, orders, lineitem WHERE o_orderkey in (SELECT l_orderkey FROM lineitem GROUP BY l_orderkey HAVING sum(l_quantity) > :p)",
            Low,
            10_000_000_000_000,
            vec![
                RelationAccess::scan(r.customer),
                RelationAccess::scan(r.orders),
                RelationAccess::scan(r.lineitem),
            ],
            Range { min: 10, max: 80 },
            136,
        ),
        t(
            13,
            "Q14",
            "SELECT 100.00 * sum(case when p_type like 'PROMO%' then l_extendedprice*(1-l_discount) else 0 end) / sum(l_extendedprice*(1-l_discount)) FROM lineitem, part WHERE l_shipdate >= date ':p'",
            High,
            60,
            vec![
                RelationAccess::selective(r.lineitem, 0.08),
                RelationAccess::scan(r.part),
            ],
            Fixed(1),
            16,
        ),
        t(
            14,
            "Q15",
            "SELECT s_suppkey, s_name, total_revenue FROM supplier, revenue_view WHERE total_revenue = (SELECT max(total_revenue) FROM revenue_view) AND quarter = ':p'",
            Medium,
            58,
            vec![
                RelationAccess::selective(r.lineitem, 0.25),
                RelationAccess::scan(r.supplier),
            ],
            Range { min: 1, max: 10 },
            96,
        ),
        t(
            15,
            "Q16",
            "SELECT p_brand, p_type, p_size, count(distinct ps_suppkey) FROM partsupp, part WHERE p_brand <> ':p' AND p_size in (...) GROUP BY p_brand, p_type, p_size",
            Low,
            150_000_000,
            vec![
                RelationAccess::scan(r.partsupp),
                RelationAccess::selective(r.part, 0.4),
                RelationAccess::lookup(r.supplier, 4),
            ],
            Range { min: 20, max: 400 },
            48,
        ),
        t(
            16,
            "Q17",
            "SELECT sum(l_extendedprice) / 7.0 FROM lineitem, part WHERE p_brand = ':p' AND l_quantity < (SELECT 0.2*avg(l_quantity) FROM lineitem WHERE l_partkey = p_partkey)",
            Medium,
            400,
            vec![
                RelationAccess::scan(r.lineitem),
                RelationAccess::selective(r.part, 0.02),
            ],
            Fixed(1),
            16,
        ),
    ]
}

/// Builds the full TPC-D benchmark at the paper's 30 MB scale.
pub fn benchmark() -> Benchmark {
    benchmark_with(PAPER_DATABASE_BYTES, 0x7063_6474)
}

/// Builds the TPC-D benchmark with a custom database size and workload seed.
pub fn benchmark_with(database_bytes: u64, seed: u64) -> Benchmark {
    Benchmark::new(
        BenchmarkKind::TpcD,
        catalog(database_bytes),
        templates(),
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::QueryInstance;

    #[test]
    fn catalog_size_is_close_to_target() {
        let c = catalog(PAPER_DATABASE_BYTES);
        let total = c.total_bytes() as f64;
        let target = PAPER_DATABASE_BYTES as f64;
        assert!(
            (total - target).abs() / target < 0.05,
            "catalog is {total} bytes, target {target}"
        );
        assert_eq!(c.relation_count(), 8);
        assert_eq!(c.relation_id("LINEITEM"), Some(RELATIONS.lineitem));
        assert_eq!(c.relation_id("REGION"), Some(RELATIONS.region));
    }

    #[test]
    fn defines_seventeen_templates() {
        let templates = templates();
        assert_eq!(templates.len(), 17, "the paper uses 17 query templates");
        for (i, t) in templates.iter().enumerate() {
            assert_eq!(t.id.index(), i);
            assert!(!t.accesses.is_empty());
            assert!(t.instance_space >= 10);
        }
    }

    #[test]
    fn instance_spaces_span_many_orders_of_magnitude() {
        let templates = templates();
        let min = templates.iter().map(|t| t.instance_space).min().unwrap();
        let max = templates.iter().map(|t| t.instance_space).max().unwrap();
        assert!(min <= 100, "smallest space must allow frequent repeats");
        assert!(
            max >= 1_000_000_000_000,
            "largest space must effectively never repeat"
        );
    }

    #[test]
    fn all_queries_are_join_heavy() {
        // The paper attributes TPC-D's cost distribution to every query
        // performing costly joins/scans: no template may be index-cheap, and
        // most templates must cost at least as much as a LINEITEM scan.
        let b = benchmark();
        let lineitem_pages = u64::from(b.catalog().relation(RELATIONS.lineitem).unwrap().pages());
        let costs: Vec<u64> = b
            .templates()
            .iter()
            .map(|t| b.cost_blocks(QueryInstance::new(t.id, 0)))
            .collect();
        for (template, &cost) in b.templates().iter().zip(&costs) {
            assert!(
                cost >= 200,
                "{} cost {cost} blocks is too cheap for TPC-D",
                template.name
            );
        }
        let heavy = costs.iter().filter(|&&c| c >= lineitem_pages).count();
        assert!(
            heavy * 3 >= costs.len(),
            "a large share of TPC-D templates should scan LINEITEM-scale volumes ({heavy}/{})",
            costs.len()
        );
    }

    #[test]
    fn high_summarization_results_are_small() {
        let b = benchmark();
        for template in b.templates() {
            if template.summarization == SummarizationLevel::High {
                let bytes = b.result_bytes(QueryInstance::new(template.id, 1));
                assert!(
                    bytes <= 4_096,
                    "{} high-summarization result is {bytes} bytes",
                    template.name
                );
            }
        }
    }

    #[test]
    fn benchmark_constructs_and_is_deterministic() {
        let a = benchmark();
        let b = benchmark();
        let i = QueryInstance::new(TemplateId(5), 17);
        assert_eq!(a.cost_blocks(i), b.cost_blocks(i));
        assert_eq!(a.query_text(i), b.query_text(i));
        assert_eq!(a.kind(), BenchmarkKind::TpcD);
    }
}
