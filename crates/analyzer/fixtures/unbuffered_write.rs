//! Seeded violations for the `unbuffered-frame-write-in-session` rule:
//! a session loop answering each request with a per-frame write helper
//! instead of staging into the burst-coalescing `FrameWriter`.
//!
//! Not compiled — lexed by the analyzer's tests.

async fn serve_session(stream: NetStream, shared: Arc<Shared>) {
    let mut reader = wire::FrameReader::new();
    loop {
        let Some(frame) = reader.next_frame(&stream).await.ok().flatten() else {
            return;
        };
        let (id, request) = match wire::decode_request(frame) {
            Ok(decoded) => decoded,
            Err(_) => return,
        };
        let response = handle_request(&shared, request).await;
        let body = wire::encode_response(id, &response);
        // VIOLATION: one syscall per response, even when the client
        // pipelined a whole burst of requests.
        wire::write_frame_async(&stream, &body).await.ok();
    }
}

fn flush_sync_fallback(stream: &mut impl Write, body: &[u8]) {
    // VIOLATION: the blocking variant is just as unbuffered.
    wire::write_frame(stream, body).unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_peer_may_write_frames_directly() {
        // Legal: a unit test playing the peer of the session under test
        // writes its requests one frame at a time.
        let mut stream = std::io::Cursor::new(Vec::new());
        wire::write_frame(&mut stream, b"request").unwrap();
    }
}
