//! Seeded violation for `block-on-in-poll`.  This file is a lint fixture,
//! never compiled.  The violating call MUST stay on line 14 — a lexer test
//! pins the reported line number.

pub fn warm_up(engine: &Engine) {
    // Legal: block_on outside any poll body.
    let _ = block_on(engine.get_async());
}

impl Future for BadLookup {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        // Illegal: parks the runtime worker inside a poll.
        let _ = block_on(self.inner.get_async());
        Poll::Ready(())
    }
}
