//! Seeded violation for `lock-result-unwrap`: unwrapping a lock result in
//! a server session path.  This file is a lint fixture, never compiled.

pub fn handle_session(sessions: &SessionMap) {
    let mut guard = sessions.lock().unwrap();
    guard.touch();
    let table = sessions.registry.read().expect("registry poisoned");
    drop(table);
    // Legal: unwrap on a non-lock result.
    let parsed: u32 = "7".parse().unwrap();
    let _ = parsed;
}
