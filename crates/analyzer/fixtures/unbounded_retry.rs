//! Seeded violation for the `unbounded-retry-loop` rule: a reconnect loop
//! with no visible retry budget, next to the bounded shape the rule wants.
//!
//! Not compiled — lexed by the analyzer's tests.

fn hammer_until_up(addr: &str) -> Client {
    // VIOLATION: a dead server keeps this client spinning forever — there
    // is no attempt counter, no budget, no deadline in sight.
    loop {
        match Client::connect(addr) {
            Ok(client) => return client,
            Err(_) => thread::sleep(Duration::from_millis(50)),
        }
    }
}

fn bounded_reconnect(addr: &str, policy: &RetryPolicy) -> Result<Client, ClientError> {
    // Legal: the loop carries a visible budget and bails when it runs out.
    let budget = policy.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match Client::connect(addr) {
            Ok(client) => return Ok(client),
            Err(error) if attempt >= budget => return Err(error),
            Err(_) => thread::sleep(policy.backoff(attempt, 0)),
        }
    }
}

fn accept_loop(listener: &NetListener) {
    // Legal: an accept loop is unbounded by design — `accept` is serving,
    // not retrying.
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) => continue,
        };
        spawn_session(stream, peer);
    }
}
