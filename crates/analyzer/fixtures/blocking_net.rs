//! Seeded violation for `blocking-net-in-session`: blocking std::net
//! sockets and timeout-poll loops in a server session path.  This file is
//! a lint fixture, never compiled.
use std::net::TcpListener;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

pub fn serve_session(listener: TcpListener) {
    let (stream, peer): (TcpStream, SocketAddr) = listener.accept().unwrap();
    // The deleted idle tick: poll a blocking read on a 25 ms timeout.
    stream
        .set_read_timeout(Some(Duration::from_millis(25)))
        .unwrap();
    let _ = peer;
}

mod tests {
    // Exempt: a unit test playing the blocking *peer* of an async endpoint.
    fn blocking_peer() {
        let _client = std::net::TcpStream::connect("127.0.0.1:0").unwrap();
    }
}
