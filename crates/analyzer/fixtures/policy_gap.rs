//! Seeded violations for `policy-signal-coverage`: a QueryCache impl
//! missing a signal method, and a PolicyKind variant nothing dispatches.
//! This file is a lint fixture, never compiled.

pub enum PolicyKind {
    Lru,
    LruK { k: u8 },
    Orphan,
}

pub fn build(kind: PolicyKind) -> BoxedCache {
    match kind {
        PolicyKind::Lru => lru(),
        PolicyKind::LruK { k } => lru_k(k),
        _ => unreachable!("Orphan has no construction path"),
    }
}

impl<V: CachePayload> QueryCache<V> for GapCache<V> {
    fn min_cached_profit(&mut self, _now: Timestamp) -> Option<Profit> {
        None
    }
    fn set_capacity_bytes(&mut self, _capacity: u64, _now: Timestamp) -> Vec<QueryKey> {
        Vec::new()
    }
    fn peek(&self, _key: &QueryKey) -> Option<&V> {
        None
    }
    fn clear(&mut self) {}
    // missing: record_coalesced_reference — coalesced hits would silently
    // stop feeding the policy's reference-rate estimator.
}
