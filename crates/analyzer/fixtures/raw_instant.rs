//! Seeded violations for the `raw-instant-timing` rule.  Two raw clock
//! reads in what the analyzer treats as a session path (one via the full
//! `std::time::Instant` path, one via an imported `Instant`), plus the
//! counter-examples that must stay quiet: the telemetry clock authority,
//! a string, a comment, and a raw read inside `mod tests`.

use std::time::Instant;

fn handle_get_timed() -> u64 {
    // Violation: the full-path form.
    let started = std::time::Instant::now();
    let _ = started;
    // Violation: the imported form.
    let deadline = Instant::now() + std::time::Duration::from_millis(5);
    let _ = deadline;
    0
}

fn handle_get_instrumented() -> u64 {
    // Legal: the telemetry clock authority shares the histogram epoch.
    let started = watchman_core::telemetry::now();
    watchman_core::telemetry::elapsed_us(started)
}

fn decoys() {
    // Instant::now() in a comment never fires.
    let s = "Instant::now() in a string never fires";
    let _ = s;
}

mod tests {
    use std::time::Instant;

    fn wall_clock_assertion() {
        // Legal: tests time against the raw clock freely.
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        let _ = deadline;
    }
}
