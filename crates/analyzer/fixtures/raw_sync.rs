//! Seeded violation for `raw-sync-primitive`: raw std::sync lock types
//! outside the sync layer.  This file is a lint fixture, never compiled.
use std::sync::Mutex;
use std::sync::{Arc, Condvar};
use std::sync::atomic::AtomicU64; // legal: atomics carry no lock order

pub struct Bad {
    state: Mutex<u64>,
    wakeup: Condvar,
    counter: Arc<AtomicU64>,
}
