//! Seeded violation for `frame-size-consistency`: a forked copy of the
//! wire frame cap, drifted from wire.rs.  This file is a lint fixture,
//! never compiled.

pub const MAX_FRAME_BYTES: u32 = 8 << 20;
