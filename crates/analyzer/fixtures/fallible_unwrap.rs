//! Seeded violations for the `fallible-unwrap-in-session` rule: session
//! code unwrapping the Results of fallible fetch and IO calls instead of
//! routing the failure into the retry/stale-serve/shed pipeline.
//!
//! Not compiled — lexed by the analyzer's tests.

async fn serve_session(stream: NetStream, shared: Arc<Shared>) {
    let mut reader = wire::FrameReader::new();
    // VIOLATION: an async frame read that panics the session task on EOF.
    let frame = reader.next_frame(&stream).await.unwrap();
    let (id, request) = wire::decode_request(frame).unwrap_or_default();
    // VIOLATION: a fetch whose terminal error should become a stale serve
    // or a client-visible ERROR frame, never a panic.
    let (value, source) = shared
        .engine
        .try_get_or_execute_async(&key, now, |_| fetch(&request))
        .await
        .expect("fetch");
    let body = wire::encode_response(id, &value);
    writer.stage(&body).ok();
    // VIOLATION: the blocking write variant is just as fallible.
    wire::write_frame(&mut sync_stream, &body).unwrap();
}

fn legal_shapes(stream: &mut impl Write, header: [u8; 4]) -> Result<u32, WireError> {
    // Legal: `?`-propagation is exactly what the rule wants to see.
    stream.write_all(&header)?;
    stream.flush()?;
    // Legal: infallible conversions are not fetch/IO Results.
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    Ok(len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_peer_may_unwrap() {
        // Legal: a unit test playing the peer crashes loudly on purpose.
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        wire::write_frame(&mut stream, b"request").unwrap();
        let reply = wire::read_frame(&mut stream).unwrap().expect("reply");
        assert_eq!(reply, b"request");
    }
}
