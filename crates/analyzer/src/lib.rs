//! Token-level repo-invariant lints for the WATCHMAN workspace.
//!
//! The type system cannot see every rule this repo lives by: "route all
//! locking through `watchman_core::sync`" compiles fine when violated,
//! "every policy must implement the rebalance signal methods" compiles fine
//! when violated (the trait has defaults that silently disable rebalancing),
//! and the wire-protocol size caps are plain constants someone can fork.
//! This crate enforces those invariants as a CI gate.
//!
//! It is deliberately **not** built on `syn` or rustc internals: the
//! container this repo builds in is offline, and the rules only need token
//! streams, not types.  [`lex`] strips comments, strings, char literals and
//! lifetimes and yields `(identifier | literal | punctuation)` tokens with
//! line numbers; the rules in [`analyze`] pattern-match those streams.
//!
//! The rules:
//!
//! 1. **`raw-sync-primitive`** — no `std::sync::{Mutex, RwLock, Condvar}`
//!    outside `crates/core/src/sync.rs`.  Raw primitives bypass the
//!    poison-recovery policy and the `lock-graph` deadlock instrumentation.
//!    (`Arc`, atomics, `Once*` and `Barrier` are fine: they carry no
//!    lock-ordering obligations.)
//! 2. **`lock-result-unwrap`** — no `.lock().unwrap()` / `.read().expect()`
//!    etc. in `crates/server/src`: one panicked session must not cascade
//!    poison panics across every other session sharing the map.  The sync
//!    layer's poison-transparent guards make the unwrap unnecessary.
//! 3. **`block-on-in-poll`** — no `block_on` inside a `poll*` body: a
//!    nested `block_on` on a runtime worker parks the worker's OS thread,
//!    and with one worker per core a handful of such tasks deadlock the
//!    whole runtime.
//! 4. **`policy-signal-coverage`** — every `QueryCache` impl under
//!    `policy/` must define the signal-method set the engine's replacement,
//!    rebalance and failure loops drive (`min_cached_profit`,
//!    `set_capacity_bytes`, `peek`, `record_coalesced_reference`,
//!    `record_error_reference`, `record_stale_reference`, `clear`), and
//!    every variant of `enum PolicyKind` must appear in a
//!    `PolicyKind::Variant` dispatch path — a variant nobody constructs is
//!    an unreachable policy.
//! 5. **`frame-size-consistency`** — the wire-protocol size caps
//!    (`MAX_FRAME_BYTES`, `MAX_PREFIX_BYTES`, `MAX_RESULT_BYTES`) must be
//!    declared exactly once, in their home files, and must satisfy
//!    `MAX_PREFIX_BYTES < MAX_FRAME_BYTES <= MAX_RESULT_BYTES` — the
//!    relationships `server.rs` relies on when it clamps payload prefixes.
//! 6. **`blocking-net-in-session`** — no `std::net::TcpStream` /
//!    `std::net::TcpListener` and no `set_read_timeout`-style socket
//!    polling in the server crate's session paths.  Sessions are tasks on
//!    the IO reactor: one blocking read parks a whole worker thread, and a
//!    read-timeout poll loop is the 25 ms idle tick this refactor deleted.
//!    The blocking `Client` (`client.rs`), the load drivers that hold such
//!    clients on dedicated threads (`replay.rs` — a read deadline there is
//!    chaos stall detection, not an idle tick) and the CLI binaries under
//!    `src/bin/` are the deliberate exceptions; `std::net::SocketAddr` and
//!    friends carry no blocking IO and stay legal everywhere.
//! 7. **`unbuffered-frame-write-in-session`** — no `write_frame` /
//!    `write_frame_async` in the server crate's session paths.  Those
//!    helpers issue one write syscall per frame; the session loop stages
//!    responses into a `wire::FrameWriter` and flushes the whole burst as
//!    one vectored write, which is where the pipelined-throughput win
//!    lives — a single per-frame write sneaking back in silently undoes
//!    it.  `wire.rs` (the helpers' home), the lockstep clients
//!    (`client.rs`, `replay.rs` — one request in flight, nothing to
//!    coalesce) and the CLI binaries under `src/bin/` are exempt.
//! 8. **`fallible-unwrap-in-session`** — no `.unwrap()` / `.expect()` on
//!    the fallible fetch/IO calls (`read_frame*`, `write_frame*`,
//!    `next_frame`, `flush`, `read_exact`, `write_all`, `connect*`,
//!    `accept`, `try_get_or_execute*`, `stage`) in the server crate's
//!    session paths.  The failure-domain engineering routes every fetch/IO
//!    error into the retry → stale-serve → shed pipeline; an unwrap turns a
//!    recoverable fault into a dead session.  The CLI binaries under
//!    `src/bin/` (where a crash *is* the error report) and inline
//!    `mod tests` peers are exempt.
//! 9. **`unbounded-retry-loop`** — no `loop { … connect … }` without a
//!    visible retry budget (`attempt`/`attempts`/`budget`/`retries`/
//!    `deadline` or a `max_*` bound) in the server crate.  A reconnect loop
//!    with no bound turns one dead server into a client spinning forever;
//!    bounded attempts with capped backoff are the `RetryPolicy` contract.
//! 10. **`raw-instant-timing`** — no raw `Instant::now()` in the engine
//!     (`crates/core/src/engine/`) or the server crate's session paths.
//!     `watchman_core::telemetry::now()` is the clock authority for those
//!     paths: it pins the histogram epoch, and a raw `Instant::now()` is
//!     latency measurement (or a deadline) the telemetry layer never sees —
//!     an unobservable stall.  `telemetry.rs` itself (the authority's home),
//!     the blocking client/load drivers (`client.rs`, `replay.rs`), the CLI
//!     binaries under `src/bin/` and inline `mod tests` are exempt.
//!
//! Seeded-violation fixtures live in `fixtures/`; the crate's tests assert
//! each rule fires on its fixture and stays quiet on counter-examples, so a
//! lexer regression cannot silently turn the gate off.

use std::collections::HashMap;

/// What a token is, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric, string, byte or char literal (strings keep no content).
    Literal,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
}

/// One lexed token with its source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// The token's text (empty for string literals).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

/// Lexes Rust source into a token stream, stripping comments (line, block,
/// nested block), string literals (plain, raw, byte), char literals and
/// lifetimes.  Numeric literals keep their text so constant expressions can
/// be evaluated; string literals become empty [`TokenKind::Literal`] tokens
/// so nothing inside a string can ever match a rule.
pub fn lex(source: &str) -> Vec<Token> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;

    fn is_ident_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_'
    }
    fn is_ident_continue(b: u8) -> bool {
        b.is_ascii_alphanumeric() || b == b'_'
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comments nest in Rust.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                i = skip_plain_string(bytes, i, &mut line);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                });
            }
            b'\'' => {
                // Lifetime or char literal.  After the quote: an identifier
                // char not followed by a closing quote is a lifetime.
                let next = bytes.get(i + 1).copied().unwrap_or(0);
                if is_ident_start(next) && bytes.get(i + 2) != Some(&b'\'') {
                    i += 2;
                    while i < bytes.len() && is_ident_continue(bytes[i]) {
                        i += 1;
                    }
                } else {
                    // Char literal: skip escapes until the closing quote.
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            b'\n' => {
                                line += 1;
                                i += 1;
                            }
                            _ => i += 1,
                        }
                    }
                    tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: String::new(),
                        line,
                    });
                }
            }
            _ if is_ident_start(b) => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                let text = &source[start..i];
                // A string prefix (r"", b"", br#""#, r#""#) is a literal,
                // not an identifier.
                let next = bytes.get(i).copied().unwrap_or(0);
                let is_raw_capable = matches!(text, "r" | "br" | "rb");
                let is_plain_byte = text == "b" && next == b'"';
                if (is_raw_capable && (next == b'"' || next == b'#')) || is_plain_byte {
                    i = if next == b'"' && !text.contains('r') {
                        skip_plain_string(bytes, i, &mut line)
                    } else {
                        skip_raw_string(bytes, i, &mut line)
                    };
                    tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: String::new(),
                        line,
                    });
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Ident,
                        text: text.to_owned(),
                        line,
                    });
                }
            }
            _ if b.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (is_ident_continue(bytes[i])) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: source[start..i].to_owned(),
                    line,
                });
            }
            _ => {
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (b as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    tokens
}

/// Skips a `"…"` string starting at the opening quote; returns the index
/// past the closing quote.
fn skip_plain_string(bytes: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string from the first `#` or `"` after the `r`/`br` prefix;
/// returns the index past the closing delimiter.
fn skip_raw_string(bytes: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start;
    let mut hashes = 0;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return i; // not actually a raw string; resynchronize
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if bytes[i] == b'"'
            && bytes[i + 1..]
                .iter()
                .take(hashes)
                .filter(|b| **b == b'#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    i
}

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// The rule's stable identifier.
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A lexed source tree: `(repo-relative path, tokens)` per file.
pub struct FileSet {
    files: Vec<(String, Vec<Token>)>,
}

impl FileSet {
    /// Builds a file set from raw sources.
    pub fn from_sources(sources: &[(String, String)]) -> Self {
        FileSet {
            files: sources
                .iter()
                .map(|(path, source)| (path.clone(), lex(source)))
                .collect(),
        }
    }
}

/// Runs every rule over the file set.
pub fn analyze(set: &FileSet) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (path, tokens) in &set.files {
        rule_raw_sync(path, tokens, &mut findings);
        rule_lock_result_unwrap(path, tokens, &mut findings);
        rule_block_on_in_poll(path, tokens, &mut findings);
        rule_blocking_net_in_session(path, tokens, &mut findings);
        rule_unbuffered_frame_write_in_session(path, tokens, &mut findings);
        rule_fallible_unwrap_in_session(path, tokens, &mut findings);
        rule_unbounded_retry_loop(path, tokens, &mut findings);
        rule_raw_instant_timing(path, tokens, &mut findings);
        rule_policy_signal_coverage(path, tokens, set, &mut findings);
    }
    rule_frame_size_consistency(set, &mut findings);
    findings
}

/// The sync-layer home file: the one place raw primitives are legal.
const SYNC_LAYER: &str = "crates/core/src/sync.rs";

/// Rule 1: `std::sync::{Mutex, RwLock, Condvar}` outside the sync layer.
fn rule_raw_sync(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if path.ends_with(SYNC_LAYER) {
        return;
    }
    let banned = ["Mutex", "RwLock", "Condvar"];
    let mut i = 0;
    while i + 6 < tokens.len() {
        let is_std_sync = tokens[i].is_ident("std")
            && tokens[i + 1].is_punct(':')
            && tokens[i + 2].is_punct(':')
            && tokens[i + 3].is_ident("sync")
            && tokens[i + 4].is_punct(':')
            && tokens[i + 5].is_punct(':');
        if !is_std_sync {
            i += 1;
            continue;
        }
        // Path continues after `std::sync::` — either one segment or a
        // use-group `{...}`.
        let mut j = i + 6;
        if tokens[j].is_punct('{') {
            let mut depth = 1;
            j += 1;
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct('{') {
                    depth += 1;
                } else if tokens[j].is_punct('}') {
                    depth -= 1;
                } else if depth == 1 && banned.iter().any(|b| tokens[j].is_ident(b)) {
                    findings.push(Finding {
                        file: path.to_owned(),
                        line: tokens[j].line,
                        rule: "raw-sync-primitive",
                        message: format!(
                            "raw std::sync::{} bypasses the poison policy and lock-graph \
                             instrumentation; use watchman_core::sync::{}",
                            tokens[j].text, tokens[j].text
                        ),
                    });
                }
                j += 1;
            }
        } else if banned.iter().any(|b| tokens[j].is_ident(b)) {
            findings.push(Finding {
                file: path.to_owned(),
                line: tokens[j].line,
                rule: "raw-sync-primitive",
                message: format!(
                    "raw std::sync::{} bypasses the poison policy and lock-graph \
                     instrumentation; use watchman_core::sync::{}",
                    tokens[j].text, tokens[j].text
                ),
            });
        }
        i = j;
    }
}

/// Rule 2: `.lock().unwrap()` (and `read`/`write`/`expect` variants) in the
/// server's session paths.
fn rule_lock_result_unwrap(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if !path.contains("server/src") {
        return;
    }
    for window in tokens.windows(6) {
        let acquires = window[0].is_punct('.')
            && (window[1].is_ident("lock")
                || window[1].is_ident("read")
                || window[1].is_ident("write"))
            && window[2].is_punct('(')
            && window[3].is_punct(')');
        let unwraps = window[4].is_punct('.')
            && (window[5].is_ident("unwrap") || window[5].is_ident("expect"));
        if acquires && unwraps {
            findings.push(Finding {
                file: path.to_owned(),
                line: window[5].line,
                rule: "lock-result-unwrap",
                message: format!(
                    ".{}().{}() cascades one session's poison panic into every session \
                     sharing the lock; the sync layer's guards recover instead",
                    window[1].text, window[5].text
                ),
            });
        }
    }
}

/// Rule 3: `block_on` inside a `poll*` function body.
fn rule_block_on_in_poll(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i + 1 < tokens.len() {
        if tokens[i].is_ident("fn") && tokens[i + 1].text.starts_with("poll") {
            // Find the body's opening brace (return types in this repo never
            // contain a top-level `{`).
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                j += 1;
            }
            if j >= tokens.len() || tokens[j].is_punct(';') {
                i = j.max(i + 1);
                continue; // trait method signature without a body
            }
            let mut depth = 1;
            let mut k = j + 1;
            while k < tokens.len() && depth > 0 {
                if tokens[k].is_punct('{') {
                    depth += 1;
                } else if tokens[k].is_punct('}') {
                    depth -= 1;
                } else if tokens[k].is_ident("block_on") {
                    findings.push(Finding {
                        file: path.to_owned(),
                        line: tokens[k].line,
                        rule: "block-on-in-poll",
                        message: format!(
                            "block_on inside `{}` parks a runtime worker thread inside a \
                             poll; enough of these deadlock the whole runtime",
                            tokens[i + 1].text
                        ),
                    });
                }
                k += 1;
            }
            i = k;
        } else {
            i += 1;
        }
    }
}

/// Rule 6: blocking `std::net` sockets and read-timeout polling in the
/// server crate's session paths.  The session stack runs as tasks on the
/// runtime's epoll reactor (`watchman_core::runtime::net`); a blocking
/// socket in those paths pins an OS thread per connection, which is exactly
/// the architecture the reactor refactor removed.  `client.rs` (the
/// blocking wire client, the one sanctioned `std::net` site), `replay.rs`
/// (load drivers holding blocking clients on dedicated threads — the chaos
/// driver's read deadline is stall detection, not an idle-tick poll) and
/// the CLI binaries under `src/bin/` are exempt.
fn rule_blocking_net_in_session(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if !path.contains("server/src")
        || path.ends_with("client.rs")
        || path.ends_with("replay.rs")
        || path.contains("/bin/")
    {
        return;
    }
    // Inline `mod tests` bodies are exempt: a unit test playing the *peer*
    // of an async endpoint legitimately holds a blocking socket, and tests
    // never run on the reactor's worker pool.
    let tokens = strip_test_modules(tokens);
    let tokens = tokens.as_slice();
    let banned_types = ["TcpStream", "TcpListener"];
    let report = |findings: &mut Vec<Finding>, line: u32, what: &str| {
        findings.push(Finding {
            file: path.to_owned(),
            line,
            rule: "blocking-net-in-session",
            message: format!(
                "{what} blocks an OS thread per connection; session paths must use the \
                 reactor-driven watchman_core::runtime::net wrappers (client.rs and \
                 src/bin/ are the sanctioned blocking sites)"
            ),
        });
    };
    for token in tokens {
        if token.is_ident("set_read_timeout") || token.is_ident("set_write_timeout") {
            report(
                findings,
                token.line,
                &format!("`{}` (timeout-poll loop on a blocking socket)", token.text),
            );
        }
    }
    let mut i = 0;
    while i + 6 < tokens.len() {
        let is_std_net = tokens[i].is_ident("std")
            && tokens[i + 1].is_punct(':')
            && tokens[i + 2].is_punct(':')
            && tokens[i + 3].is_ident("net")
            && tokens[i + 4].is_punct(':')
            && tokens[i + 5].is_punct(':');
        if !is_std_net {
            i += 1;
            continue;
        }
        // Path continues after `std::net::` — one segment or a use-group.
        let mut j = i + 6;
        if tokens[j].is_punct('{') {
            let mut depth = 1;
            j += 1;
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct('{') {
                    depth += 1;
                } else if tokens[j].is_punct('}') {
                    depth -= 1;
                } else if depth == 1 && banned_types.iter().any(|b| tokens[j].is_ident(b)) {
                    report(
                        findings,
                        tokens[j].line,
                        &format!("std::net::{}", tokens[j].text),
                    );
                }
                j += 1;
            }
        } else if banned_types.iter().any(|b| tokens[j].is_ident(b)) {
            report(
                findings,
                tokens[j].line,
                &format!("std::net::{}", tokens[j].text),
            );
        }
        i = j;
    }
}

/// Rule 7: per-frame `write_frame` / `write_frame_async` calls in the
/// server crate's session paths.  The session loop writes through a
/// `wire::FrameWriter` — responses staged per burst, flushed as one
/// vectored write — and the pipelined-throughput numbers in
/// `BENCH_connection_scaling.json` gate on the syscalls-per-frame that
/// buys.  A per-frame write helper reintroduced into a session path
/// silently reverts to one syscall per response.  Exempt: `wire.rs` (where
/// the helpers live), the lockstep clients `client.rs` and `replay.rs`
/// (one request in flight at a time — there is never a burst to coalesce),
/// the CLI binaries under `src/bin/`, and inline `mod tests` peers.
fn rule_unbuffered_frame_write_in_session(
    path: &str,
    tokens: &[Token],
    findings: &mut Vec<Finding>,
) {
    if !path.contains("server/src")
        || path.ends_with("wire.rs")
        || path.ends_with("client.rs")
        || path.ends_with("replay.rs")
        || path.contains("/bin/")
    {
        return;
    }
    let tokens = strip_test_modules(tokens);
    for token in &tokens {
        if token.is_ident("write_frame") || token.is_ident("write_frame_async") {
            findings.push(Finding {
                file: path.to_owned(),
                line: token.line,
                rule: "unbuffered-frame-write-in-session",
                message: format!(
                    "`{}` issues one write syscall per frame; session paths stage \
                     responses into wire::FrameWriter and flush each burst as a single \
                     vectored write (wire.rs, client.rs, replay.rs and src/bin/ are the \
                     sanctioned per-frame sites)",
                    token.text
                ),
            });
        }
    }
}

/// Returns the token stream with every `mod tests { … }` body removed
/// (brace-matched, so nested modules inside the test module go with it).
fn strip_test_modules(tokens: &[Token]) -> Vec<Token> {
    let mut kept = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        let starts_test_module = tokens[i].is_ident("mod")
            && tokens.get(i + 1).is_some_and(|t| t.is_ident("tests"))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('{'));
        if starts_test_module {
            let mut depth = 1;
            i += 3;
            while i < tokens.len() && depth > 0 {
                if tokens[i].is_punct('{') {
                    depth += 1;
                } else if tokens[i].is_punct('}') {
                    depth -= 1;
                }
                i += 1;
            }
        } else {
            kept.push(tokens[i].clone());
            i += 1;
        }
    }
    kept
}

/// The fallible fetch/IO call names rule 8 guards: each returns a `Result`
/// (or `Option` over one) whose failure the session layer must route into
/// the degradation pipeline — retry, stale serve, shed — rather than crash
/// on.  Infallible conversions like `try_into()` are deliberately absent.
const FALLIBLE_CALLS: [&str; 15] = [
    "accept",
    "connect",
    "connect_handshaken",
    "connect_with_retries",
    "flush",
    "next_frame",
    "read_exact",
    "read_frame",
    "read_frame_async",
    "stage",
    "try_get_or_execute",
    "try_get_or_execute_async",
    "write_all",
    "write_frame",
    "write_frame_async",
];

/// Rule 8: `.unwrap()` / `.expect()` on a fallible fetch or IO call in the
/// server crate's session paths.  One flaky peer or one failed fetch must
/// degrade (retry, stale serve, shed) — never panic the session task it
/// happened on.  The CLI binaries under `src/bin/` are exempt (for a CLI a
/// crash is the error report), as are inline `mod tests` bodies.
fn rule_fallible_unwrap_in_session(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if !path.contains("server/src") || path.contains("/bin/") {
        return;
    }
    let tokens = strip_test_modules(tokens);
    let mut i = 0;
    while i + 1 < tokens.len() {
        let is_call =
            FALLIBLE_CALLS.iter().any(|c| tokens[i].is_ident(c)) && tokens[i + 1].is_punct('(');
        if !is_call {
            i += 1;
            continue;
        }
        let call = tokens[i].text.clone();
        // Skip the paren-matched argument list (this also skips `fn accept(…)`
        // signatures: what follows a signature is `->` or `{`, never `.`).
        let mut depth = 1;
        let mut j = i + 2;
        while j < tokens.len() && depth > 0 {
            if tokens[j].is_punct('(') {
                depth += 1;
            } else if tokens[j].is_punct(')') {
                depth -= 1;
            }
            j += 1;
        }
        // An `.await` between the call and the unwrap is still the same sin.
        if j + 1 < tokens.len() && tokens[j].is_punct('.') && tokens[j + 1].is_ident("await") {
            j += 2;
        }
        let unwraps = j + 1 < tokens.len()
            && tokens[j].is_punct('.')
            && (tokens[j + 1].is_ident("unwrap") || tokens[j + 1].is_ident("expect"));
        if unwraps {
            findings.push(Finding {
                file: path.to_owned(),
                line: tokens[j + 1].line,
                rule: "fallible-unwrap-in-session",
                message: format!(
                    "`{call}(…).{}()` turns a recoverable fetch/IO failure into a dead \
                     session; route the error into the retry/stale-serve/shed pipeline \
                     (src/bin/ CLIs and tests are the sanctioned crash sites)",
                    tokens[j + 1].text
                ),
            });
        }
        i = j;
    }
}

/// Identifiers that signal a connection attempt inside a loop body.
const CONNECTISH: [&str; 5] = [
    "connect",
    "connect_handshaken",
    "connect_with_retries",
    "ensure_connected",
    "reconnect",
];

/// Whether a token names a visible retry budget.
fn is_budget_ident(token: &Token) -> bool {
    token.kind == TokenKind::Ident
        && (matches!(
            token.text.as_str(),
            "attempt" | "attempts" | "budget" | "retries" | "deadline"
        ) || token.text.starts_with("max_"))
}

/// Rule 9: a `loop` that attempts connections with no visible retry budget
/// in the server crate.  Accept loops are legitimately unbounded (`accept`
/// is not connect-ish); a *reconnect* loop without a bound hammers a dead
/// server forever instead of surfacing the failure after a bounded,
/// backed-off budget the way the `RetryPolicy`-driven paths do.
fn rule_unbounded_retry_loop(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if !path.contains("server/src") || path.contains("/bin/") {
        return;
    }
    let tokens = strip_test_modules(tokens);
    let mut i = 0;
    while i + 1 < tokens.len() {
        if !(tokens[i].is_ident("loop") && tokens[i + 1].is_punct('{')) {
            i += 1;
            continue;
        }
        let mut depth = 1;
        let mut j = i + 2;
        let mut connect_site: Option<(String, u32)> = None;
        let mut has_budget = false;
        while j < tokens.len() && depth > 0 {
            if tokens[j].is_punct('{') {
                depth += 1;
            } else if tokens[j].is_punct('}') {
                depth -= 1;
            } else if connect_site.is_none() && CONNECTISH.iter().any(|c| tokens[j].is_ident(c)) {
                connect_site = Some((tokens[j].text.clone(), tokens[j].line));
            } else if is_budget_ident(&tokens[j]) {
                has_budget = true;
            }
            j += 1;
        }
        if let Some((call, line)) = connect_site {
            if !has_budget {
                findings.push(Finding {
                    file: path.to_owned(),
                    line,
                    rule: "unbounded-retry-loop",
                    message: format!(
                        "`loop` retries `{call}` with no visible budget (attempt/attempts/\
                         budget/retries/deadline or a max_* bound): one dead server becomes \
                         a client spinning forever; bound the loop with RetryPolicy-style \
                         capped attempts"
                    ),
                });
            }
        }
        // Step past the keyword only: nested loops are analyzed on their own.
        i += 1;
    }
}

/// Rule 10: raw `Instant::now()` in the engine or the server crate's
/// session paths.  Those paths time everything through the telemetry clock
/// authority (`watchman_core::telemetry::now()`), which shares the epoch
/// the latency histograms and the flight recorder stamp against.  A raw
/// `Instant::now()` there is a measurement (or a deadline) that bypasses
/// the instrumentation — the exact blind spot the telemetry layer exists
/// to close.  Exempt: `telemetry.rs` (the authority's home and the one
/// sanctioned call site), the blocking client and load drivers
/// (`client.rs`, `replay.rs` — wall-clock report timing, not engine
/// latency), the CLI binaries under `src/bin/`, and inline `mod tests`.
fn rule_raw_instant_timing(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    let in_engine = path.contains("core/src/engine/");
    let in_session = path.contains("server/src")
        && !path.ends_with("client.rs")
        && !path.ends_with("replay.rs")
        && !path.contains("/bin/");
    if (!in_engine && !in_session) || path.ends_with("telemetry.rs") {
        return;
    }
    let tokens = strip_test_modules(tokens);
    for window in tokens.windows(4) {
        if window[0].is_ident("Instant")
            && window[1].is_punct(':')
            && window[2].is_punct(':')
            && window[3].is_ident("now")
        {
            findings.push(Finding {
                file: path.to_owned(),
                line: window[3].line,
                rule: "raw-instant-timing",
                message: "raw Instant::now() bypasses the telemetry clock authority; use \
                          watchman_core::telemetry::now() so the measurement shares the \
                          histogram epoch (telemetry.rs, client.rs, replay.rs, src/bin/ \
                          and tests are the sanctioned raw-clock sites)"
                    .to_owned(),
            });
        }
    }
}

/// The signal methods the engine's replacement and rebalance loops drive.
/// `QueryCache` gives several of them no-op defaults, so forgetting one
/// compiles clean and silently degrades the policy.
const REQUIRED_SIGNALS: [&str; 7] = [
    "min_cached_profit",
    "set_capacity_bytes",
    "peek",
    "record_coalesced_reference",
    "record_error_reference",
    "record_stale_reference",
    "clear",
];

/// Rule 4: policy impls define the signal-method set; `PolicyKind` variants
/// are all dispatched somewhere.
fn rule_policy_signal_coverage(
    path: &str,
    tokens: &[Token],
    set: &FileSet,
    findings: &mut Vec<Finding>,
) {
    // Part 1: files implementing `QueryCache<…> for …` under policy/.
    if path.contains("policy/") {
        let mut is_impl = false;
        let mut impl_line = 0;
        for (i, token) in tokens.iter().enumerate() {
            if token.is_ident("QueryCache")
                && tokens[i + 1..].iter().take(20).any(|t| t.is_ident("for"))
            {
                is_impl = true;
                impl_line = token.line;
                break;
            }
        }
        if is_impl {
            for method in REQUIRED_SIGNALS {
                let defines = tokens
                    .windows(2)
                    .any(|w| w[0].is_ident("fn") && w[1].is_ident(method));
                if !defines {
                    findings.push(Finding {
                        file: path.to_owned(),
                        line: impl_line,
                        rule: "policy-signal-coverage",
                        message: format!(
                            "QueryCache impl does not define `fn {method}` — the trait \
                             default silently disables this replacement/rebalance signal"
                        ),
                    });
                }
            }
        }
    }

    // Part 2: every `enum PolicyKind` variant must appear in a
    // `PolicyKind::Variant` dispatch path somewhere in the tree.
    let mut i = 0;
    while i + 2 < tokens.len() {
        if tokens[i].is_ident("enum") && tokens[i + 1].is_ident("PolicyKind") {
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct('{') {
                j += 1;
            }
            let mut depth = 1;
            let mut k = j + 1;
            let mut variants: Vec<(String, u32)> = Vec::new();
            while k < tokens.len() && depth > 0 {
                if tokens[k].is_punct('{') {
                    depth += 1;
                } else if tokens[k].is_punct('}') {
                    depth -= 1;
                } else if depth == 1
                    && tokens[k].kind == TokenKind::Ident
                    && tokens
                        .get(k + 1)
                        .is_some_and(|t| t.is_punct(',') || t.is_punct('{') || t.is_punct('}'))
                {
                    variants.push((tokens[k].text.clone(), tokens[k].line));
                }
                k += 1;
            }
            for (variant, line) in variants {
                let dispatched = set.files.iter().any(|(_, file_tokens)| {
                    file_tokens.windows(4).any(|w| {
                        w[0].is_ident("PolicyKind")
                            && w[1].is_punct(':')
                            && w[2].is_punct(':')
                            && w[3].is_ident(&variant)
                    })
                });
                if !dispatched {
                    findings.push(Finding {
                        file: path.to_owned(),
                        line,
                        rule: "policy-signal-coverage",
                        message: format!(
                            "PolicyKind::{variant} is never constructed via a \
                             PolicyKind::{variant} path — an undispatchable policy arm"
                        ),
                    });
                }
            }
            i = k;
        } else {
            i += 1;
        }
    }
}

/// The wire-protocol size caps and their home files.
const FRAME_CONSTS: [(&str, &str); 3] = [
    ("MAX_FRAME_BYTES", "wire.rs"),
    ("MAX_PREFIX_BYTES", "wire.rs"),
    ("MAX_RESULT_BYTES", "server.rs"),
];

/// A cap declaration: (file, line, initializer tokens).
type CapDecl = (String, u32, Vec<Token>);

/// Rule 5: the size caps are single-sourced and mutually consistent.
fn rule_frame_size_consistency(set: &FileSet, findings: &mut Vec<Finding>) {
    // Collect every `const NAME … = <expr> ;` declaration of a cap.
    let mut decls: HashMap<&'static str, Vec<CapDecl>> = HashMap::new();
    for (path, tokens) in &set.files {
        for i in 0..tokens.len() {
            if !tokens[i].is_ident("const") {
                continue;
            }
            let Some(name_token) = tokens.get(i + 1) else {
                continue;
            };
            let Some((name, _)) = FRAME_CONSTS
                .iter()
                .find(|(name, _)| name_token.is_ident(name))
            else {
                continue;
            };
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct('=') {
                j += 1;
            }
            let start = j + 1;
            let mut end = start;
            while end < tokens.len() && !tokens[end].is_punct(';') {
                end += 1;
            }
            decls.entry(name).or_default().push((
                path.clone(),
                name_token.line,
                tokens[start..end].to_vec(),
            ));
        }
    }

    let mut values: HashMap<&'static str, u64> = HashMap::new();
    for (name, home) in FRAME_CONSTS {
        let Some(sites) = decls.get(name) else {
            continue; // fixture trees may not contain the real constants
        };
        for (path, line, expr) in sites {
            if !path.ends_with(home) {
                findings.push(Finding {
                    file: path.clone(),
                    line: *line,
                    rule: "frame-size-consistency",
                    message: format!(
                        "{name} redeclared outside its home file ({home}); forked size \
                         caps drift apart and desynchronize peers"
                    ),
                });
            } else if let Some(value) = eval_const_expr(expr, &values) {
                values.insert(name, value);
            }
        }
    }

    let consistent = |a: Option<&u64>, b: Option<&u64>| match (a, b) {
        (Some(a), Some(b)) => a < b,
        _ => true, // a cap we could not evaluate is not a finding
    };
    if !consistent(
        values.get("MAX_PREFIX_BYTES"),
        values.get("MAX_FRAME_BYTES"),
    ) {
        findings.push(Finding {
            file: "crates/server/src/wire.rs".to_owned(),
            line: 0,
            rule: "frame-size-consistency",
            message: format!(
                "MAX_PREFIX_BYTES ({}) must stay strictly below MAX_FRAME_BYTES ({}): a \
                 prefix-sized payload plus headers must fit one frame",
                values["MAX_PREFIX_BYTES"], values["MAX_FRAME_BYTES"]
            ),
        });
    }
    if let (Some(frame), Some(result)) = (
        values.get("MAX_FRAME_BYTES"),
        values.get("MAX_RESULT_BYTES"),
    ) {
        if *frame > *result {
            findings.push(Finding {
                file: "crates/server/src/server.rs".to_owned(),
                line: 0,
                rule: "frame-size-consistency",
                message: format!(
                    "MAX_RESULT_BYTES ({result}) below MAX_FRAME_BYTES ({frame}): the \
                     server would admit results it can never frame"
                ),
            });
        }
    }
}

/// Evaluates a constant expression over `u64` with the operators the cap
/// declarations use (`<<`, `+`, `-`, `*`, parentheses, named references).
/// Returns `None` for anything it does not understand.
fn eval_const_expr(tokens: &[Token], env: &HashMap<&'static str, u64>) -> Option<u64> {
    struct Parser<'a> {
        tokens: &'a [Token],
        pos: usize,
        env: &'a HashMap<&'static str, u64>,
    }
    impl Parser<'_> {
        fn peek(&self) -> Option<&Token> {
            self.tokens.get(self.pos)
        }
        fn shift(&mut self) -> Option<u64> {
            // Lowest precedence in these expressions: `<<`.
            let mut value = self.additive()?;
            while self.peek().is_some_and(|t| t.is_punct('<'))
                && self
                    .tokens
                    .get(self.pos + 1)
                    .is_some_and(|t| t.is_punct('<'))
            {
                self.pos += 2;
                let rhs = self.additive()?;
                value = value.checked_shl(u32::try_from(rhs).ok()?)?;
            }
            Some(value)
        }
        fn additive(&mut self) -> Option<u64> {
            let mut value = self.multiplicative()?;
            loop {
                if self.peek().is_some_and(|t| t.is_punct('+')) {
                    self.pos += 1;
                    value = value.checked_add(self.multiplicative()?)?;
                } else if self.peek().is_some_and(|t| t.is_punct('-')) {
                    self.pos += 1;
                    value = value.checked_sub(self.multiplicative()?)?;
                } else {
                    return Some(value);
                }
            }
        }
        fn multiplicative(&mut self) -> Option<u64> {
            let mut value = self.atom()?;
            while self.peek().is_some_and(|t| t.is_punct('*')) {
                self.pos += 1;
                value = value.checked_mul(self.atom()?)?;
            }
            Some(value)
        }
        fn atom(&mut self) -> Option<u64> {
            let token = self.peek()?.clone();
            if token.is_punct('(') {
                self.pos += 1;
                let value = self.shift()?;
                if !self.peek()?.is_punct(')') {
                    return None;
                }
                self.pos += 1;
                return Some(value);
            }
            self.pos += 1;
            match token.kind {
                TokenKind::Literal => {
                    // `1_024` and `16u32` both parse; `_` separators drop
                    // out and a type suffix terminates the digits.
                    let digits: String = token
                        .text
                        .chars()
                        .filter(|c| *c != '_')
                        .take_while(|c| c.is_ascii_digit())
                        .collect();
                    if digits.is_empty() {
                        None
                    } else {
                        digits.parse().ok()
                    }
                }
                TokenKind::Ident => self.env.get(token.text.as_str()).copied(),
                TokenKind::Punct => None,
            }
        }
    }
    let mut parser = Parser {
        tokens,
        pos: 0,
        env,
    };
    let value = parser.shift()?;
    // Trailing tokens we do not model (casts, generics) poison the result:
    // better no value than a wrong one.
    (parser.pos == tokens.len()).then_some(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_one(path: &str, source: &str) -> Vec<Finding> {
        analyze(&FileSet::from_sources(&[(
            path.to_owned(),
            source.to_owned(),
        )]))
    }

    fn fixture(name: &str) -> String {
        let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
    }

    #[test]
    fn lexer_strips_comments_strings_and_lifetimes() {
        let tokens = lex(concat!(
            "// std::sync::Mutex in a comment\n",
            "/* std::sync::Mutex /* nested */ in a block */\n",
            "let s = \"std::sync::Mutex in a string\";\n",
            "let r = r#\"std::sync::Mutex raw \" quote\"#;\n",
            "let c: char = ':'; let l: &'static str = \"x\";\n",
            "fn generic<'a>(x: &'a u8) {}\n",
        ));
        assert!(
            !tokens.iter().any(|t| t.is_ident("Mutex")),
            "nothing inside comments or strings may surface as an identifier"
        );
        assert!(tokens.iter().any(|t| t.is_ident("generic")));
    }

    #[test]
    fn lexer_tracks_lines() {
        let tokens = lex("a\nb\n\nc");
        let lines: Vec<u32> = tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn raw_sync_fixture_fires_and_sync_layer_is_exempt() {
        let source = fixture("raw_sync.rs");
        let findings = analyze_one("crates/server/src/bad.rs", &source);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "raw-sync-primitive")
            .collect();
        assert!(hits.len() >= 2, "expected both seeded uses: {findings:?}");
        // The same source inside the sync layer itself is legal.
        let exempt = analyze_one(SYNC_LAYER, &source);
        assert!(exempt.iter().all(|f| f.rule != "raw-sync-primitive"));
    }

    #[test]
    fn raw_sync_allows_arc_and_atomics() {
        let findings = analyze_one(
            "crates/core/src/metrics.rs",
            "use std::sync::Arc;\nuse std::sync::atomic::{AtomicU64, Ordering};\n\
             use std::sync::{Barrier, OnceLock};\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn lock_unwrap_fixture_fires_only_in_server_paths() {
        let source = fixture("lock_unwrap.rs");
        let findings = analyze_one("crates/server/src/session.rs", &source);
        assert!(
            findings.iter().any(|f| f.rule == "lock-result-unwrap"),
            "{findings:?}"
        );
        let elsewhere = analyze_one("crates/sim/src/table.rs", &source);
        assert!(elsewhere.iter().all(|f| f.rule != "lock-result-unwrap"));
    }

    #[test]
    fn block_on_fixture_fires_inside_poll_only() {
        let source = fixture("block_on_poll.rs");
        let findings = analyze_one("crates/core/src/runtime/fut.rs", &source);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "block-on-in-poll")
            .collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
        // The fixture also calls block_on OUTSIDE a poll body; only the
        // inside use may fire, and the line number must point at it.
        assert_eq!(hits[0].line, 14, "{hits:?}");
    }

    #[test]
    fn blocking_net_fixture_fires_in_session_paths_only() {
        let source = fixture("blocking_net.rs");
        let findings = analyze_one("crates/server/src/session.rs", &source);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "blocking-net-in-session")
            .collect();
        // Two std::net types (one direct, one in a use-group) plus the
        // set_read_timeout poll; the SocketAddr in the same use-group and
        // the blocking peer inside `mod tests` are both legal.
        assert_eq!(hits.len(), 3, "{findings:?}");
        assert!(
            hits.iter().any(|f| f.message.contains("set_read_timeout")),
            "{hits:?}"
        );
        assert!(
            hits.iter()
                .all(|f| !f.message.contains("std::net::SocketAddr")),
            "{hits:?}"
        );
        // The blocking client, the load drivers and the CLI binaries are
        // sanctioned sites, and the rule has no opinion outside the server
        // crate.
        for exempt in [
            "crates/server/src/client.rs",
            "crates/server/src/replay.rs",
            "crates/server/src/bin/loadgen.rs",
            "crates/sim/src/driver.rs",
        ] {
            let findings = analyze_one(exempt, &source);
            assert!(
                findings.iter().all(|f| f.rule != "blocking-net-in-session"),
                "{exempt}: {findings:?}"
            );
        }
    }

    #[test]
    fn unbuffered_write_fixture_fires_in_session_paths_only() {
        let source = fixture("unbuffered_write.rs");
        let findings = analyze_one("crates/server/src/server.rs", &source);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "unbuffered-frame-write-in-session")
            .collect();
        // The async session write and the sync fallback; the per-frame
        // write inside `mod tests` (a test playing the peer) is legal.
        assert_eq!(hits.len(), 2, "{findings:?}");
        assert!(
            hits.iter().any(|f| f.message.contains("write_frame_async")),
            "{hits:?}"
        );
        // The helpers' home file, the lockstep clients and the CLI
        // binaries are sanctioned per-frame sites, and the rule has no
        // opinion outside the server crate.
        for exempt in [
            "crates/server/src/wire.rs",
            "crates/server/src/client.rs",
            "crates/server/src/replay.rs",
            "crates/server/src/bin/loadgen.rs",
            "crates/sim/src/driver.rs",
        ] {
            let findings = analyze_one(exempt, &source);
            assert!(
                findings
                    .iter()
                    .all(|f| f.rule != "unbuffered-frame-write-in-session"),
                "{exempt}: {findings:?}"
            );
        }
    }

    #[test]
    fn fallible_unwrap_fixture_fires_in_session_paths_only() {
        let source = fixture("fallible_unwrap.rs");
        let findings = analyze_one("crates/server/src/server.rs", &source);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "fallible-unwrap-in-session")
            .collect();
        // The async frame read, the awaited fetch and the blocking frame
        // write; the `?`-propagation, the `.ok()`, the try_into().unwrap()
        // and the whole `mod tests` peer are all legal.
        assert_eq!(hits.len(), 3, "{findings:?}");
        assert!(
            hits.iter()
                .any(|f| f.message.contains("try_get_or_execute_async")),
            "{hits:?}"
        );
        assert!(
            hits.iter().any(|f| f.message.contains("next_frame")),
            "{hits:?}"
        );
        // The CLI binaries are sanctioned crash sites, and the rule has no
        // opinion outside the server crate.
        for exempt in [
            "crates/server/src/bin/watchmand.rs",
            "crates/sim/src/driver.rs",
        ] {
            let findings = analyze_one(exempt, &source);
            assert!(
                findings
                    .iter()
                    .all(|f| f.rule != "fallible-unwrap-in-session"),
                "{exempt}: {findings:?}"
            );
        }
    }

    #[test]
    fn unbounded_retry_fixture_fires_on_the_budgetless_loop_only() {
        let source = fixture("unbounded_retry.rs");
        let findings = analyze_one("crates/server/src/client.rs", &source);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "unbounded-retry-loop")
            .collect();
        // Only the budgetless reconnect loop: the bounded loop carries
        // `attempt`/`budget`, and the accept loop is unbounded by design.
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert!(hits[0].message.contains("connect"), "{hits:?}");
        for exempt in [
            "crates/server/src/bin/loadgen.rs",
            "crates/sim/src/driver.rs",
        ] {
            let findings = analyze_one(exempt, &source);
            assert!(
                findings.iter().all(|f| f.rule != "unbounded-retry-loop"),
                "{exempt}: {findings:?}"
            );
        }
    }

    #[test]
    fn raw_instant_fixture_fires_in_engine_and_session_paths_only() {
        let source = fixture("raw_instant.rs");
        for guarded in [
            "crates/server/src/server.rs",
            "crates/core/src/engine/watchman.rs",
        ] {
            let findings = analyze_one(guarded, &source);
            let hits: Vec<_> = findings
                .iter()
                .filter(|f| f.rule == "raw-instant-timing")
                .collect();
            // The full-path read and the imported-form read; the telemetry
            // clock authority, the string, the comment and the raw read
            // inside `mod tests` all stay quiet.
            assert_eq!(hits.len(), 2, "{guarded}: {findings:?}");
        }
        // The clock authority's home, the blocking client, the load
        // drivers, the CLI binaries and everything outside the engine and
        // server crates keep their raw clocks.
        for exempt in [
            "crates/core/src/telemetry.rs",
            "crates/server/src/client.rs",
            "crates/server/src/replay.rs",
            "crates/server/src/bin/loadgen.rs",
            "crates/core/src/runtime/mod.rs",
            "crates/bench/benches/wire_roundtrip.rs",
        ] {
            let findings = analyze_one(exempt, &source);
            assert!(
                findings.iter().all(|f| f.rule != "raw-instant-timing"),
                "{exempt}: {findings:?}"
            );
        }
    }

    #[test]
    fn policy_fixture_reports_missing_signals_and_orphan_variants() {
        let source = fixture("policy_gap.rs");
        let findings = analyze_one("crates/core/src/policy/gap.rs", &source);
        let missing: Vec<_> = findings
            .iter()
            .filter(|f| f.message.contains("does not define"))
            .collect();
        assert!(
            missing
                .iter()
                .any(|f| f.message.contains("record_coalesced_reference")),
            "{findings:?}"
        );
        // The failure-pipeline signals are part of the required set too: a
        // policy that never hears about error/stale references mis-estimates
        // every arrival rate under degradation.
        for signal in ["record_error_reference", "record_stale_reference"] {
            assert!(
                missing.iter().any(|f| f.message.contains(signal)),
                "{signal}: {findings:?}"
            );
        }
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("PolicyKind::Orphan")),
            "{findings:?}"
        );
    }

    #[test]
    fn frame_const_fixture_reports_forked_caps() {
        let source = fixture("frame_fork.rs");
        let findings = analyze_one("crates/client/src/client.rs", &source);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "frame-size-consistency" && f.message.contains("redeclared")),
            "{findings:?}"
        );
    }

    #[test]
    fn frame_consts_in_home_files_must_be_ordered() {
        let wire = "pub const MAX_FRAME_BYTES: u32 = 16 << 20;\n\
                    pub const MAX_PREFIX_BYTES: u32 = MAX_FRAME_BYTES + 1024;\n";
        let findings = analyze_one("crates/server/src/wire.rs", wire);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "frame-size-consistency" && f.message.contains("strictly below")),
            "{findings:?}"
        );
        let good = "pub const MAX_FRAME_BYTES: u32 = 16 << 20;\n\
                    pub const MAX_PREFIX_BYTES: u32 = MAX_FRAME_BYTES - 1024;\n";
        assert!(analyze_one("crates/server/src/wire.rs", good).is_empty());
    }

    #[test]
    fn const_expr_evaluator_handles_the_cap_grammar() {
        let env = HashMap::from([("MAX_FRAME_BYTES", 16_u64 << 20)]);
        let eval = |src: &str| eval_const_expr(&lex(src), &env);
        assert_eq!(eval("16 << 20"), Some(16 << 20));
        assert_eq!(eval("64 << 20"), Some(64 << 20));
        assert_eq!(eval("MAX_FRAME_BYTES - 1024"), Some((16 << 20) - 1024));
        assert_eq!(eval("(4 + 12) << 20"), Some(16 << 20));
        assert_eq!(eval("2 * 8 << 20"), Some(16 << 20));
        assert_eq!(eval("1_024"), Some(1024));
        assert_eq!(eval("16u32"), Some(16));
        assert_eq!(eval("SOME_UNKNOWN"), None);
    }

    #[test]
    fn clean_sources_produce_no_findings() {
        let findings = analyze_one(
            "crates/core/src/engine/watchman.rs",
            "use crate::sync::{Mutex, MutexGuard};\n\
             fn lookup(&self) { let state = self.state.lock(); drop(state); }\n\
             fn poll_ready(&mut self, cx: &mut Context<'_>) -> Poll<()> { Poll::Ready(()) }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }
}
