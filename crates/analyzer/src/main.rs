//! The workspace lint gate: walks every crate's `src/` tree, runs the
//! repo-invariant rules in [`watchman_analyzer::analyze`], prints findings
//! and exits 1 if there are any.
//!
//! Usage: `cargo run -p watchman-analyzer -- --root .`

use watchman_analyzer::{analyze, FileSet};

fn main() {
    let mut root = String::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = args.next().unwrap_or_else(|| {
                    eprintln!("--root requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let mut sources: Vec<(String, String)> = Vec::new();
    let root_path = std::path::Path::new(&root);
    // The facade's src/ plus every crate's src/: lint the code that ships,
    // not fixtures, benches or generated target/ output.
    let mut src_dirs: Vec<std::path::PathBuf> = vec![root_path.join("src")];
    if let Ok(crates) = std::fs::read_dir(root_path.join("crates")) {
        for entry in crates.flatten() {
            src_dirs.push(entry.path().join("src"));
        }
    }
    for dir in src_dirs {
        collect_sources(&dir, root_path, &mut sources);
    }
    if sources.is_empty() {
        eprintln!("no Rust sources under {root}; wrong --root?");
        std::process::exit(2);
    }

    let findings = analyze(&FileSet::from_sources(&sources));
    for finding in &findings {
        println!("{finding}");
    }
    println!(
        "analyzer: {} files scanned, {} findings",
        sources.len(),
        findings.len()
    );
    if !findings.is_empty() {
        std::process::exit(1);
    }
}

/// Recursively collects `.rs` sources under `dir`, recording repo-relative
/// forward-slash paths (the rules dispatch on them).
fn collect_sources(
    dir: &std::path::Path,
    root: &std::path::Path,
    sources: &mut Vec<(String, String)>,
) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<_> = entries.flatten().map(|entry| entry.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_sources(&path, root, sources);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            match std::fs::read_to_string(&path) {
                Ok(source) => sources.push((rel, source)),
                Err(error) => {
                    eprintln!("skipping unreadable {rel}: {error}");
                }
            }
        }
    }
}
