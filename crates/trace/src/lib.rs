//! # watchman-trace
//!
//! Workload traces for the WATCHMAN reproduction: the trace record format of
//! paper §4.1, a drill-down trace generator, and trace statistics.
//!
//! ```
//! use watchman_trace::{TraceConfig, TraceGenerator, TraceStats};
//! use watchman_warehouse::tpcd;
//!
//! let benchmark = tpcd::benchmark();
//! let trace = TraceGenerator::new(&benchmark, TraceConfig::quick(1_000, 42)).generate();
//! let stats = TraceStats::of(&trace);
//! assert_eq!(trace.len(), 1_000);
//! assert!(stats.max_hit_ratio > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod generator;
pub mod record;
pub mod stats;

pub use generator::{TraceConfig, TraceGenerator};
pub use record::{Trace, TraceRecord};
pub use stats::TraceStats;
