//! Trace statistics.
//!
//! [`TraceStats`] summarizes the reference-locality and cost/size structure
//! of a workload trace.  The statistics directly correspond to the quantities
//! the paper reports for the infinite-cache experiment (Figure 2): the
//! working-set size ("cache size" column — the total bytes of all distinct
//! retrieved sets), the maximal achievable hit ratio, and the maximal
//! achievable cost savings ratio.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use watchman_warehouse::QueryInstance;

use crate::record::Trace;

/// Summary statistics of a workload trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total number of query references.
    pub references: u64,
    /// Number of distinct query instances referenced.
    pub distinct_queries: u64,
    /// Total execution cost over all references, in block reads.
    pub total_cost_blocks: u64,
    /// Total bytes of all *distinct* retrieved sets — the cache size an
    /// infinite cache would grow to (Fig. 2's "cache size" column).
    pub working_set_bytes: u64,
    /// Maximal achievable hit ratio: repeated references / all references.
    pub max_hit_ratio: f64,
    /// Maximal achievable cost savings ratio: cost of repeated references /
    /// total cost (every repetition of a query could have been answered from
    /// an infinite cache).
    pub max_cost_savings_ratio: f64,
    /// References per template index.
    pub references_per_template: Vec<u64>,
    /// Distinct instances per template index.
    pub distinct_per_template: Vec<u64>,
}

impl TraceStats {
    /// Computes statistics for a trace.
    pub fn of(trace: &Trace) -> TraceStats {
        let mut first_seen: HashMap<QueryInstance, ()> = HashMap::new();
        let mut references = 0u64;
        let mut total_cost = 0u64;
        let mut repeated_refs = 0u64;
        let mut repeated_cost = 0u64;
        let mut working_set = 0u64;
        let template_count = trace
            .records
            .iter()
            .map(|r| r.instance.template.index() + 1)
            .max()
            .unwrap_or(0);
        let mut refs_per_template = vec![0u64; template_count];
        let mut distinct_per_template = vec![0u64; template_count];

        for record in trace.iter() {
            references += 1;
            total_cost += record.cost_blocks;
            refs_per_template[record.instance.template.index()] += 1;
            if first_seen.insert(record.instance, ()).is_none() {
                working_set += record.result_bytes;
                distinct_per_template[record.instance.template.index()] += 1;
            } else {
                repeated_refs += 1;
                repeated_cost += record.cost_blocks;
            }
        }

        TraceStats {
            references,
            distinct_queries: first_seen.len() as u64,
            total_cost_blocks: total_cost,
            working_set_bytes: working_set,
            max_hit_ratio: if references == 0 {
                0.0
            } else {
                repeated_refs as f64 / references as f64
            },
            max_cost_savings_ratio: if total_cost == 0 {
                0.0
            } else {
                repeated_cost as f64 / total_cost as f64
            },
            references_per_template: refs_per_template,
            distinct_per_template,
        }
    }

    /// The working set expressed as a fraction of the database size.
    pub fn working_set_fraction(&self, database_bytes: u64) -> f64 {
        if database_bytes == 0 {
            0.0
        } else {
            self.working_set_bytes as f64 / database_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceConfig, TraceGenerator};
    use crate::record::TraceRecord;
    use watchman_warehouse::{tpcd, BenchmarkKind, TemplateId};

    fn record(seq: u64, template: u16, param: u64, bytes: u64, cost: u64) -> TraceRecord {
        TraceRecord {
            seq,
            timestamp_us: seq * 10,
            instance: QueryInstance::new(TemplateId(template), param),
            query_text: format!("T{template} P{param}"),
            result_bytes: bytes,
            cost_blocks: cost,
        }
    }

    #[test]
    fn stats_of_empty_trace() {
        let trace = Trace {
            benchmark: BenchmarkKind::TpcD,
            database_bytes: 100,
            seed: 0,
            records: vec![],
        };
        let stats = TraceStats::of(&trace);
        assert_eq!(stats.references, 0);
        assert_eq!(stats.distinct_queries, 0);
        assert_eq!(stats.max_hit_ratio, 0.0);
        assert_eq!(stats.max_cost_savings_ratio, 0.0);
        assert_eq!(stats.working_set_fraction(100), 0.0);
    }

    #[test]
    fn repeats_are_counted_correctly() {
        // q(0,1) referenced three times, q(1,5) once.
        let trace = Trace {
            benchmark: BenchmarkKind::TpcD,
            database_bytes: 10_000,
            seed: 0,
            records: vec![
                record(0, 0, 1, 100, 50),
                record(1, 1, 5, 200, 10),
                record(2, 0, 1, 100, 50),
                record(3, 0, 1, 100, 50),
            ],
        };
        let stats = TraceStats::of(&trace);
        assert_eq!(stats.references, 4);
        assert_eq!(stats.distinct_queries, 2);
        assert_eq!(stats.working_set_bytes, 300);
        assert_eq!(stats.total_cost_blocks, 160);
        assert!((stats.max_hit_ratio - 0.5).abs() < 1e-12);
        assert!((stats.max_cost_savings_ratio - 100.0 / 160.0).abs() < 1e-12);
        assert_eq!(stats.references_per_template, vec![3, 1]);
        assert_eq!(stats.distinct_per_template, vec![1, 1]);
    }

    #[test]
    fn working_set_fraction_relative_to_database() {
        let trace = Trace {
            benchmark: BenchmarkKind::TpcD,
            database_bytes: 1_000,
            seed: 0,
            records: vec![record(0, 0, 1, 250, 5)],
        };
        let stats = TraceStats::of(&trace);
        assert!((stats.working_set_fraction(1_000) - 0.25).abs() < 1e-12);
        assert_eq!(stats.working_set_fraction(0), 0.0);
    }

    #[test]
    fn generated_traces_have_substantial_locality() {
        // The paper's infinite-cache experiment finds high reference locality
        // in both benchmark traces; verify the generator reproduces that.
        let benchmark = tpcd::benchmark();
        let trace = TraceGenerator::new(&benchmark, TraceConfig::quick(5_000, 17)).generate();
        let stats = TraceStats::of(&trace);
        assert!(
            stats.max_hit_ratio > 0.4,
            "expected high reference locality, got {}",
            stats.max_hit_ratio
        );
        assert!(stats.max_cost_savings_ratio > 0.4);
        assert!(stats.working_set_bytes > 0);
        assert!(stats.distinct_queries < stats.references);
    }
}
