//! Drill-down workload trace generation (paper §4.1).
//!
//! The paper's traces were produced by instantiating benchmark query
//! templates with parameters "generated randomly from pre-defined intervals".
//! Because the parameter intervals of different templates differ in size by
//! many orders of magnitude, the resulting trace follows the "drill-down
//! analysis" distribution: queries at high summarization levels (small
//! parameter spaces) repeat frequently within the trace, while queries at low
//! summarization levels (huge parameter spaces) do not repeat at all.
//!
//! [`TraceGenerator`] reproduces exactly that process against a synthetic
//! [`Benchmark`]: each of the `query_count` trace entries picks a template
//! (uniformly by default, or with user-supplied weights) and a parameter
//! value uniform in the template's instance space, and stamps it with an
//! exponentially distributed inter-arrival time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use watchman_warehouse::{Benchmark, QueryInstance};

use crate::record::{Trace, TraceRecord};

/// Configuration of a trace generation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of queries to generate.  The paper uses 17 000 per trace.
    pub query_count: usize,
    /// RNG seed; the same seed and benchmark always yield the same trace.
    pub seed: u64,
    /// Mean inter-arrival time between consecutive queries, in microseconds
    /// of logical time.
    pub mean_interarrival_us: u64,
    /// Optional per-template selection weights.  `None` selects templates
    /// uniformly, which matches the benchmark specifications' instantiation
    /// rules.  When provided, the vector must have one entry per template.
    pub template_weights: Option<Vec<f64>>,
}

impl TraceConfig {
    /// The paper's trace length.
    pub const PAPER_QUERY_COUNT: usize = 17_000;

    /// The configuration used to reproduce the paper's experiments:
    /// 17 000 queries, uniform template selection, one query per logical
    /// second on average.
    pub fn paper(seed: u64) -> Self {
        TraceConfig {
            query_count: Self::PAPER_QUERY_COUNT,
            seed,
            mean_interarrival_us: 1_000_000,
            template_weights: None,
        }
    }

    /// A shorter configuration for unit tests and micro-benchmarks.
    pub fn quick(query_count: usize, seed: u64) -> Self {
        TraceConfig {
            query_count,
            seed,
            mean_interarrival_us: 1_000_000,
            template_weights: None,
        }
    }

    /// Sets per-template weights (must have one entry per template of the
    /// benchmark the trace will be generated for).
    pub fn with_weights(mut self, weights: Vec<f64>) -> Self {
        self.template_weights = Some(weights);
        self
    }
}

/// Generates workload traces against a benchmark.
#[derive(Debug, Clone)]
pub struct TraceGenerator<'a> {
    benchmark: &'a Benchmark,
    config: TraceConfig,
}

impl<'a> TraceGenerator<'a> {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `template_weights` is provided with a length different from
    /// the benchmark's template count, or with non-positive total weight —
    /// these are configuration programming errors.
    pub fn new(benchmark: &'a Benchmark, config: TraceConfig) -> Self {
        if let Some(weights) = &config.template_weights {
            assert_eq!(
                weights.len(),
                benchmark.template_count(),
                "one weight per template required"
            );
            assert!(
                weights.iter().all(|w| w.is_finite() && *w >= 0.0)
                    && weights.iter().sum::<f64>() > 0.0,
                "weights must be non-negative with a positive sum"
            );
        }
        TraceGenerator { benchmark, config }
    }

    /// The configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Generates the trace.
    pub fn generate(&self) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut records = Vec::with_capacity(self.config.query_count);
        let mut now_us: u64 = 0;
        for seq in 0..self.config.query_count as u64 {
            // Exponential inter-arrival via inverse-transform sampling.
            let u: f64 = rng.gen_range(1e-9..1.0);
            let gap = (-u.ln() * self.config.mean_interarrival_us as f64).round() as u64;
            now_us += gap.max(1);

            let template_idx = self.pick_template(&mut rng);
            let template = &self.benchmark.templates()[template_idx];
            let param = rng.gen_range(0..template.instance_space());
            let instance = QueryInstance::new(template.id, param);
            records.push(TraceRecord {
                seq,
                timestamp_us: now_us,
                instance,
                query_text: self.benchmark.query_text(instance),
                result_bytes: self.benchmark.result_bytes(instance),
                cost_blocks: self.benchmark.cost_blocks(instance),
            });
        }
        Trace {
            benchmark: self.benchmark.kind(),
            database_bytes: self.benchmark.catalog().total_bytes(),
            seed: self.config.seed,
            records,
        }
    }

    fn pick_template(&self, rng: &mut StdRng) -> usize {
        match &self.config.template_weights {
            None => rng.gen_range(0..self.benchmark.template_count()),
            Some(weights) => {
                let total: f64 = weights.iter().sum();
                let mut draw = rng.gen_range(0.0..total);
                for (i, w) in weights.iter().enumerate() {
                    if draw < *w {
                        return i;
                    }
                    draw -= w;
                }
                weights.len() - 1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use watchman_warehouse::{setquery, tpcd, SummarizationLevel};

    #[test]
    fn trace_has_requested_length_and_monotonic_timestamps() {
        let benchmark = tpcd::benchmark();
        let trace = TraceGenerator::new(&benchmark, TraceConfig::quick(500, 1)).generate();
        assert_eq!(trace.len(), 500);
        for pair in trace.records.windows(2) {
            assert!(pair[1].timestamp_us > pair[0].timestamp_us);
            assert_eq!(pair[1].seq, pair[0].seq + 1);
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let benchmark = setquery::benchmark();
        let a = TraceGenerator::new(&benchmark, TraceConfig::quick(300, 42)).generate();
        let b = TraceGenerator::new(&benchmark, TraceConfig::quick(300, 42)).generate();
        assert_eq!(a, b);
        let c = TraceGenerator::new(&benchmark, TraceConfig::quick(300, 43)).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn records_are_consistent_with_the_benchmark_models() {
        let benchmark = tpcd::benchmark();
        let trace = TraceGenerator::new(&benchmark, TraceConfig::quick(200, 9)).generate();
        for record in trace.iter() {
            assert_eq!(record.cost_blocks, benchmark.cost_blocks(record.instance));
            assert_eq!(record.result_bytes, benchmark.result_bytes(record.instance));
            assert_eq!(record.query_text, benchmark.query_text(record.instance));
        }
    }

    #[test]
    fn drill_down_distribution_high_summarization_repeats() {
        // High-summarization templates must repeat many times in a trace of a
        // few thousand queries, low-summarization templates essentially never.
        let benchmark = tpcd::benchmark();
        let trace = TraceGenerator::new(&benchmark, TraceConfig::quick(5_000, 3)).generate();
        let mut high_refs = 0u64;
        let mut high_unique: HashSet<_> = HashSet::new();
        let mut low_refs = 0u64;
        let mut low_unique: HashSet<_> = HashSet::new();
        for record in trace.iter() {
            let template = &benchmark.templates()[record.instance.template.index()];
            match template.summarization {
                SummarizationLevel::High => {
                    high_refs += 1;
                    high_unique.insert(record.instance);
                }
                SummarizationLevel::Low => {
                    low_refs += 1;
                    low_unique.insert(record.instance);
                }
                SummarizationLevel::Medium => {}
            }
        }
        let high_repeat_factor = high_refs as f64 / high_unique.len() as f64;
        let low_repeat_factor = low_refs as f64 / low_unique.len().max(1) as f64;
        assert!(
            high_repeat_factor > 3.0,
            "high-summarization queries must repeat (factor {high_repeat_factor})"
        );
        assert!(
            low_repeat_factor < 1.05,
            "low-summarization queries must almost never repeat (factor {low_repeat_factor})"
        );
    }

    #[test]
    fn weighted_selection_respects_weights() {
        let benchmark = setquery::benchmark();
        let mut weights = vec![0.0; benchmark.template_count()];
        weights[0] = 1.0;
        weights[3] = 3.0;
        let config = TraceConfig::quick(2_000, 11).with_weights(weights);
        let trace = TraceGenerator::new(&benchmark, config).generate();
        let counts = trace
            .iter()
            .fold(vec![0u64; benchmark.template_count()], |mut acc, r| {
                acc[r.instance.template.index()] += 1;
                acc
            });
        assert_eq!(counts.iter().sum::<u64>(), 2_000);
        assert!(counts[0] > 0);
        assert!(
            counts[3] > 2 * counts[0],
            "template 3 has 3x the weight of template 0"
        );
        for (i, &c) in counts.iter().enumerate() {
            if i != 0 && i != 3 {
                assert_eq!(c, 0, "unweighted template {i} must never be selected");
            }
        }
    }

    #[test]
    #[should_panic(expected = "one weight per template")]
    fn mismatched_weights_are_rejected() {
        let benchmark = setquery::benchmark();
        let config = TraceConfig::quick(10, 1).with_weights(vec![1.0, 2.0]);
        let _ = TraceGenerator::new(&benchmark, config);
    }

    #[test]
    fn paper_config_has_seventeen_thousand_queries() {
        let config = TraceConfig::paper(5);
        assert_eq!(config.query_count, 17_000);
        assert!(config.template_weights.is_none());
    }
}
