//! Workload trace records.
//!
//! A trace is exactly what the paper collected from its Oracle 7 setup
//! (§4.1): a sequence of queries, each carrying "a timestamp of the retrieval
//! time, query ID, size of the retrieved set and execution cost of the
//! query".  Traces are self-contained — every record embeds the derived
//! quantities — so a saved trace can be replayed without re-instantiating the
//! benchmark that generated it.

use serde::{Deserialize, Serialize};
use watchman_warehouse::{BenchmarkKind, QueryInstance};

/// One query reference in a workload trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Position of the record in the trace (0-based).
    pub seq: u64,
    /// Retrieval timestamp in microseconds of logical time.
    pub timestamp_us: u64,
    /// The query instance (template + parameter) that was submitted.
    pub instance: QueryInstance,
    /// The canonical query text; its delimiter-compressed form is the query
    /// ID used for cache lookups.
    pub query_text: String,
    /// Size of the retrieved set in bytes.
    pub result_bytes: u64,
    /// Execution cost in logical block reads.
    pub cost_blocks: u64,
}

/// A complete workload trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Which benchmark produced the trace.
    pub benchmark: BenchmarkKind,
    /// Total size of the benchmark database the trace was generated against,
    /// in bytes (cache sizes in the experiments are fractions of this).
    pub database_bytes: u64,
    /// The seed the trace was generated with (for reproducibility).
    pub seed: u64,
    /// The query references, in submission order.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Number of queries in the trace.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the records in submission order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Serializes the trace to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserializes a trace from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<Trace> {
        serde_json::from_str(json)
    }

    /// Returns a shortened copy containing only the first `n` records
    /// (useful for quick experiments and benchmarks).
    pub fn truncated(&self, n: usize) -> Trace {
        Trace {
            benchmark: self.benchmark,
            database_bytes: self.database_bytes,
            seed: self.seed,
            records: self.records.iter().take(n).cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use watchman_warehouse::TemplateId;

    fn sample_trace() -> Trace {
        Trace {
            benchmark: BenchmarkKind::TpcD,
            database_bytes: 1_000_000,
            seed: 7,
            records: (0..5)
                .map(|i| TraceRecord {
                    seq: i,
                    timestamp_us: i * 100,
                    instance: QueryInstance::new(TemplateId((i % 2) as u16), i),
                    query_text: format!("SELECT {i}"),
                    result_bytes: 100 + i,
                    cost_blocks: 10 * (i + 1),
                })
                .collect(),
        }
    }

    #[test]
    fn len_and_iteration() {
        let trace = sample_trace();
        assert_eq!(trace.len(), 5);
        assert!(!trace.is_empty());
        let timestamps: Vec<u64> = trace.iter().map(|r| r.timestamp_us).collect();
        assert_eq!(timestamps, vec![0, 100, 200, 300, 400]);
    }

    #[test]
    fn json_round_trip() {
        let trace = sample_trace();
        let json = trace.to_json().unwrap();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn truncated_keeps_prefix() {
        let trace = sample_trace();
        let short = trace.truncated(2);
        assert_eq!(short.len(), 2);
        assert_eq!(short.records[1], trace.records[1]);
        assert_eq!(short.benchmark, trace.benchmark);
        // Truncating beyond the end keeps everything.
        assert_eq!(trace.truncated(100).len(), 5);
    }
}
