//! Logical time used by all cache policies.
//!
//! The paper's reference-rate estimator (Eq. 3) needs a monotonically
//! non-decreasing notion of "now" that is shared between the cache manager and
//! the workload driver.  WATCHMAN traces carry their own timestamps, so the
//! library never reads the wall clock on the hot path; instead every operation
//! receives an explicit [`Timestamp`].  A [`Clock`] abstraction is provided for
//! applications that prefer the library to stamp operations itself.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// A point in logical time, measured in microseconds from an arbitrary origin.
///
/// Timestamps are plain `u64` microsecond counts.  The unit only matters in
/// that reference rates ([`crate::history::ReferenceHistory::rate`]) are
/// expressed in references per microsecond; because the profit metric is used
/// purely for *ordering* cached sets, any consistent unit yields identical
/// caching decisions.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The origin of logical time.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from a raw microsecond count.
    pub const fn from_micros(micros: u64) -> Self {
        Timestamp(micros)
    }

    /// Creates a timestamp from a whole number of milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Timestamp(millis * 1_000)
    }

    /// Creates a timestamp from a whole number of seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs * 1_000_000)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the elapsed time since `earlier`, saturating at zero if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Returns a timestamp advanced by `micros` microseconds.
    pub const fn advanced_by(self, micros: u64) -> Timestamp {
        Timestamp(self.0 + micros)
    }

    /// Returns the later of `self` and `other`.
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(micros: u64) -> Self {
        Timestamp(micros)
    }
}

impl From<Timestamp> for u64 {
    fn from(ts: Timestamp) -> Self {
        ts.0
    }
}

/// A source of timestamps.
///
/// Policies never call a clock themselves; the clock exists for embedding
/// applications (and the simulator) that want a single authority for "now".
pub trait Clock {
    /// Returns the current logical time.
    fn now(&self) -> Timestamp;
}

/// A manually driven clock, useful in tests and trace replay.
///
/// The clock is thread-safe; `advance` and `set` use atomic operations.
#[derive(Debug, Default)]
pub struct ManualClock {
    micros: AtomicU64,
}

impl ManualClock {
    /// Creates a clock starting at [`Timestamp::ZERO`].
    pub fn new() -> Self {
        Self::starting_at(Timestamp::ZERO)
    }

    /// Creates a clock starting at the given time.
    pub fn starting_at(start: Timestamp) -> Self {
        ManualClock {
            micros: AtomicU64::new(start.as_micros()),
        }
    }

    /// Advances the clock by `micros` microseconds and returns the new time.
    pub fn advance(&self, micros: u64) -> Timestamp {
        let new = self.micros.fetch_add(micros, Ordering::SeqCst) + micros;
        Timestamp::from_micros(new)
    }

    /// Sets the clock to an absolute time.  The clock never moves backwards:
    /// setting a time earlier than the current one is a no-op.
    pub fn set(&self, ts: Timestamp) {
        self.micros.fetch_max(ts.as_micros(), Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Timestamp {
        Timestamp::from_micros(self.micros.load(Ordering::SeqCst))
    }
}

/// A clock backed by [`std::time::Instant`], for embedding WATCHMAN into a
/// live application rather than a trace-driven simulation.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: std::time::Instant,
}

impl MonotonicClock {
    /// Creates a clock whose origin is the moment of construction.
    pub fn new() -> Self {
        MonotonicClock {
            origin: std::time::Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Timestamp {
        Timestamp::from_micros(self.origin.elapsed().as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_round_trip() {
        let ts = Timestamp::from_micros(42);
        assert_eq!(ts.as_micros(), 42);
        assert_eq!(u64::from(ts), 42);
        assert_eq!(Timestamp::from(42u64), ts);
    }

    #[test]
    fn timestamp_units() {
        assert_eq!(Timestamp::from_millis(3).as_micros(), 3_000);
        assert_eq!(Timestamp::from_secs(2).as_micros(), 2_000_000);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = Timestamp::from_micros(10);
        let late = Timestamp::from_micros(25);
        assert_eq!(late.saturating_since(early), 15);
        assert_eq!(early.saturating_since(late), 0);
    }

    #[test]
    fn advanced_by_adds() {
        let ts = Timestamp::from_micros(5).advanced_by(7);
        assert_eq!(ts.as_micros(), 12);
    }

    #[test]
    fn max_picks_later() {
        let a = Timestamp::from_micros(5);
        let b = Timestamp::from_micros(9);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn manual_clock_advances() {
        let clock = ManualClock::new();
        assert_eq!(clock.now(), Timestamp::ZERO);
        clock.advance(100);
        assert_eq!(clock.now().as_micros(), 100);
        clock.advance(50);
        assert_eq!(clock.now().as_micros(), 150);
    }

    #[test]
    fn manual_clock_never_goes_backwards() {
        let clock = ManualClock::starting_at(Timestamp::from_micros(500));
        clock.set(Timestamp::from_micros(100));
        assert_eq!(clock.now().as_micros(), 500);
        clock.set(Timestamp::from_micros(900));
        assert_eq!(clock.now().as_micros(), 900);
    }

    #[test]
    fn monotonic_clock_is_non_decreasing() {
        let clock = MonotonicClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn timestamp_display() {
        assert_eq!(Timestamp::from_micros(7).to_string(), "7us");
    }
}
