//! # watchman-core
//!
//! Core library of the WATCHMAN reproduction: the retrieved-set cache
//! manager described in *"WATCHMAN: A Data Warehouse Intelligent Cache
//! Manager"* (Scheuermann, Shim & Vingralek, VLDB 1996).
//!
//! WATCHMAN caches whole *retrieved sets* — the materialized results of
//! decision-support queries — and decides what to keep using a **profit
//! metric** that combines, for each set, its average reference rate `λᵢ`,
//! its size `sᵢ` and the execution cost `cᵢ` of the query that produced it:
//!
//! ```text
//! profit(RSᵢ) = λᵢ · cᵢ / sᵢ
//! ```
//!
//! Two complementary algorithms use this metric:
//!
//! * **LNC-R** (Least Normalized Cost Replacement) evicts cached sets in
//!   ascending profit order, considering sets with fewer reference samples
//!   first.
//! * **LNC-A** (Least Normalized Cost Admission) admits a newly retrieved set
//!   only if its profit exceeds the aggregate profit of the sets it would
//!   displace.
//!
//! Their combination, **LNC-RA**, is provided by [`policy::lnc::LncCache`],
//! alongside the comparison baselines used in the paper's evaluation (LRU,
//! LRU-K) and in follow-up literature (LFU, LCS, GreedyDual-Size).
//!
//! ## Quick start: the engine
//!
//! The primary public API is the concurrent [`engine`]: a sharded,
//! builder-configured facade serving many sessions at once, exactly the
//! "library of routines that may be linked with an application" of paper §3.
//!
//! ```
//! use watchman_core::engine::{LookupSource, PolicyKind, Watchman};
//! use watchman_core::prelude::*;
//!
//! // 8 shards, each an independent LNC-RA policy instance (K = 4), sharing
//! // 16 MB of capacity. Handles are cheap clones; one engine serves every
//! // session of a warehouse front end.
//! let engine: Watchman<SizedPayload> = Watchman::builder()
//!     .shards(8)
//!     .policy(PolicyKind::LncRa { k: 4 })
//!     .capacity_bytes(16 << 20)
//!     .build();
//!
//! let key = QueryKey::from_raw_query("SELECT sum(price) FROM lineitem WHERE year = 1995");
//!
//! // One call: hit, or execute-and-admit. Concurrent misses on the same
//! // query execute the warehouse query exactly once (single-flight).
//! let lookup = engine.get_or_execute(&key, Timestamp::from_secs(1), || {
//!     (SizedPayload::new(256), ExecutionCost::from_blocks(12_000))
//! });
//! assert_eq!(lookup.source, LookupSource::Executed);
//!
//! // Subsequent references are served from the cache, payloads shared by Arc.
//! let again = engine.get_or_execute(&key, Timestamp::from_secs(2), || unreachable!());
//! assert_eq!(again.source, LookupSource::Hit);
//! assert_eq!(engine.stats().hits, 1);
//! ```
//!
//! Single-threaded tools (the simulator, the optimality oracles) can still
//! drive a bare policy through [`policy::QueryCache`]; the engine and the
//! policies share one construction path, [`engine::PolicyKind`].
//!
//! ## Crate layout
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`engine`] | **The concurrent engine**: sharded [`Watchman`](engine::Watchman) facade, poll-based single-flight misses (sync + async front doors), [`PolicyKind`](engine::PolicyKind), [`CacheEvent`](engine::CacheEvent) observers, [`StatsSnapshot`](engine::StatsSnapshot) |
//! | [`runtime`] | Hand-rolled async [`Runtime`](runtime::Runtime): worker pool, task queue, timers, epoll IO reactor with async [`net`](runtime::net) wrappers, [`block_on`](runtime::block_on) |
//! | [`key`] | Query IDs, signatures, delimiter compression (paper §3) |
//! | [`value`] | [`CachePayload`](value::CachePayload), retrieved sets, execution costs |
//! | [`clock`] | Logical timestamps and clock sources |
//! | [`history`] | Sliding-window reference histories (Eq. 3) |
//! | [`profit`] | The profit and estimated-profit metrics (Eq. 2, 5, 6, 8) |
//! | [`policy`] | The [`QueryCache`](policy::QueryCache) trait, LNC-R/LNC-RA and all baselines |
//! | [`retained`] | Retained reference information (§2.4) |
//! | [`coherence`] | Relation-dependency tracking and invalidation on warehouse updates (§3) |
//! | [`equivalence`] | Canonical query matching, pluggable into the engine as a [`KeyNormalizer`](engine::KeyNormalizer) (§6) |
//! | [`metrics`] | Cost savings ratio, hit ratio, fragmentation (§4.1) |
//! | [`telemetry`] | Process-global metrics registry, latency histograms, flight recorder (see OBSERVABILITY.md) |
//! | [`theory`] | LNC\* and the exact knapsack oracle (§2.3) |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// `deny` rather than `forbid`: the epoll FFI in `runtime::reactor::sys` is
// the single allowed exception (scoped `#[allow]`, no crates.io in this
// build environment so there is no `libc`/`mio` to lean on).  Everything
// else in the crate remains unsafe-free.
#![deny(unsafe_code)]

pub mod checker;
pub mod clock;
pub mod coherence;
pub mod engine;
pub mod equivalence;
pub mod history;
pub mod index;
pub mod key;
pub mod metrics;
pub mod policy;
pub mod profit;
pub mod retained;
pub mod runtime;
pub mod sync;
pub mod telemetry;
pub mod theory;
pub mod value;

/// Convenient re-exports of the types most applications need.
pub mod prelude {
    pub use crate::clock::{Clock, ManualClock, MonotonicClock, Timestamp};
    pub use crate::coherence::{
        invalidate_affected, DependencyIndex, DependencyObserver, InvalidationReport,
    };
    pub use crate::engine::{
        BreakerConfig, CacheEvent, CacheObserver, DeadlineLookup, FailureConfig, FetchError,
        KeyNormalizer, Lookup, LookupError, LookupFuture, LookupSource, LookupTimedOut,
        NegativeCacheConfig, PolicyKind, RebalanceConfig, RebalanceOutcome, RetryPolicy,
        StalenessPolicy, StatsSnapshot, Watchman,
    };
    pub use crate::history::ReferenceHistory;
    pub use crate::key::{QueryKey, Signature};
    pub use crate::metrics::{CacheStats, FragmentationTracker};
    pub use crate::policy::gds::GreedyDualSizeCache;
    pub use crate::policy::lcs::LcsCache;
    pub use crate::policy::lfu::LfuCache;
    pub use crate::policy::lnc::{LncCache, LncConfig};
    pub use crate::policy::lru::LruCache;
    pub use crate::policy::lru_k::{LruKCache, LruKConfig};
    pub use crate::policy::{InsertOutcome, QueryCache, RejectReason};
    pub use crate::profit::Profit;
    pub use crate::runtime::{block_on, JoinError, JoinHandle, Runtime};
    pub use crate::telemetry::{HistogramSnapshot, MetricsSnapshot, TraceDump, TraceEvent};
    pub use crate::value::{CachePayload, Datum, ExecutionCost, RetrievedSet, Row, SizedPayload};
}

pub use prelude::*;
