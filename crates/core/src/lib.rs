//! # watchman-core
//!
//! Core library of the WATCHMAN reproduction: the retrieved-set cache
//! manager described in *"WATCHMAN: A Data Warehouse Intelligent Cache
//! Manager"* (Scheuermann, Shim & Vingralek, VLDB 1996).
//!
//! WATCHMAN caches whole *retrieved sets* — the materialized results of
//! decision-support queries — and decides what to keep using a **profit
//! metric** that combines, for each set, its average reference rate `λᵢ`,
//! its size `sᵢ` and the execution cost `cᵢ` of the query that produced it:
//!
//! ```text
//! profit(RSᵢ) = λᵢ · cᵢ / sᵢ
//! ```
//!
//! Two complementary algorithms use this metric:
//!
//! * **LNC-R** (Least Normalized Cost Replacement) evicts cached sets in
//!   ascending profit order, considering sets with fewer reference samples
//!   first.
//! * **LNC-A** (Least Normalized Cost Admission) admits a newly retrieved set
//!   only if its profit exceeds the aggregate profit of the sets it would
//!   displace.
//!
//! Their combination, **LNC-RA**, is provided by [`policy::lnc::LncCache`],
//! alongside the comparison baselines used in the paper's evaluation (LRU,
//! LRU-K) and in follow-up literature (LFU, LCS, GreedyDual-Size).
//!
//! ## Quick example
//!
//! ```
//! use watchman_core::prelude::*;
//!
//! // A 1 MB LNC-RA cache with the paper's default window K = 4.
//! let mut cache: LncCache<SizedPayload> = LncCache::lnc_ra(1 << 20);
//!
//! let key = QueryKey::from_raw_query("SELECT sum(price) FROM lineitem WHERE year = 1995");
//! let now = Timestamp::from_secs(1);
//!
//! // Look up: miss → execute the query against the warehouse, then offer the
//! // retrieved set together with its observed execution cost.
//! assert!(cache.get(&key, now).is_none());
//! let outcome = cache.insert(
//!     key.clone(),
//!     SizedPayload::new(256),                  // 256-byte aggregate result
//!     ExecutionCost::from_blocks(12_000),      // 12 000 block reads to compute
//!     now,
//! );
//! assert!(outcome.is_admitted());
//!
//! // Subsequent references are served from the cache.
//! assert!(cache.get(&key, Timestamp::from_secs(2)).is_some());
//! assert_eq!(cache.stats().hits, 1);
//! ```
//!
//! ## Crate layout
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`key`] | Query IDs, signatures, delimiter compression (paper §3) |
//! | [`value`] | [`CachePayload`](value::CachePayload), retrieved sets, execution costs |
//! | [`clock`] | Logical timestamps and clock sources |
//! | [`history`] | Sliding-window reference histories (Eq. 3) |
//! | [`profit`] | The profit and estimated-profit metrics (Eq. 2, 5, 6, 8) |
//! | [`policy`] | The [`QueryCache`](policy::QueryCache) trait, LNC-R/LNC-RA and all baselines |
//! | [`retained`] | Retained reference information (§2.4) |
//! | [`coherence`] | Relation-dependency tracking and invalidation on warehouse updates (§3) |
//! | [`equivalence`] | Canonical query matching beyond exact text equality (§6 future work) |
//! | [`metrics`] | Cost savings ratio, hit ratio, fragmentation (§4.1) |
//! | [`theory`] | LNC\* and the exact knapsack oracle (§2.3) |
//! | [`concurrent`] | A thread-safe shared-cache wrapper |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod coherence;
pub mod concurrent;
pub mod equivalence;
pub mod history;
pub mod index;
pub mod key;
pub mod metrics;
pub mod policy;
pub mod profit;
pub mod retained;
pub mod theory;
pub mod value;

/// Convenient re-exports of the types most applications need.
pub mod prelude {
    pub use crate::clock::{Clock, ManualClock, MonotonicClock, Timestamp};
    pub use crate::coherence::{invalidate_affected, DependencyIndex, InvalidationReport};
    pub use crate::concurrent::SharedCache;
    pub use crate::history::ReferenceHistory;
    pub use crate::key::{QueryKey, Signature};
    pub use crate::metrics::{CacheStats, FragmentationTracker};
    pub use crate::policy::gds::GreedyDualSizeCache;
    pub use crate::policy::lcs::LcsCache;
    pub use crate::policy::lfu::LfuCache;
    pub use crate::policy::lnc::{LncCache, LncConfig};
    pub use crate::policy::lru::LruCache;
    pub use crate::policy::lru_k::{LruKCache, LruKConfig};
    pub use crate::policy::{InsertOutcome, QueryCache, RejectReason};
    pub use crate::profit::Profit;
    pub use crate::value::{CachePayload, Datum, ExecutionCost, RetrievedSet, Row, SizedPayload};
}

pub use prelude::*;
