//! Process-wide telemetry: metrics registry, latency histograms, and the
//! flight recorder.
//!
//! The paper evaluates WATCHMAN through three aggregate metrics (CSR, HR,
//! fragmentation — §2.1/§4.1); this module adds the *operational* layer a
//! production deployment of such a cache needs: latency distributions per
//! lookup outcome, runtime profiling counters, and a bounded ring of recent
//! structured events that can be dumped from a live server without
//! restarting it under instrumentation.
//!
//! Everything here is hand-rolled on `std` atomics (like [`runtime`] and
//! [`sync`], no crates.io):
//!
//! * [`Histogram`] — a fixed-size **log-linear** latency histogram: power-of
//!   two major buckets subdivided into 4 linear sub-buckets (≤ 25 % relative
//!   bucket width), all `AtomicU64`, so `record` is lock-free and wait-free.
//!   Snapshots are mergeable and expose p50/p95/p99/max.
//! * [`Telemetry`] — the process-global registry of named counters, gauges
//!   and histograms, reached via [`global()`].  Hot paths touch single
//!   atomics; the JSON exposition ([`MetricsSnapshot`], versioned by
//!   [`METRICS_SCHEMA_VERSION`]) is assembled only when scraped.
//! * [`FlightRecorder`] — a fixed ring of structured trace events guarded by
//!   per-slot sequence counters (a seqlock: writers never block, readers
//!   detect torn slots and skip them).  Always on, a handful of relaxed
//!   atomic stores per event.  Dumped on demand (`TRACE_DUMP`) or
//!   automatically — rate-limited — when an anomaly fires (breaker trip,
//!   shed, slow-loris eviction).
//!
//! ## Clock authority
//!
//! This module is also the **single sanctioned home of wall-clock reads** on
//! the engine and session hot paths: [`now()`], [`now_us()`] and
//! [`elapsed_us()`].  Analyzer rule 10 (`raw-instant-timing`) rejects raw
//! `Instant::now()` in `engine/` and server session code so that every
//! timing site is discoverable here and instrumentation cannot silently
//! fork from the metrics it feeds.
//!
//! ## Concurrency (see CONCURRENCY.md)
//!
//! The registry holds **no locks at all** — counters, gauges and histogram
//! buckets are plain `AtomicU64`s with relaxed ordering (they are
//! statistics, not synchronization).  The flight-recorder ring uses
//! acquire/release only on the per-slot sequence word.  Nothing in this
//! module can therefore participate in a lock cycle: telemetry calls are
//! safe under any lock, including shard locks and runtime queue locks.
//!
//! [`runtime`]: crate::runtime
//! [`sync`]: crate::sync

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Version of the [`MetricsSnapshot`] JSON exposition schema.  Bumped on
/// any breaking change to field names or semantics; scrapers check it
/// before interpreting the maps.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Number of buckets in a [`Histogram`]: 4 linear buckets for values 0–3,
/// then 4 sub-buckets per power of two up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 252;

/// Poll durations at or above this many microseconds count as *long polls*
/// (`runtime.long_polls`): a task hogged its worker long enough to starve
/// peers — the cooperative-scheduling budget of CONCURRENCY.md.
pub const LONG_POLL_THRESHOLD_US: u64 = 10_000;

/// Slots in the [`FlightRecorder`] ring.
pub const TRACE_RING_SLOTS: usize = 1024;

/// Minimum spacing between automatic anomaly dumps, in microseconds.
const ANOMALY_DUMP_INTERVAL_US: u64 = 5_000_000;

/// Maximum shard index tracked by the per-shard occupancy gauges.  Engines
/// with more shards clamp to the last slot (the builder caps shard counts
/// far below this in practice).
pub const MAX_SHARD_GAUGES: usize = 64;

// ---------------------------------------------------------------------------
// Clock authority
// ---------------------------------------------------------------------------

/// The process-start epoch all `*_us` timestamps are relative to.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Reads the monotonic clock.  The one sanctioned `Instant::now()` for
/// engine and session timing code (analyzer rule 10): deadline arithmetic
/// (`telemetry::now() + backoff`) and latency measurement both flow through
/// here.
pub fn now() -> Instant {
    Instant::now()
}

/// Microseconds since process start (the flight recorder's timestamp base).
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Microseconds elapsed since `start`, saturating.
pub fn elapsed_us(start: Instant) -> u64 {
    start.elapsed().as_micros() as u64
}

// ---------------------------------------------------------------------------
// Counters and gauges
// ---------------------------------------------------------------------------

/// A monotonically increasing event counter (relaxed atomic increments).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (occupancy, depth, configuration).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Maps a recorded value to its bucket index.
///
/// Values 0–3 get exact unit buckets; every larger power-of-two range
/// `[2^e, 2^(e+1))` is split into 4 linear sub-buckets, so the bucket width
/// never exceeds 25 % of the bucket's lower bound.
fn bucket_index(value: u64) -> usize {
    if value < 4 {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros() as usize;
        let sub = ((value >> (msb - 2)) & 3) as usize;
        (msb - 1) * 4 + sub
    }
}

/// The smallest value that lands in bucket `index`.
pub fn bucket_lower(index: usize) -> u64 {
    if index < 4 {
        index as u64
    } else {
        let exp = index / 4 + 1;
        let sub = (index % 4) as u64;
        (1u64 << exp) + sub * (1u64 << (exp - 2))
    }
}

/// The largest value that lands in bucket `index`.
pub fn bucket_upper(index: usize) -> u64 {
    if index < 4 {
        index as u64
    } else if index + 1 >= HISTOGRAM_BUCKETS {
        u64::MAX
    } else {
        bucket_lower(index + 1) - 1
    }
}

/// A lock-free log-linear latency histogram (values are microseconds by
/// convention, but any `u64` works).
///
/// `record` touches four relaxed atomics — usable under any lock or on any
/// hot path.  Use [`Histogram::snapshot`] to extract a consistent-enough
/// view for quantiles (individual counters may lag each other by in-flight
/// records; totals are monotonic).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// An owned copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, serializable snapshot of a [`Histogram`].
///
/// The wire form carries the full bucket vector so scrapes merge exactly:
/// `merge(a, b)` is bucket-wise addition, and every quantile of the merge is
/// consistent with the quantiles of the parts (same bucket resolution).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket counts ([`HISTOGRAM_BUCKETS`] entries; see
    /// [`bucket_lower`]/[`bucket_upper`] for the bucket bounds).
    pub buckets: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping, matching the atomic accumulator).
    pub sum: u64,
    /// Largest recorded value (exact, not bucket-quantized).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one value into an owned snapshot (single-threaded use, e.g.
    /// loadgen's per-run latency accounting).
    pub fn record(&mut self, value: u64) {
        if self.buckets.len() < HISTOGRAM_BUCKETS {
            self.buckets.resize(HISTOGRAM_BUCKETS, 0);
        }
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.max = self.max.max(value);
    }

    /// Adds another snapshot's counts into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]`: the **upper bound** of the
    /// bucket containing the rank-`⌈q·count⌉` value (clamped to the exact
    /// observed max), so the reported quantile never understates a recorded
    /// value in its bucket.  Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    /// Mean of recorded values (exact, from the untruncated sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// What a flight-recorder event describes.  Encoded as a `u64` in the ring;
/// the exposition renders the stable lowercase names below.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceKind {
    /// A miss executed its query (key = signature, a = shard, b = µs).
    LookupExecuted,
    /// A stale value served after a failure (key, a = shard, b = µs).
    LookupStale,
    /// A lookup surfaced a terminal fetch error (key, a = shard, b = µs).
    LookupError,
    /// A retryable fetch failure scheduled a backoff (key, a = attempt,
    /// b = backoff µs).
    FetchRetry,
    /// A circuit breaker transitioned to open (a = shard). **Anomaly.**
    BreakerTrip,
    /// The server refused a request at admission (a = connection id,
    /// b = inflight). **Anomaly.**
    Shed,
    /// A session was evicted for exceeding the read deadline
    /// (a = connection id). **Anomaly.**
    SlowLorisEvict,
    /// A session opened (a = connection id).
    SessionOpen,
    /// A session closed (a = connection id, b = requests served).
    SessionClose,
}

impl TraceKind {
    fn code(self) -> u64 {
        match self {
            TraceKind::LookupExecuted => 1,
            TraceKind::LookupStale => 2,
            TraceKind::LookupError => 3,
            TraceKind::FetchRetry => 4,
            TraceKind::BreakerTrip => 5,
            TraceKind::Shed => 6,
            TraceKind::SlowLorisEvict => 7,
            TraceKind::SessionOpen => 8,
            TraceKind::SessionClose => 9,
        }
    }

    /// The stable exposition name for a stored kind code.
    fn name(code: u64) -> &'static str {
        match code {
            1 => "lookup_executed",
            2 => "lookup_stale",
            3 => "lookup_error",
            4 => "fetch_retry",
            5 => "breaker_trip",
            6 => "shed",
            7 => "slow_loris_evict",
            8 => "session_open",
            9 => "session_close",
            _ => "unknown",
        }
    }
}

/// One ring slot: a sequence word plus four payload words.
///
/// The sequence word is a per-slot seqlock: a writer stores `2·n + 1` (odd:
/// write in progress for generation `n`), fills the payload, then stores
/// `2·n + 2` (even: generation `n` complete).  Readers accept a slot only
/// when they observe the *same even* sequence before and after reading the
/// payload.  No waiting in either direction — a torn slot is simply skipped.
#[derive(Debug)]
struct TraceSlot {
    seq: AtomicU64,
    ts_us: AtomicU64,
    kind: AtomicU64,
    key: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl TraceSlot {
    fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            ts_us: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            key: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// A bounded, always-on ring of recent structured events.
///
/// Writers pay one `fetch_add` plus five relaxed stores and two
/// release stores; they never block and never allocate.  [`dump`] walks the
/// ring without stopping writers; a slot overwritten mid-read fails its
/// sequence check and is dropped from the dump.  The protocol is exact
/// unless a single write is straddled by a **full ring wrap**
/// ([`TRACE_RING_SLOTS`] subsequent events while one store sequence is in
/// flight), which the dump tolerates by design — this is a diagnostic
/// recorder, not a transport.
///
/// [`dump`]: FlightRecorder::dump
#[derive(Debug)]
pub struct FlightRecorder {
    cursor: AtomicU64,
    slots: Box<[TraceSlot]>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// Creates an empty ring of [`TRACE_RING_SLOTS`] slots.
    pub fn new() -> Self {
        Self {
            cursor: AtomicU64::new(0),
            slots: (0..TRACE_RING_SLOTS).map(|_| TraceSlot::new()).collect(),
        }
    }

    /// Appends one event (lock-free, wait-free).
    pub fn record(&self, kind: TraceKind, key: u64, a: u64, b: u64) {
        let index = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(index as usize) % self.slots.len()];
        // Odd marks the write in progress; release orders it before the
        // payload stores for any reader that acquires it.
        slot.seq.store(2 * index + 1, Ordering::Release);
        slot.ts_us.store(now_us(), Ordering::Relaxed);
        slot.kind.store(kind.code(), Ordering::Relaxed);
        slot.key.store(key, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        // Even publishes generation `index`; release orders the payload
        // before it.
        slot.seq.store(2 * index + 2, Ordering::Release);
    }

    /// Total events ever recorded (ring writes, including overwritten ones).
    pub fn events_recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Snapshots the ring: consistent slots only, oldest first.
    pub fn dump(&self) -> TraceDump {
        let mut events = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue; // never written, or write in progress
            }
            let ts_us = slot.ts_us.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let key = slot.key.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            let after = slot.seq.load(Ordering::Acquire);
            if before != after {
                continue; // overwritten while reading
            }
            events.push(TraceEvent {
                seq: before / 2 - 1,
                ts_us,
                kind: TraceKind::name(kind).to_string(),
                key,
                a,
                b,
            });
        }
        events.sort_by_key(|event| event.seq);
        TraceDump {
            schema: METRICS_SCHEMA_VERSION,
            recorded: self.events_recorded(),
            events,
        }
    }
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Global event number (monotonic across the process).
    pub seq: u64,
    /// Microseconds since process start.
    pub ts_us: u64,
    /// Stable event name (see [`TraceKind`]).
    pub kind: String,
    /// Event subject: query signature for engine events, zero otherwise.
    pub key: u64,
    /// First detail word (shard index, connection id, attempt — per kind).
    pub a: u64,
    /// Second detail word (latency µs, backoff µs, counts — per kind).
    pub b: u64,
}

/// A serializable snapshot of the flight-recorder ring (the `TRACE_DUMP`
/// response body).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceDump {
    /// Exposition schema version ([`METRICS_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Total events recorded process-wide (≥ `events.len()`; the excess was
    /// overwritten in the ring).
    pub recorded: u64,
    /// The surviving events, oldest first.
    pub events: Vec<TraceEvent>,
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

/// The process-global telemetry registry: every counter, gauge and
/// histogram the engine, runtime and server report, plus the flight
/// recorder.  Obtain it with [`global()`]; all members are lock-free.
///
/// Tests share the process global — assertions on it must be *delta*-based
/// (counters moved), never exact.
#[derive(Debug)]
pub struct Telemetry {
    /// Lookup latency for cache hits (front-door entry to return), µs.
    pub lookup_hit_us: Histogram,
    /// Lookup latency for misses that executed their query, µs.
    pub lookup_executed_us: Histogram,
    /// Lookup latency for references coalesced onto another session's
    /// in-flight execution, µs.
    pub lookup_coalesced_us: Histogram,
    /// Lookup latency for stale (last-known-good) serves, µs.
    pub lookup_stale_us: Histogram,
    /// Lookup latency for references ending in a terminal fetch error, µs.
    pub lookup_error_us: Histogram,
    /// Latency of individual fetch attempts (each retry records once), µs.
    pub fetch_attempt_us: Histogram,
    /// Time a coalescing waiter spent suspended on a single-flight cell, µs.
    pub singleflight_wait_us: Histogram,
    /// Duration of individual task polls on runtime workers, µs.
    pub task_poll_us: Histogram,
    /// How late timers fire relative to their deadline, µs.
    pub timer_lag_us: Histogram,
    /// Time a session spent awaiting request bytes beyond the first poll
    /// (read stalls), µs.
    pub session_read_stall_us: Histogram,
    /// Time a session spent flushing response bytes to a slow peer, µs.
    pub session_write_stall_us: Histogram,
    /// Fetch retries scheduled after retryable failures.
    pub fetch_retries: Counter,
    /// Circuit-breaker state transitions (all kinds).
    pub breaker_transitions: Counter,
    /// Circuit-breaker transitions *to open* specifically.
    pub breaker_trips: Counter,
    /// Memoized-failure (negative cache) hits.
    pub negative_hits: Counter,
    /// Cache evictions across all shards.
    pub evictions: Counter,
    /// Requests refused at admission control.
    pub sheds: Counter,
    /// Sessions evicted by the read-deadline (slow-loris) guard.
    pub slow_loris_evictions: Counter,
    /// Task polls at or above [`LONG_POLL_THRESHOLD_US`].
    pub long_polls: Counter,
    /// Times the IO reactor returned from `epoll_wait` with events.
    pub reactor_wakeups: Counter,
    /// Automatic anomaly dumps emitted (rate-limited).
    pub anomaly_dumps: Counter,
    /// Number of engine shards feeding the occupancy gauges.
    pub shard_count: Gauge,
    /// The flight recorder.
    pub recorder: FlightRecorder,
    shard_used: [Gauge; MAX_SHARD_GAUGES],
    last_anomaly_dump_us: AtomicU64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Creates a fresh registry (tests; production uses [`global()`]).
    pub fn new() -> Self {
        Self {
            lookup_hit_us: Histogram::new(),
            lookup_executed_us: Histogram::new(),
            lookup_coalesced_us: Histogram::new(),
            lookup_stale_us: Histogram::new(),
            lookup_error_us: Histogram::new(),
            fetch_attempt_us: Histogram::new(),
            singleflight_wait_us: Histogram::new(),
            task_poll_us: Histogram::new(),
            timer_lag_us: Histogram::new(),
            session_read_stall_us: Histogram::new(),
            session_write_stall_us: Histogram::new(),
            fetch_retries: Counter::new(),
            breaker_transitions: Counter::new(),
            breaker_trips: Counter::new(),
            negative_hits: Counter::new(),
            evictions: Counter::new(),
            sheds: Counter::new(),
            slow_loris_evictions: Counter::new(),
            long_polls: Counter::new(),
            reactor_wakeups: Counter::new(),
            anomaly_dumps: Counter::new(),
            shard_count: Gauge::new(),
            recorder: FlightRecorder::new(),
            shard_used: [const {
                Gauge {
                    value: AtomicU64::new(0),
                }
            }; MAX_SHARD_GAUGES],
            last_anomaly_dump_us: AtomicU64::new(0),
        }
    }

    /// Sets the occupancy gauge for shard `index` (clamped to the gauge
    /// array) to `used_bytes`.
    pub fn set_shard_used(&self, index: usize, used_bytes: u64) {
        self.shard_used[index.min(MAX_SHARD_GAUGES - 1)].set(used_bytes);
    }

    /// The occupancy gauge for shard `index` (clamped).
    pub fn shard_used(&self, index: usize) -> u64 {
        self.shard_used[index.min(MAX_SHARD_GAUGES - 1)].get()
    }

    /// Records a lookup latency into the histogram for `outcome_name`
    /// (`"hit"`, `"executed"`, `"coalesced"`, `"stale"`, `"error"`).
    /// Unknown names are ignored.
    pub fn record_lookup(&self, outcome_name: &str, micros: u64) {
        match outcome_name {
            "hit" => self.lookup_hit_us.record(micros),
            "executed" => self.lookup_executed_us.record(micros),
            "coalesced" => self.lookup_coalesced_us.record(micros),
            "stale" => self.lookup_stale_us.record(micros),
            "error" => self.lookup_error_us.record(micros),
            _ => {}
        }
    }

    /// Records an event that doubles as an **anomaly**: appends it to the
    /// flight recorder and, at most once per 5 s, emits a one-line summary
    /// of the recorder state to stderr so post-hoc logs show what led up to
    /// the trip even if nobody scrapes `TRACE_DUMP` in time.
    pub fn anomaly(&self, kind: TraceKind, key: u64, a: u64, b: u64) {
        self.recorder.record(kind, key, a, b);
        let now = now_us();
        let last = self.last_anomaly_dump_us.load(Ordering::Relaxed);
        if now.saturating_sub(last) < ANOMALY_DUMP_INTERVAL_US {
            return;
        }
        if self
            .last_anomaly_dump_us
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return; // another thread is dumping this window
        }
        self.anomaly_dumps.incr();
        eprintln!(
            "telemetry: anomaly {} key={key:#018x} a={a} b={b} — ring has {} events \
             (sheds={} breaker_trips={} slow_loris={} retries={})",
            TraceKind::name(kind.code()),
            self.recorder.events_recorded(),
            self.sheds.get(),
            self.breaker_trips.get(),
            self.slow_loris_evictions.get(),
            self.fetch_retries.get(),
        );
    }

    /// Assembles the versioned JSON exposition.  Callers with runtime or
    /// server context (steals, parks, queue depth, inflight) add their
    /// entries to the returned maps before serializing.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = BTreeMap::new();
        let mut insert = |name: &str, value: u64| {
            counters.insert(name.to_string(), value);
        };
        insert("engine.fetch.retries", self.fetch_retries.get());
        insert("engine.breaker.transitions", self.breaker_transitions.get());
        insert("engine.breaker.trips", self.breaker_trips.get());
        insert("engine.negative_hits", self.negative_hits.get());
        insert("engine.evictions", self.evictions.get());
        insert("server.sheds", self.sheds.get());
        insert(
            "server.slow_loris_evictions",
            self.slow_loris_evictions.get(),
        );
        insert("runtime.long_polls", self.long_polls.get());
        insert("runtime.reactor.wakeups", self.reactor_wakeups.get());
        insert("telemetry.anomaly_dumps", self.anomaly_dumps.get());
        insert("telemetry.trace_events", self.recorder.events_recorded());

        let mut gauges = BTreeMap::new();
        let shards = self.shard_count.get().min(MAX_SHARD_GAUGES as u64);
        gauges.insert("engine.shard_count".to_string(), self.shard_count.get());
        for index in 0..shards as usize {
            gauges.insert(
                format!("engine.shard.{index:02}.used_bytes"),
                self.shard_used[index].get(),
            );
        }

        let mut histograms = BTreeMap::new();
        let mut hist = |name: &str, histogram: &Histogram| {
            histograms.insert(name.to_string(), histogram.snapshot());
        };
        hist("engine.lookup.hit_us", &self.lookup_hit_us);
        hist("engine.lookup.executed_us", &self.lookup_executed_us);
        hist("engine.lookup.coalesced_us", &self.lookup_coalesced_us);
        hist("engine.lookup.stale_us", &self.lookup_stale_us);
        hist("engine.lookup.error_us", &self.lookup_error_us);
        hist("engine.fetch.attempt_us", &self.fetch_attempt_us);
        hist("engine.singleflight.wait_us", &self.singleflight_wait_us);
        hist("runtime.task.poll_us", &self.task_poll_us);
        hist("runtime.timer.lag_us", &self.timer_lag_us);
        hist("server.session.read_stall_us", &self.session_read_stall_us);
        hist(
            "server.session.write_stall_us",
            &self.session_write_stall_us,
        );

        MetricsSnapshot {
            schema: METRICS_SCHEMA_VERSION,
            uptime_us: now_us(),
            counters,
            gauges,
            histograms,
        }
    }
}

/// The versioned METRICS exposition: three flat name → value maps plus the
/// schema version and process uptime.  Serialized as JSON on the wire; see
/// OBSERVABILITY.md for the full metric catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Exposition schema version ([`METRICS_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Microseconds since process start at snapshot time.
    pub uptime_us: u64,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Instantaneous values.
    pub gauges: BTreeMap<String, u64>,
    /// Latency histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The named counter, or zero when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge, or zero when absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }
}

/// The process-global registry.
pub fn global() -> &'static Telemetry {
    static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
    GLOBAL.get_or_init(Telemetry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_bounds_are_contiguous() {
        assert_eq!(bucket_lower(0), 0);
        for index in 0..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(
                bucket_upper(index) + 1,
                bucket_lower(index + 1),
                "gap or overlap at bucket {index}"
            );
        }
        assert_eq!(bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn bucket_index_small_values_are_exact() {
        for value in 0u64..4 {
            let index = bucket_index(value);
            assert_eq!(bucket_lower(index), value);
            assert_eq!(bucket_upper(index), value);
        }
    }

    #[test]
    fn bucket_width_stays_under_quarter() {
        for index in 4..HISTOGRAM_BUCKETS - 1 {
            let lower = bucket_lower(index);
            let width = bucket_upper(index) - lower + 1;
            assert!(
                width * 4 <= lower,
                "bucket {index}: width {width} exceeds 25% of lower bound {lower}"
            );
        }
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let histogram = Histogram::new();
        for value in 1..=100u64 {
            histogram.record(value);
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, 100);
        assert_eq!(snapshot.max, 100);
        // p100 is the exact max; lower quantiles are bucket upper bounds,
        // within 25% above the exact rank value.
        assert_eq!(snapshot.quantile(1.0), 100);
        let p50 = snapshot.quantile(0.5);
        assert!((50..=63).contains(&p50), "p50 = {p50}");
        let p99 = snapshot.quantile(0.99);
        assert!((99..=127).contains(&p99), "p99 = {p99}");
        assert!((snapshot.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_quantiles_are_zero() {
        let snapshot = Histogram::new().snapshot();
        assert_eq!(snapshot.quantile(0.5), 0);
        assert_eq!(snapshot.quantile(1.0), 0);
        assert_eq!(snapshot.mean(), 0.0);
    }

    #[test]
    fn snapshot_record_matches_atomic_record() {
        let histogram = Histogram::new();
        let mut owned = HistogramSnapshot::empty();
        for value in [0, 1, 5, 17, 1000, 123_456, u64::MAX] {
            histogram.record(value);
            owned.record(value);
        }
        assert_eq!(histogram.snapshot(), owned);
    }

    #[test]
    fn metrics_snapshot_json_round_trips_exactly() {
        let telemetry = Telemetry::new();
        telemetry.lookup_hit_us.record(42);
        telemetry.lookup_hit_us.record(4242);
        telemetry.fetch_retries.add(7);
        telemetry.shard_count.set(2);
        telemetry.set_shard_used(0, 1024);
        telemetry.set_shard_used(1, 2048);
        let snapshot = telemetry.snapshot();
        let json = serde_json::to_string(&snapshot).expect("serialize");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(snapshot, back);
        assert_eq!(back.schema, METRICS_SCHEMA_VERSION);
        assert_eq!(back.counter("engine.fetch.retries"), 7);
        assert_eq!(back.gauge("engine.shard.01.used_bytes"), 2048);
        assert_eq!(
            back.histogram("engine.lookup.hit_us").map(|h| h.count),
            Some(2)
        );
    }

    #[test]
    fn trace_dump_json_round_trips_exactly() {
        let recorder = FlightRecorder::new();
        recorder.record(TraceKind::LookupExecuted, 0xabcd, 3, 1500);
        recorder.record(TraceKind::BreakerTrip, 0xabcd, 3, 0);
        let dump = recorder.dump();
        assert_eq!(dump.events.len(), 2);
        assert_eq!(dump.events[0].kind, "lookup_executed");
        assert_eq!(dump.events[1].kind, "breaker_trip");
        let json = serde_json::to_string(&dump).expect("serialize");
        let back: TraceDump = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(dump, back);
    }

    #[test]
    fn recorder_ring_keeps_newest_events() {
        let recorder = FlightRecorder::new();
        let total = (TRACE_RING_SLOTS + 100) as u64;
        for index in 0..total {
            recorder.record(TraceKind::SessionOpen, index, 0, 0);
        }
        let dump = recorder.dump();
        assert_eq!(dump.recorded, total);
        assert_eq!(dump.events.len(), TRACE_RING_SLOTS);
        // Oldest surviving event is exactly `total - SLOTS`.
        assert_eq!(
            dump.events.first().map(|e| e.seq),
            Some(total - TRACE_RING_SLOTS as u64)
        );
        assert_eq!(dump.events.last().map(|e| e.seq), Some(total - 1));
        // Events come out in recording order.
        for window in dump.events.windows(2) {
            assert!(window[0].seq < window[1].seq);
        }
    }

    #[test]
    fn recorder_is_consistent_under_concurrent_writers() {
        use std::sync::Arc;
        let recorder = Arc::new(FlightRecorder::new());
        let writers: Vec<_> = (0..4)
            .map(|writer| {
                let recorder = Arc::clone(&recorder);
                std::thread::spawn(move || {
                    for index in 0..2000u64 {
                        recorder.record(TraceKind::SessionClose, writer, index, index * 2);
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            let dump = recorder.dump();
            for event in &dump.events {
                // Payload invariant: b is always 2·a for these writers — a
                // torn slot that slipped the seqlock would break it.
                assert_eq!(event.b, event.a * 2, "torn slot escaped the seqlock");
            }
        }
        for writer in writers {
            writer.join().expect("writer");
        }
        assert_eq!(recorder.events_recorded(), 8000);
    }

    #[test]
    fn global_registry_is_shared_and_lock_free_to_touch() {
        let before = global().long_polls.get();
        global().long_polls.incr();
        assert!(global().long_polls.get() > before);
    }

    #[test]
    fn anomaly_rate_limit_allows_one_dump_per_window() {
        let telemetry = Telemetry::new();
        for _ in 0..10 {
            telemetry.anomaly(TraceKind::Shed, 0, 1, 2);
        }
        // All ten events land in the ring; at most one dump fires (the
        // first; now_us() cannot advance 5 s during this loop). The first
        // call may also be suppressed when the process-epoch clock is still
        // inside the initial window.
        assert_eq!(telemetry.recorder.events_recorded(), 10);
        assert!(telemetry.anomaly_dumps.get() <= 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn recorded_values_stay_within_their_bucket_bounds(value in 0u64..u64::MAX) {
            let index = bucket_index(value);
            prop_assert!(index < HISTOGRAM_BUCKETS);
            prop_assert!(bucket_lower(index) <= value);
            prop_assert!(value <= bucket_upper(index));
        }

        #[test]
        fn quantile_never_understates_any_recorded_value_rank(
            values in proptest::collection::vec(0u64..10_000_000, 1..200)
        ) {
            let mut snapshot = HistogramSnapshot::empty();
            for &value in &values {
                snapshot.record(value);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            // p100 equals the exact max.
            prop_assert_eq!(snapshot.quantile(1.0), *sorted.last().unwrap());
            // Every quantile is >= the exact rank value (upper-bound
            // reporting) and within one bucket width above it.
            for &q in &[0.5, 0.95, 0.99] {
                let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
                let exact = sorted[rank];
                let reported = snapshot.quantile(q);
                prop_assert!(reported >= exact, "q={} reported {} < exact {}", q, reported, exact);
                prop_assert!(reported <= bucket_upper(bucket_index(exact)),
                    "q={} reported {} above exact value's bucket bound", q, reported);
            }
        }

        #[test]
        fn merge_quantiles_match_recording_into_one(
            left in proptest::collection::vec(0u64..1_000_000, 0..100),
            right in proptest::collection::vec(0u64..1_000_000, 0..100)
        ) {
            let mut a = HistogramSnapshot::empty();
            for &value in &left {
                a.record(value);
            }
            let mut b = HistogramSnapshot::empty();
            for &value in &right {
                b.record(value);
            }
            let mut combined = HistogramSnapshot::empty();
            for &value in left.iter().chain(&right) {
                combined.record(value);
            }
            a.merge(&b);
            prop_assert_eq!(&a, &combined);
            for &q in &[0.0, 0.5, 0.95, 0.99, 1.0] {
                prop_assert_eq!(a.quantile(q), combined.quantile(q));
            }
        }
    }
}
