//! The interleaving-explorer front end: runs every built-in concurrency
//! model under the controlled scheduler and fails (exit 1) if any schedule
//! deadlocks, loses a wakeup, or violates a model invariant.
//!
//! Usage:
//!
//! ```text
//! cargo run -p watchman-core --bin checker            # full budget
//! cargo run -p watchman-core --bin checker -- --quick # CI smoke budget
//! ```
//!
//! The self-test model (two threads taking two locks in opposite order) is
//! *expected* to deadlock; the run fails if the explorer does **not** find
//! it, proving deadlock detection works before the clean results of the
//! real models are trusted.

use watchman_core::checker::models::{
    CircuitBreakerModel, InvertedLockOrderModel, ReactorRegistrationModel, RebalanceModel,
    RuntimeDropModel, SingleFlightModel, WorkStealingQueueModel,
};
use watchman_core::checker::{explore, Model};

fn main() {
    let quick = std::env::args().any(|arg| arg == "--quick");
    let budget = if quick { 150 } else { 1_500 };
    let models: [&dyn Model; 6] = [
        &SingleFlightModel,
        &RuntimeDropModel,
        &RebalanceModel,
        &ReactorRegistrationModel,
        &WorkStealingQueueModel,
        &CircuitBreakerModel,
    ];

    let mut total_schedules = 0;
    let mut failed = false;
    for model in models {
        let exploration = explore(model, budget);
        total_schedules += exploration.schedules;
        println!("{}", exploration.summary());
        if let Some((schedule, message)) = exploration.violations.first() {
            println!("  FIRST VIOLATION: {message}");
            println!("  replay schedule: {schedule:?}");
            failed = true;
        }
    }

    // Prove the detector detects: the inverted-order model must deadlock.
    let self_test = explore(&InvertedLockOrderModel, budget);
    total_schedules += self_test.schedules;
    let found_deadlock = self_test
        .violations
        .iter()
        .any(|(_, message)| message.contains("deadlock"));
    println!(
        "{} — {}",
        self_test.summary(),
        if found_deadlock {
            "detector self-test passed"
        } else {
            "SELF-TEST FAILED: seeded deadlock not found"
        }
    );
    failed |= !found_deadlock;

    println!("total: {total_schedules} distinct schedules explored");
    if failed {
        std::process::exit(1);
    }
}
