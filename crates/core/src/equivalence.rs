//! Limited query-equivalence testing (paper §3 and §6).
//!
//! WATCHMAN's lookup uses an *exact* query-ID match: two syntactically
//! different but semantically equivalent queries occupy separate cache
//! entries.  The paper notes that general query equivalence is NP-hard and
//! that existing rewrite-based tests for aggregate queries are too expensive,
//! and lists the development of a *simpler* method as future work.
//!
//! This module implements such a simple method: a **canonicalizer** that
//! removes the cheap, purely syntactic sources of mismatch —
//!
//! * letter case of keywords and identifiers (quoted literals are preserved),
//! * whitespace and delimiter runs,
//! * the order of top-level `AND` conjuncts in the `WHERE` clause and of
//!   entries in `GROUP BY` / `ORDER BY` lists (both are order-insensitive),
//!
//! and a [`canonical_key`] helper that produces a [`QueryKey`] from the
//! canonical form.  Queries that differ only in these aspects then map to the
//! same cache entry.  The method is sound for the query shapes the
//! warehousing workloads use (single-block select/aggregate queries); it
//! never merges queries whose canonical forms differ, so at worst it behaves
//! like the exact matcher.

use crate::key::{compress_query_text, QueryKey};

/// Lowercases SQL text outside of single-quoted string literals.
fn lowercase_outside_literals(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut in_literal = false;
    for ch in sql.chars() {
        if ch == '\'' {
            in_literal = !in_literal;
            out.push(ch);
        } else if in_literal {
            out.push(ch);
        } else {
            out.extend(ch.to_lowercase());
        }
    }
    out
}

/// Splits a clause on a top-level separator, respecting parentheses and
/// string literals.
fn split_top_level<'a>(text: &'a str, separator: &str) -> Vec<&'a str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut in_literal = false;
    let mut start = 0usize;
    let bytes = text.as_bytes();
    let sep = separator.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\'' => in_literal = !in_literal,
            b'(' if !in_literal => depth += 1,
            b')' if !in_literal => depth = depth.saturating_sub(1),
            _ => {}
        }
        if !in_literal
            && depth == 0
            && i + sep.len() <= bytes.len()
            && bytes[i..i + sep.len()].eq_ignore_ascii_case(sep)
        {
            parts.push(text[start..i].trim());
            i += sep.len();
            start = i;
            continue;
        }
        i += 1;
    }
    parts.push(text[start..].trim());
    parts
}

/// Sorts the elements of an order-insensitive list clause (comma separated)
/// into a canonical order.
fn canonicalize_list(list: &str) -> String {
    let mut items: Vec<&str> = split_top_level(list, ",");
    items.sort_unstable();
    items.join(", ")
}

/// Sorts top-level `AND` conjuncts of a predicate into a canonical order.
fn canonicalize_conjunction(predicate: &str) -> String {
    let mut conjuncts: Vec<String> = split_top_level(predicate, " and ")
        .into_iter()
        .map(|c| c.split_whitespace().collect::<Vec<_>>().join(" "))
        .collect();
    conjuncts.sort_unstable();
    conjuncts.join(" and ")
}

/// Produces the canonical form of a single-block SQL query.
///
/// The canonical form lowercases everything outside string literals,
/// normalizes whitespace, orders `WHERE` conjuncts and orders the `GROUP BY`
/// and `ORDER BY` lists.  Queries whose canonical forms are equal are
/// considered equivalent for caching purposes.
pub fn canonicalize(sql: &str) -> String {
    let lowered = lowercase_outside_literals(sql);
    let collapsed = lowered.split_whitespace().collect::<Vec<_>>().join(" ");

    // Locate the top-level clauses.  This is a deliberately simple scanner:
    // if the query does not match the expected single-block shape, it is
    // returned in collapsed form (still a sound exact-match key).
    let clause_markers = [" where ", " group by ", " order by ", " having "];
    let mut boundaries: Vec<(usize, &str)> = Vec::new();
    for marker in clause_markers {
        let mut offset = 0;
        while let Some(pos) = collapsed[offset..].find(marker) {
            let absolute = offset + pos;
            // Only treat it as a clause boundary at parenthesis depth zero.
            let depth = collapsed[..absolute].matches('(').count() as i64
                - collapsed[..absolute].matches(')').count() as i64;
            let literal_quotes = collapsed[..absolute].matches('\'').count();
            if depth == 0 && literal_quotes % 2 == 0 {
                boundaries.push((absolute, marker));
                break;
            }
            offset = absolute + marker.len();
        }
    }
    boundaries.sort_by_key(|&(pos, _)| pos);

    if boundaries.is_empty() {
        return collapsed;
    }

    let mut out = String::with_capacity(collapsed.len());
    out.push_str(collapsed[..boundaries[0].0].trim());
    for (i, &(pos, marker)) in boundaries.iter().enumerate() {
        let body_start = pos + marker.len();
        let body_end = boundaries.get(i + 1).map_or(collapsed.len(), |&(p, _)| p);
        let body = collapsed[body_start..body_end].trim();
        let canonical_body = match marker {
            " where " | " having " => canonicalize_conjunction(body),
            " group by " | " order by " => canonicalize_list(body),
            _ => body.to_owned(),
        };
        out.push_str(marker);
        out.push_str(&canonical_body);
    }
    out
}

/// Whether two queries are equivalent under the canonicalizer.
pub fn queries_equivalent(a: &str, b: &str) -> bool {
    canonicalize(a) == canonicalize(b)
}

/// Builds a cache key from the canonical form of a query, so that
/// canonically-equivalent queries share one cache entry.
pub fn canonical_key(sql: &str) -> QueryKey {
    QueryKey::new(compress_query_text(&canonicalize(sql)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_and_whitespace_are_ignored() {
        assert!(queries_equivalent(
            "SELECT   sum(x)  FROM t WHERE a = 1",
            "select sum(X) from T where A = 1"
        ));
    }

    #[test]
    fn string_literals_keep_their_case() {
        assert!(!queries_equivalent(
            "SELECT * FROM t WHERE name = 'Alpha'",
            "SELECT * FROM t WHERE name = 'alpha'"
        ));
        let canonical = canonicalize("SELECT * FROM t WHERE name = 'Alpha'");
        assert!(canonical.contains("'Alpha'"));
    }

    #[test]
    fn where_conjunct_order_is_irrelevant() {
        assert!(queries_equivalent(
            "SELECT count(*) FROM bench WHERE k2 = 1 AND k10 = 3 AND k100 < 41",
            "SELECT count(*) FROM bench WHERE k100 < 41 AND k2 = 1 AND k10 = 3"
        ));
    }

    #[test]
    fn group_by_order_is_irrelevant() {
        assert!(queries_equivalent(
            "SELECT a, b, sum(c) FROM t GROUP BY a, b",
            "SELECT a, b, sum(c) FROM t GROUP BY b, a"
        ));
    }

    #[test]
    fn different_predicates_are_not_merged() {
        assert!(!queries_equivalent(
            "SELECT count(*) FROM bench WHERE k2 = 1",
            "SELECT count(*) FROM bench WHERE k2 = 2"
        ));
        assert!(!queries_equivalent(
            "SELECT sum(a) FROM t",
            "SELECT sum(b) FROM t"
        ));
    }

    #[test]
    fn or_disjuncts_are_not_reordered() {
        // Only AND conjuncts are order-insensitive at this level of the
        // canonicalizer; OR expressions are left untouched (conservative).
        let a = "SELECT * FROM t WHERE a = 1 OR b = 2";
        let b = "SELECT * FROM t WHERE b = 2 OR a = 1";
        assert!(!queries_equivalent(a, b));
        assert!(queries_equivalent(
            a,
            "select * from t where A = 1 or B = 2"
        ));
    }

    #[test]
    fn nested_parentheses_are_not_split() {
        assert!(queries_equivalent(
            "SELECT * FROM t WHERE (a = 1 AND b = 2) AND c = 3",
            "SELECT * FROM t WHERE c = 3 AND (a = 1 AND b = 2)"
        ));
        // The inner conjunction keeps its own order (conservative).
        assert!(!queries_equivalent(
            "SELECT * FROM t WHERE (a = 1 AND b = 2)",
            "SELECT * FROM t WHERE (b = 2 AND a = 1)"
        ));
    }

    #[test]
    fn canonical_keys_collide_exactly_when_equivalent() {
        let a = canonical_key("SELECT sum(x) FROM t WHERE p = 1 AND q = 2 GROUP BY g, h");
        let b = canonical_key("select SUM(x) from t where q = 2 and p = 1 group by h, g");
        let c = canonical_key("SELECT sum(x) FROM t WHERE p = 1 AND q = 3 GROUP BY g, h");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn queries_without_clauses_are_just_collapsed() {
        assert_eq!(canonicalize("SELECT  1"), "select 1");
        assert_eq!(canonicalize("  "), "");
    }

    #[test]
    fn having_clause_conjuncts_are_ordered() {
        assert!(queries_equivalent(
            "SELECT a, sum(b) FROM t GROUP BY a HAVING sum(b) > 10 AND count(*) > 2",
            "SELECT a, sum(b) FROM t GROUP BY a HAVING count(*) > 2 AND sum(b) > 10"
        ));
    }
}
