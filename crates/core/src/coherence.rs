//! Cache coherence support (paper §3).
//!
//! Data warehouses are updated infrequently, but updates still happen, and a
//! retrieved set computed before an update may no longer be correct
//! afterwards.  The paper delegates detection to the warehouse manager: "the
//! warehouse manager detects whether the update is relevant to the cache
//! content and modifies the retrieved sets that are affected by the update".
//!
//! This module provides the bookkeeping a warehouse manager needs to do that
//! efficiently: a [`DependencyIndex`] records, for every cached retrieved
//! set, which base relations its query read; when a relation is updated, the
//! index returns exactly the keys whose retrieved sets must be invalidated
//! (dropped and recomputed on next reference) or refreshed incrementally.

use crate::sync::{Mutex, MutexGuard};
use std::collections::{HashMap, HashSet};

use crate::engine::{CacheEvent, CacheObserver};
use crate::key::QueryKey;

/// Maps base relations to the cached queries that depend on them.
///
/// The index is policy-agnostic: it stores only query keys and relation
/// names.  The embedding application registers dependencies when a retrieved
/// set is admitted, unregisters them when it is evicted, and calls
/// [`DependencyIndex::affected_by`] / [`DependencyIndex::take_affected_by`]
/// when a relation is updated.
#[derive(Debug, Default, Clone)]
pub struct DependencyIndex {
    /// relation name → keys of cached sets that read it.
    by_relation: HashMap<String, HashSet<QueryKey>>,
    /// key → relations it reads (needed for unregistering).
    by_key: HashMap<QueryKey, HashSet<String>>,
}

impl DependencyIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked queries.
    pub fn tracked_queries(&self) -> usize {
        self.by_key.len()
    }

    /// Number of relations with at least one dependent query.
    pub fn tracked_relations(&self) -> usize {
        self.by_relation.len()
    }

    /// Registers that the retrieved set identified by `key` was computed from
    /// the given relations.  Re-registering a key replaces its dependencies.
    pub fn register<I, S>(&mut self, key: QueryKey, relations: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.unregister(&key);
        let mut set = HashSet::new();
        for relation in relations {
            let relation = relation.into();
            self.by_relation
                .entry(relation.clone())
                .or_default()
                .insert(key.clone());
            set.insert(relation);
        }
        self.by_key.insert(key, set);
    }

    /// Removes a query from the index (typically because its retrieved set
    /// was evicted).  Returns `true` if the key was tracked.
    pub fn unregister(&mut self, key: &QueryKey) -> bool {
        match self.by_key.remove(key) {
            None => false,
            Some(relations) => {
                for relation in relations {
                    if let Some(keys) = self.by_relation.get_mut(&relation) {
                        keys.remove(key);
                        if keys.is_empty() {
                            self.by_relation.remove(&relation);
                        }
                    }
                }
                true
            }
        }
    }

    /// The relations a tracked query depends on.
    pub fn dependencies_of(&self, key: &QueryKey) -> Option<&HashSet<String>> {
        self.by_key.get(key)
    }

    /// The keys of all cached sets that read the given relation.
    pub fn affected_by(&self, relation: &str) -> Vec<QueryKey> {
        self.by_relation
            .get(relation)
            .map(|keys| keys.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Removes and returns the keys affected by an update to `relation`.
    ///
    /// This is what a warehouse manager calls when it applies an update: the
    /// returned keys must be invalidated in (removed from) the cache.
    pub fn take_affected_by(&mut self, relation: &str) -> Vec<QueryKey> {
        let keys = self.affected_by(relation);
        for key in &keys {
            self.unregister(key);
        }
        keys
    }

    /// Clears the index.
    pub fn clear(&mut self) {
        self.by_relation.clear();
        self.by_key.clear();
    }
}

/// The outcome of applying a warehouse update through
/// [`invalidate_affected`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InvalidationReport {
    /// Keys that were tracked as dependent on the updated relation.
    pub affected: Vec<QueryKey>,
    /// The subset of `affected` that was actually resident in the cache and
    /// has been removed.
    pub invalidated: Vec<QueryKey>,
}

impl InvalidationReport {
    /// Whether the update invalidated anything.
    pub fn any_invalidated(&self) -> bool {
        !self.invalidated.is_empty()
    }
}

/// Invalidates every cached retrieved set that depends on `relation`.
///
/// `remove` is called for each affected key and should remove the entry from
/// the cache, returning `true` if it was resident (e.g.
/// [`crate::policy::lnc::LncCache::remove`]).
pub fn invalidate_affected<F>(
    index: &mut DependencyIndex,
    relation: &str,
    mut remove: F,
) -> InvalidationReport
where
    F: FnMut(&QueryKey) -> bool,
{
    let affected = index.take_affected_by(relation);
    let invalidated = affected.iter().filter(|key| remove(key)).cloned().collect();
    InvalidationReport {
        affected,
        invalidated,
    }
}

/// A [`CacheObserver`] that keeps a [`DependencyIndex`] synchronized with an
/// engine's contents.
///
/// On every admission the observer asks `resolver` which base relations the
/// query reads and registers them; evictions and invalidations unregister the
/// key.  Subscribe it at build time and the index never goes stale:
///
/// ```
/// use std::sync::Arc;
/// use watchman_core::coherence::DependencyObserver;
/// use watchman_core::engine::{PolicyKind, Watchman};
/// use watchman_core::prelude::*;
///
/// let deps = Arc::new(DependencyObserver::new(|key: &QueryKey| {
///     // A real front end would consult its query plans; the WATCHMAN paper's
///     // warehouse manager knows each query's base relations.
///     if key.text().contains("lineitem") { vec!["LINEITEM".to_owned()] } else { vec![] }
/// }));
/// let engine: Watchman<SizedPayload> = Watchman::builder()
///     .policy(PolicyKind::LNC_RA)
///     .capacity_bytes(1 << 20)
///     .observer(deps.clone())
///     .build();
///
/// let key = QueryKey::from_raw_query("SELECT sum(price) FROM lineitem");
/// engine.insert(key.clone(), SizedPayload::new(64), ExecutionCost::from_blocks(100), Timestamp::from_secs(1));
/// assert_eq!(deps.affected_by("LINEITEM"), vec![key.clone()]);
///
/// // An update lands on LINEITEM: invalidate the dependents.
/// let report = deps.apply_update(&engine, "LINEITEM");
/// assert_eq!(report.invalidated, vec![key.clone()]);
/// assert!(!engine.contains(&key));
/// ```
pub struct DependencyObserver<F> {
    index: Mutex<DependencyIndex>,
    resolver: F,
}

impl<F> DependencyObserver<F>
where
    F: Fn(&QueryKey) -> Vec<String> + Send + Sync,
{
    /// Creates an observer that resolves a query's base relations with
    /// `resolver` at admission time.
    pub fn new(resolver: F) -> Self {
        DependencyObserver {
            index: Mutex::new(DependencyIndex::new()),
            resolver,
        }
    }

    fn lock(&self) -> MutexGuard<'_, DependencyIndex> {
        self.index.lock()
    }

    /// Runs a closure with access to the tracked index.
    pub fn with_index<R>(&self, f: impl FnOnce(&DependencyIndex) -> R) -> R {
        f(&self.lock())
    }

    /// The keys of all tracked sets that read the given relation.
    pub fn affected_by(&self, relation: &str) -> Vec<QueryKey> {
        self.lock().affected_by(relation)
    }

    /// Applies a warehouse update to `relation`: invalidates every dependent
    /// cached set in `engine` and returns the report.
    ///
    /// The index entries for the affected keys are taken out first and the
    /// engine's resulting `Invalidated` events then find nothing left to
    /// unregister, so the lock is never held across the engine call.
    pub fn apply_update<V>(
        &self,
        engine: &crate::engine::Watchman<V>,
        relation: &str,
    ) -> InvalidationReport
    where
        V: crate::value::CachePayload + Send + Sync + 'static,
    {
        let affected = self.lock().take_affected_by(relation);
        let invalidated = affected
            .iter()
            .filter(|key| engine.invalidate(key))
            .cloned()
            .collect();
        InvalidationReport {
            affected,
            invalidated,
        }
    }
}

impl<F> CacheObserver for DependencyObserver<F>
where
    F: Fn(&QueryKey) -> Vec<String> + Send + Sync,
{
    fn on_cache_event(&self, event: &CacheEvent) {
        match event {
            CacheEvent::Admitted { key, .. } => {
                let relations = (self.resolver)(key);
                self.lock().register(key.clone(), relations);
            }
            CacheEvent::Evicted { key, .. } | CacheEvent::Invalidated { key, .. } => {
                self.lock().unregister(key);
            }
            CacheEvent::Rejected { .. } => {}
        }
    }
}

impl<F> std::fmt::Debug for DependencyObserver<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DependencyObserver").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Timestamp;
    use crate::policy::lnc::LncCache;
    use crate::policy::QueryCache;
    use crate::value::{ExecutionCost, SizedPayload};

    fn key(name: &str) -> QueryKey {
        QueryKey::new(name.to_owned())
    }

    #[test]
    fn register_and_lookup() {
        let mut index = DependencyIndex::new();
        index.register(key("q1"), ["LINEITEM", "ORDERS"]);
        index.register(key("q2"), ["ORDERS"]);
        assert_eq!(index.tracked_queries(), 2);
        assert_eq!(index.tracked_relations(), 2);
        let mut affected = index.affected_by("ORDERS");
        affected.sort();
        assert_eq!(affected, vec![key("q1"), key("q2")]);
        assert_eq!(index.affected_by("LINEITEM"), vec![key("q1")]);
        assert!(index.affected_by("PART").is_empty());
        assert_eq!(index.dependencies_of(&key("q1")).unwrap().len(), 2);
    }

    #[test]
    fn reregistering_replaces_dependencies() {
        let mut index = DependencyIndex::new();
        index.register(key("q"), ["A", "B"]);
        index.register(key("q"), ["C"]);
        assert!(index.affected_by("A").is_empty());
        assert_eq!(index.affected_by("C"), vec![key("q")]);
        assert_eq!(index.tracked_relations(), 1);
    }

    #[test]
    fn unregister_cleans_up_empty_relations() {
        let mut index = DependencyIndex::new();
        index.register(key("q"), ["A"]);
        assert!(index.unregister(&key("q")));
        assert!(!index.unregister(&key("q")));
        assert_eq!(index.tracked_relations(), 0);
        assert_eq!(index.tracked_queries(), 0);
    }

    #[test]
    fn take_affected_by_removes_from_index() {
        let mut index = DependencyIndex::new();
        index.register(key("q1"), ["A", "B"]);
        index.register(key("q2"), ["A"]);
        let taken = index.take_affected_by("A");
        assert_eq!(taken.len(), 2);
        assert_eq!(index.tracked_queries(), 0);
        assert!(index.affected_by("B").is_empty());
    }

    #[test]
    fn invalidate_affected_removes_resident_entries_from_the_cache() {
        let mut cache: LncCache<SizedPayload> = LncCache::lnc_ra(1 << 20);
        let mut index = DependencyIndex::new();
        let now = Timestamp::from_secs(1);

        for (name, relations) in [
            ("orders-summary", vec!["ORDERS", "LINEITEM"]),
            ("parts-summary", vec!["PART"]),
        ] {
            let k = key(name);
            cache.insert(
                k.clone(),
                SizedPayload::new(256),
                ExecutionCost::from_blocks(500),
                now,
            );
            index.register(k, relations);
        }
        assert_eq!(cache.len(), 2);

        // An update lands on LINEITEM: only the orders summary is affected.
        let report = invalidate_affected(&mut index, "LINEITEM", |k| cache.remove(k).is_some());
        assert!(report.any_invalidated());
        assert_eq!(report.affected, vec![key("orders-summary")]);
        assert_eq!(report.invalidated, vec![key("orders-summary")]);
        assert!(!cache.contains(&key("orders-summary")));
        assert!(cache.contains(&key("parts-summary")));

        // A second update to the same relation finds nothing left to do.
        let report = invalidate_affected(&mut index, "LINEITEM", |k| cache.remove(k).is_some());
        assert!(!report.any_invalidated());
        assert!(report.affected.is_empty());
    }

    #[test]
    fn invalidation_report_for_untracked_relation_is_empty() {
        let mut index = DependencyIndex::new();
        let report = invalidate_affected(&mut index, "NOWHERE", |_| true);
        assert!(report.affected.is_empty());
        assert!(!report.any_invalidated());
    }

    #[test]
    fn clear_resets_everything() {
        let mut index = DependencyIndex::new();
        index.register(key("q"), ["A"]);
        index.clear();
        assert_eq!(index.tracked_queries(), 0);
        assert_eq!(index.tracked_relations(), 0);
    }
}
