//! Reference history and reference-rate estimation (paper §2.1, Eq. 3).
//!
//! For every retrieved set `RSᵢ` WATCHMAN maintains the timestamps of the last
//! `K` references and estimates the average reference rate as
//!
//! ```text
//! λᵢ = K / (t − t_K)
//! ```
//!
//! where `t` is the current time and `t_K` is the `K`-th most recent
//! reference.  Including the *current* time in the denominator ages sets that
//! are no longer referenced.  When fewer than `K` samples are available the
//! maximal available number is used, but such sets are given higher eviction
//! priority by [`crate::policy::lnc`]'s victim selection.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::clock::Timestamp;

/// The sliding window of the last `K` reference timestamps to a retrieved set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReferenceHistory {
    /// Most recent reference last; never longer than `k`.
    times: VecDeque<Timestamp>,
    /// Window size `K` (≥ 1).
    k: usize,
    /// Total number of references ever recorded (may exceed `k`).
    total_references: u64,
}

impl ReferenceHistory {
    /// Creates an empty history with window size `k` (clamped to at least 1).
    pub fn new(k: usize) -> Self {
        let k = k.max(1);
        ReferenceHistory {
            times: VecDeque::with_capacity(k),
            k,
            total_references: 0,
        }
    }

    /// Creates a history containing a single reference at `now`.
    pub fn with_first_reference(k: usize, now: Timestamp) -> Self {
        let mut h = ReferenceHistory::new(k);
        h.record(now);
        h
    }

    /// The window size `K`.
    pub fn window(&self) -> usize {
        self.k
    }

    /// Records a reference at time `now`, dropping the oldest sample if the
    /// window is full.
    ///
    /// Timestamps are expected to be non-decreasing; an out-of-order sample is
    /// clamped to the most recent recorded time so that rate estimates remain
    /// non-negative.
    pub fn record(&mut self, now: Timestamp) {
        let now = match self.times.back() {
            Some(&last) => now.max(last),
            None => now,
        };
        if self.times.len() == self.k {
            self.times.pop_front();
        }
        self.times.push_back(now);
        self.total_references += 1;
    }

    /// Number of samples currently retained (`≤ K`).
    pub fn sample_count(&self) -> usize {
        self.times.len()
    }

    /// Total number of references ever recorded.
    pub fn total_references(&self) -> u64 {
        self.total_references
    }

    /// Whether no reference has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The most recent reference time, if any.
    pub fn last_reference(&self) -> Option<Timestamp> {
        self.times.back().copied()
    }

    /// The oldest retained reference time (`t_K` in Eq. 3), if any.
    pub fn oldest_reference(&self) -> Option<Timestamp> {
        self.times.front().copied()
    }

    /// Estimates the average reference rate `λᵢ` at time `now` (Eq. 3),
    /// using the maximal available number of samples.
    ///
    /// Returns `None` if no reference has been recorded.  When `now` equals
    /// the oldest sample (all samples and the estimation instant coincide),
    /// the elapsed time is clamped to one microsecond so the estimate stays
    /// finite; such a set is simply "maximally hot".
    pub fn rate(&self, now: Timestamp) -> Option<f64> {
        let oldest = self.oldest_reference()?;
        let now = now.max(self.last_reference().unwrap_or(oldest));
        let elapsed = now.saturating_since(oldest).max(1);
        Some(self.times.len() as f64 / elapsed as f64)
    }

    /// The number of bytes of metadata this history occupies (used when
    /// accounting for retained reference information).
    pub fn metadata_bytes(&self) -> u64 {
        (self.times.len() * std::mem::size_of::<Timestamp>()) as u64 + 16
    }

    /// Merges another history into this one, keeping the `K` most recent
    /// timestamps across both.  Used when a retrieved set is re-admitted and
    /// both a retained history and fresh references exist.
    pub fn merge(&mut self, other: &ReferenceHistory) {
        let mut all: Vec<Timestamp> = self
            .times
            .iter()
            .chain(other.times.iter())
            .copied()
            .collect();
        all.sort_unstable();
        let keep = all.len().saturating_sub(self.k);
        self.times.clear();
        self.times.extend(all.into_iter().skip(keep));
        self.total_references += other.total_references;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(us: u64) -> Timestamp {
        Timestamp::from_micros(us)
    }

    #[test]
    fn empty_history_has_no_rate() {
        let h = ReferenceHistory::new(2);
        assert!(h.is_empty());
        assert_eq!(h.rate(ts(100)), None);
        assert_eq!(h.last_reference(), None);
        assert_eq!(h.oldest_reference(), None);
    }

    #[test]
    fn window_is_clamped_to_at_least_one() {
        let h = ReferenceHistory::new(0);
        assert_eq!(h.window(), 1);
    }

    #[test]
    fn record_keeps_at_most_k_samples() {
        let mut h = ReferenceHistory::new(3);
        for i in 1..=10 {
            h.record(ts(i * 10));
        }
        assert_eq!(h.sample_count(), 3);
        assert_eq!(h.total_references(), 10);
        assert_eq!(h.oldest_reference(), Some(ts(80)));
        assert_eq!(h.last_reference(), Some(ts(100)));
    }

    #[test]
    fn rate_matches_equation_three() {
        // K = 2, references at t=100 and t=200, now = 300.
        // λ = 2 / (300 - 100) = 0.01 refs/us.
        let mut h = ReferenceHistory::new(2);
        h.record(ts(100));
        h.record(ts(200));
        let rate = h.rate(ts(300)).unwrap();
        assert!((rate - 0.01).abs() < 1e-12);
    }

    #[test]
    fn rate_uses_available_samples_when_fewer_than_k() {
        let mut h = ReferenceHistory::new(4);
        h.record(ts(50));
        // One sample at t=50, now=150: λ = 1 / 100.
        let rate = h.rate(ts(150)).unwrap();
        assert!((rate - 0.01).abs() < 1e-12);
    }

    #[test]
    fn rate_ages_with_time() {
        let mut h = ReferenceHistory::new(2);
        h.record(ts(100));
        h.record(ts(200));
        let early = h.rate(ts(250)).unwrap();
        let late = h.rate(ts(10_000)).unwrap();
        assert!(late < early, "rate must decay for unreferenced sets");
    }

    #[test]
    fn rate_is_finite_when_all_times_coincide() {
        let mut h = ReferenceHistory::new(3);
        h.record(ts(500));
        let rate = h.rate(ts(500)).unwrap();
        assert!(rate.is_finite());
        assert!(rate > 0.0);
    }

    #[test]
    fn out_of_order_reference_is_clamped() {
        let mut h = ReferenceHistory::new(3);
        h.record(ts(100));
        h.record(ts(50));
        assert_eq!(h.last_reference(), Some(ts(100)));
        assert!(h.rate(ts(100)).unwrap().is_finite());
    }

    #[test]
    fn rate_clamps_now_before_last_reference() {
        let mut h = ReferenceHistory::new(2);
        h.record(ts(100));
        h.record(ts(200));
        // Asking for the rate "before" the last reference must not panic or
        // produce a negative rate.
        let rate = h.rate(ts(150)).unwrap();
        assert!(rate > 0.0);
    }

    #[test]
    fn with_first_reference_has_one_sample() {
        let h = ReferenceHistory::with_first_reference(4, ts(10));
        assert_eq!(h.sample_count(), 1);
        assert_eq!(h.total_references(), 1);
    }

    #[test]
    fn merge_keeps_most_recent_k() {
        let mut a = ReferenceHistory::new(3);
        a.record(ts(10));
        a.record(ts(30));
        let mut b = ReferenceHistory::new(3);
        b.record(ts(20));
        b.record(ts(40));
        a.merge(&b);
        assert_eq!(a.sample_count(), 3);
        assert_eq!(a.oldest_reference(), Some(ts(20)));
        assert_eq!(a.last_reference(), Some(ts(40)));
        assert_eq!(a.total_references(), 4);
    }

    #[test]
    fn metadata_bytes_scales_with_samples() {
        let mut h = ReferenceHistory::new(8);
        let empty = h.metadata_bytes();
        h.record(ts(1));
        h.record(ts(2));
        assert!(h.metadata_bytes() > empty);
    }
}
