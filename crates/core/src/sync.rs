//! Instrumented synchronization primitives — the only place the workspace
//! touches `std::sync` locks.
//!
//! Every `Mutex`/`Condvar`/`RwLock` in `watchman-core` and `watchman-server`
//! goes through the wrappers in this module (the `analyzer` crate's
//! `raw-sync` rule enforces it).  The wrappers buy two things:
//!
//! 1. **One poisoned-lock policy.**  A lock whose holder panicked is
//!    *recovered*, not unwrapped: the guard is taken from the
//!    [`PoisonError`](std::sync::PoisonError), a process-wide counter is
//!    incremented ([`poison_recoveries`]) and a diagnostic naming the lock
//!    site is written to stderr once per process.  The engine's critical
//!    sections are written to keep their data structurally valid at every
//!    panic point (fetches and user observer callbacks run *outside* the
//!    locks wherever possible, and the panic paths are tested), so
//!    recovering is safe — and it means one panicking server session can
//!    never cascade poison-unwrap aborts across every other session that
//!    shares the engine, which is exactly what the pre-migration
//!    `.lock().unwrap()` sites in session paths would have done.
//!
//! 2. **Lock-order analysis under `--features lock-graph`.**  Normally the
//!    wrappers compile to zero-cost passthroughs (a newtype around the std
//!    primitive; the only extra code is the poison-recovery closure every
//!    call site already had).  With the `lock-graph` feature enabled, every
//!    acquisition records, per thread, the stack of locks currently held
//!    and folds the nesting into a global **lock-order graph**:
//!
//!    * each lock belongs to a *class* — the source location that created
//!      it (all shard locks are one class, all single-flight cells another);
//!    * holding class A while acquiring class B adds the edge A → B, with
//!      the first witnessing acquisition stack retained for the report;
//!    * a cycle among the recorded edges is a **potential deadlock** even if
//!      no run ever deadlocked — two threads taking the classes in opposite
//!      orders only have to collide once.  [`lock_graph::report`] runs the
//!      cycle detection and [`lock_graph::assert_clean`] turns any finding
//!      into a panic with both witness stacks, which is how the CI
//!      `lock-graph` test runs gate the repo;
//!    * *same-class* nesting (the rebalancer holding two shard locks at
//!      once) is legal only with declared **ranks** acquired in strictly
//!      ascending order — [`Mutex::with_rank`] is how the shard vector
//!      declares "index order".  An acquisition that holds a same-class
//!      lock of equal or higher rank is recorded as a rank violation;
//!    * the runtime's workers additionally flag any task poll entered while
//!      the polling thread holds an engine lock (**lock-held-across-poll**):
//!      a blocking fetch or a suspended task must never pin a shard or
//!      scheduler lock, or every other session on that lock serializes
//!      behind a multi-second warehouse scan.
//!
//! The acquisition checks are conservative and class-granular: they can
//! flag orders that today's code never executes concurrently, and that is
//! the point — see `CONCURRENCY.md` at the repo root for the documented
//! lock hierarchy this module enforces.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Process-wide count of poisoned-lock recoveries (see the module docs).
static POISON_RECOVERIES: AtomicU64 = AtomicU64::new(0);
/// Whether the one-time poison diagnostic has been emitted.
static POISON_REPORTED: AtomicBool = AtomicBool::new(false);

/// How many times any lock in the process recovered from poisoning (a
/// holder panicked while inside the critical section).  Zero in a healthy
/// process; a non-zero value means some panic unwound through a critical
/// section and the affected structure's panic-safety reasoning applies.
pub fn poison_recoveries() -> u64 {
    POISON_RECOVERIES.load(Ordering::Relaxed)
}

#[cold]
fn note_poison_recovery(site: &'static std::panic::Location<'static>) {
    POISON_RECOVERIES.fetch_add(1, Ordering::Relaxed);
    if !POISON_REPORTED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "watchman_core::sync: recovered a poisoned lock at {}:{} \
             (a holder panicked; state remains valid by construction — \
             further recoveries are counted but not reported)",
            site.file(),
            site.line()
        );
    }
}

#[cfg(feature = "lock-graph")]
mod instr_impl {
    //! The `lock-graph` instrumentation state: per-thread held-lock stacks
    //! and the global lock-order graph.  Internal bookkeeping deliberately
    //! uses raw `std::sync` primitives (this module is the allowed site) so
    //! instrumentation never re-enters itself.

    use std::collections::HashMap;
    use std::panic::Location;
    use std::sync::Mutex as StdMutex;

    /// A lock *class*: the source location that created the lock.  Every
    /// shard mutex is one class, every single-flight cell another.
    #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
    pub(super) struct ClassKey {
        pub file: &'static str,
        pub line: u32,
        pub column: u32,
    }

    impl ClassKey {
        pub(super) fn of(location: &'static Location<'static>) -> Self {
            ClassKey {
                file: location.file(),
                line: location.line(),
                column: location.column(),
            }
        }

        pub(super) fn label(&self) -> String {
            format!("{}:{}", self.file, self.line)
        }
    }

    /// One entry of a thread's held-lock stack.
    #[derive(Clone)]
    pub(super) struct Held {
        pub class: ClassKey,
        pub rank: Option<u32>,
        /// Where `.lock()` was called (not where the lock was created).
        pub acquired_at: &'static Location<'static>,
    }

    impl Held {
        fn describe(&self) -> String {
            match self.rank {
                Some(rank) => format!(
                    "{}[rank {}] (locked at {}:{})",
                    self.class.label(),
                    rank,
                    self.acquired_at.file(),
                    self.acquired_at.line()
                ),
                None => format!(
                    "{} (locked at {}:{})",
                    self.class.label(),
                    self.acquired_at.file(),
                    self.acquired_at.line()
                ),
            }
        }
    }

    /// The first witness recorded for a lock-order edge.
    #[derive(Clone, Debug)]
    pub struct EdgeWitness {
        /// The acquiring thread's name at witness time.
        pub thread: String,
        /// The held-lock stack, outermost first, at the moment the edge's
        /// target was acquired.
        pub held_stack: Vec<String>,
        /// Where the target lock was acquired.
        pub acquired: String,
    }

    #[derive(Default)]
    pub(super) struct Graph {
        /// Directed class edges: held → acquired, with the first witness.
        pub edges: HashMap<(ClassKey, ClassKey), EdgeWitness>,
        /// Same-class acquisitions violating the strict rank order.
        pub rank_violations: Vec<String>,
        /// Task polls entered with engine locks held.
        pub poll_violations: Vec<String>,
        /// Legal (strictly ascending) same-class nestings observed — lets
        /// tests assert a multi-lock code path actually executed.
        pub ranked_nestings: u64,
    }

    pub(super) static GRAPH: StdMutex<Option<Graph>> = StdMutex::new(None);

    thread_local! {
        pub(super) static HELD: std::cell::RefCell<Vec<Held>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }

    fn thread_label() -> String {
        let current = std::thread::current();
        current
            .name()
            .map_or_else(|| format!("{:?}", current.id()), str::to_owned)
    }

    pub(super) fn with_graph<R>(f: impl FnOnce(&mut Graph) -> R) -> R {
        let mut slot = GRAPH
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        f(slot.get_or_insert_with(Graph::default))
    }

    /// Records an acquisition: folds the current held stack into the graph,
    /// then pushes the new entry.  Called *after* the real lock succeeds.
    pub(super) fn on_acquire(
        class: ClassKey,
        rank: Option<u32>,
        acquired_at: &'static Location<'static>,
    ) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if !held.is_empty() {
                let stack: Vec<String> = held.iter().map(Held::describe).collect();
                let acquired = Held {
                    class,
                    rank,
                    acquired_at,
                };
                let acquired_desc = acquired.describe();
                with_graph(|graph| {
                    for h in held.iter() {
                        if h.class == class {
                            // Same-class nesting: legal only with declared
                            // ranks in strictly ascending order.
                            let ordered = matches!(
                                (h.rank, rank),
                                (Some(outer), Some(inner)) if outer < inner
                            );
                            if ordered {
                                graph.ranked_nestings += 1;
                            } else {
                                graph.rank_violations.push(format!(
                                    "same-class nesting out of rank order on {}: \
                                     acquired {} while holding [{}]",
                                    thread_label(),
                                    acquired_desc,
                                    stack.join(", ")
                                ));
                            }
                        } else {
                            graph
                                .edges
                                .entry((h.class, class))
                                .or_insert_with(|| EdgeWitness {
                                    thread: thread_label(),
                                    held_stack: stack.clone(),
                                    acquired: acquired_desc.clone(),
                                });
                        }
                    }
                });
            }
            held.push(Held {
                class,
                rank,
                acquired_at,
            });
        });
    }

    /// Pops the innermost held entry matching `class` (guards may be
    /// dropped out of LIFO order; search from the top).
    pub(super) fn on_release(class: ClassKey) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|h| h.class == class) {
                held.remove(pos);
            }
        });
    }

    /// Flags a task poll entered with engine locks held, ignoring the
    /// `exempt_innermost` most recent acquisitions (the runtime worker holds
    /// the task's own future-slot mutex while polling it, by design).
    pub fn note_task_poll(exempt_innermost: usize) {
        HELD.with(|held| {
            let held = held.borrow();
            let watched = held.len().saturating_sub(exempt_innermost);
            if watched == 0 {
                return;
            }
            let stack: Vec<String> = held[..watched].iter().map(Held::describe).collect();
            with_graph(|graph| {
                graph.poll_violations.push(format!(
                    "task polled on {} with locks held: [{}]",
                    thread_label(),
                    stack.join(", ")
                ));
            });
        });
    }

    /// Number of instrumented locks the current thread holds.
    pub fn locks_held_on_thread() -> usize {
        HELD.with(|held| held.borrow().len())
    }
}

#[cfg(feature = "lock-graph")]
pub use instr_impl::{locks_held_on_thread, note_task_poll};

/// A mutual-exclusion lock wrapping [`std::sync::Mutex`] with the module's
/// poison policy and (under `lock-graph`) lock-order recording.
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lock-graph")]
    class: instr_impl::ClassKey,
    #[cfg(feature = "lock-graph")]
    rank: Option<u32>,
    inner: std::sync::Mutex<T>,
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// The guard for a [`Mutex`].  Releases the lock (and, under `lock-graph`,
/// pops the thread's held-lock stack) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // Declared before `inner` so the held-stack pop precedes the real
    // unlock — the graph must never observe the lock as free while the
    // thread still holds it.
    #[cfg(feature = "lock-graph")]
    _held: HeldToken,
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// Held-stack bookkeeping for one acquisition; popping happens in `Drop`.
#[cfg(feature = "lock-graph")]
struct HeldToken {
    class: instr_impl::ClassKey,
}

#[cfg(feature = "lock-graph")]
impl Drop for HeldToken {
    fn drop(&mut self) {
        instr_impl::on_release(self.class);
    }
}

impl<T> Mutex<T> {
    /// Creates a lock.  Under `lock-graph` the *call site* becomes the
    /// lock's class in the lock-order graph.
    #[track_caller]
    pub fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "lock-graph")]
            class: instr_impl::ClassKey::of(std::panic::Location::caller()),
            #[cfg(feature = "lock-graph")]
            rank: None,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Creates a lock with a declared *rank* inside its class.  Locks of one
    /// class may be nested only in strictly ascending rank order — this is
    /// how the engine's shard vector declares "acquire in index order"
    /// (the discipline the rebalancer's two-lock transfer and the atomic
    /// `stats_snapshot` rely on).
    #[track_caller]
    pub fn with_rank(rank: u32, value: T) -> Self {
        #[cfg(not(feature = "lock-graph"))]
        let _ = rank;
        Mutex {
            #[cfg(feature = "lock-graph")]
            class: instr_impl::ClassKey::of(std::panic::Location::caller()),
            #[cfg(feature = "lock-graph")]
            rank: Some(rank),
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the thread until it is available.
    ///
    /// Poisoning is recovered, counted and reported per the module policy —
    /// the returned guard is always valid.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let site = std::panic::Location::caller();
        let inner = self.inner.lock().unwrap_or_else(|poisoned| {
            note_poison_recovery(site);
            poisoned.into_inner()
        });
        #[cfg(feature = "lock-graph")]
        instr_impl::on_acquire(self.class, self.rank, site);
        MutexGuard {
            #[cfg(feature = "lock-graph")]
            _held: HeldToken { class: self.class },
            inner,
        }
    }

    /// Acquires the lock only if it is free right now (poison recovered the
    /// same way as [`Mutex::lock`]); `None` if another thread holds it.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let site = std::panic::Location::caller();
        let inner = match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                note_poison_recovery(site);
                poisoned.into_inner()
            }
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "lock-graph")]
        instr_impl::on_acquire(self.class, self.rank, site);
        Some(MutexGuard {
            #[cfg(feature = "lock-graph")]
            _held: HeldToken { class: self.class },
            inner,
        })
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable paired with [`Mutex`], wrapping
/// [`std::sync::Condvar`].  Waits release the guard's held-stack entry for
/// their duration (the lock really is free while the thread sleeps) and
/// re-record the acquisition on wakeup.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Releases `guard` and blocks until notified, then reacquires.
    #[track_caller]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let site = std::panic::Location::caller();
        #[cfg(feature = "lock-graph")]
        let (class, inner) = {
            let MutexGuard { _held, inner } = guard;
            // `_held` drops here: the stack entry is popped for the wait.
            let class = _held.class;
            drop(_held);
            (class, inner)
        };
        #[cfg(not(feature = "lock-graph"))]
        let inner = guard.inner;
        let inner = self.inner.wait(inner).unwrap_or_else(|poisoned| {
            note_poison_recovery(site);
            poisoned.into_inner()
        });
        #[cfg(feature = "lock-graph")]
        instr_impl::on_acquire(class, None, site);
        MutexGuard {
            #[cfg(feature = "lock-graph")]
            _held: HeldToken { class },
            inner,
        }
    }

    /// Like [`Condvar::wait`], bounded by `timeout`.  The boolean reports
    /// whether the wait timed out.
    #[track_caller]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let site = std::panic::Location::caller();
        #[cfg(feature = "lock-graph")]
        let (class, inner) = {
            let MutexGuard { _held, inner } = guard;
            let class = _held.class;
            drop(_held);
            (class, inner)
        };
        #[cfg(not(feature = "lock-graph"))]
        let inner = guard.inner;
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|poisoned| {
                note_poison_recovery(site);
                poisoned.into_inner()
            });
        #[cfg(feature = "lock-graph")]
        instr_impl::on_acquire(class, None, site);
        (
            MutexGuard {
                #[cfg(feature = "lock-graph")]
                _held: HeldToken { class },
                inner,
            },
            result.timed_out(),
        )
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock wrapping [`std::sync::RwLock`] with the module's
/// poison policy and (under `lock-graph`) lock-order recording.  Read
/// acquisitions participate in the graph exactly like writes: a read-side
/// nesting can deadlock against a writer just as well.
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lock-graph")]
    class: instr_impl::ClassKey,
    #[cfg(feature = "lock-graph")]
    rank: Option<u32>,
    inner: std::sync::RwLock<T>,
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Default> Default for RwLock<T> {
    #[track_caller]
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// The shared-read guard for an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-graph")]
    _held: HeldToken,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// The exclusive-write guard for an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-graph")]
    _held: HeldToken,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl<T> RwLock<T> {
    /// Creates a reader-writer lock; the call site becomes its class.
    #[track_caller]
    pub fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "lock-graph")]
            class: instr_impl::ClassKey::of(std::panic::Location::caller()),
            #[cfg(feature = "lock-graph")]
            rank: None,
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access (poison recovered per the module policy).
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let site = std::panic::Location::caller();
        let inner = self.inner.read().unwrap_or_else(|poisoned| {
            note_poison_recovery(site);
            poisoned.into_inner()
        });
        #[cfg(feature = "lock-graph")]
        instr_impl::on_acquire(self.class, self.rank, site);
        RwLockReadGuard {
            #[cfg(feature = "lock-graph")]
            _held: HeldToken { class: self.class },
            inner,
        }
    }

    /// Acquires exclusive write access (poison recovered per the policy).
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let site = std::panic::Location::caller();
        let inner = self.inner.write().unwrap_or_else(|poisoned| {
            note_poison_recovery(site);
            poisoned.into_inner()
        });
        #[cfg(feature = "lock-graph")]
        instr_impl::on_acquire(self.class, self.rank, site);
        RwLockWriteGuard {
            #[cfg(feature = "lock-graph")]
            _held: HeldToken { class: self.class },
            inner,
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// The `lock-graph` report surface.  Compiled only with the feature; test
/// suites call [`assert_clean`](lock_graph::assert_clean) after driving the
/// engine and the wire server through their scenarios.
#[cfg(feature = "lock-graph")]
pub mod lock_graph {
    use super::instr_impl::{self, ClassKey, EdgeWitness};
    use std::collections::{HashMap, HashSet};

    /// One recorded lock-order edge (held class → acquired class) with the
    /// first acquisition stack that witnessed it.
    #[derive(Clone, Debug)]
    pub struct Edge {
        /// Label of the class held at acquisition time.
        pub from: String,
        /// Label of the class being acquired.
        pub to: String,
        /// The witnessing thread's name.
        pub thread: String,
        /// The full held-lock stack at witness time, outermost first.
        pub held_stack: Vec<String>,
        /// Where the target lock was acquired.
        pub acquired: String,
    }

    /// The state of the global lock-order graph.
    #[derive(Debug, Default)]
    pub struct Report {
        /// Every distinct held → acquired class edge observed.
        pub edges: Vec<Edge>,
        /// Cycles among the edges — potential deadlocks.  Each cycle is the
        /// list of its edges, so the report carries a witness stack for
        /// every direction involved.
        pub cycles: Vec<Vec<Edge>>,
        /// Same-class acquisitions that violated the strict rank order.
        pub rank_violations: Vec<String>,
        /// Task polls entered with engine locks held.
        pub poll_violations: Vec<String>,
        /// Poisoned-lock recoveries observed process-wide.
        pub poison_recoveries: u64,
        /// Legal ranked same-class nestings (e.g. shard-lock pairs taken in
        /// index order by the rebalancer or an atomic snapshot).
        pub ranked_nestings: u64,
    }

    impl Report {
        /// Whether the recorded lock-order graph has no cycle.
        pub fn is_acyclic(&self) -> bool {
            self.cycles.is_empty()
        }

        /// Whether the run was fully clean: acyclic, rank-disciplined, and
        /// no lock was ever held across a task poll.
        pub fn is_clean(&self) -> bool {
            self.is_acyclic() && self.rank_violations.is_empty() && self.poll_violations.is_empty()
        }

        /// A human-readable rendering of every finding.
        pub fn describe(&self) -> String {
            let mut out = String::new();
            out.push_str(&format!(
                "lock-order graph: {} edges, {} cycles, {} rank violations, {} poll violations\n",
                self.edges.len(),
                self.cycles.len(),
                self.rank_violations.len(),
                self.poll_violations.len()
            ));
            for (i, cycle) in self.cycles.iter().enumerate() {
                out.push_str(&format!("potential deadlock cycle #{}:\n", i + 1));
                for edge in cycle {
                    out.push_str(&format!(
                        "  {} -> {} on {} (held [{}] while acquiring {})\n",
                        edge.from,
                        edge.to,
                        edge.thread,
                        edge.held_stack.join(", "),
                        edge.acquired
                    ));
                }
            }
            for violation in &self.rank_violations {
                out.push_str(&format!("rank violation: {violation}\n"));
            }
            for violation in &self.poll_violations {
                out.push_str(&format!("poll violation: {violation}\n"));
            }
            out
        }
    }

    /// Snapshots the global graph and runs cycle detection over it.
    pub fn report() -> Report {
        let (edges, rank_violations, poll_violations, ranked_nestings) =
            instr_impl::with_graph(|graph| {
                (
                    graph
                        .edges
                        .iter()
                        .map(|(k, w)| (*k, w.clone()))
                        .collect::<Vec<((ClassKey, ClassKey), EdgeWitness)>>(),
                    graph.rank_violations.clone(),
                    graph.poll_violations.clone(),
                    graph.ranked_nestings,
                )
            });
        let cycles = find_cycles(&edges);
        let mut edge_list: Vec<Edge> = edges.iter().map(|(k, w)| make_edge(*k, w)).collect();
        edge_list.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
        Report {
            edges: edge_list,
            cycles,
            rank_violations,
            poll_violations,
            poison_recoveries: super::poison_recoveries(),
            ranked_nestings,
        }
    }

    /// Panics with the full report if the recorded graph has a cycle, a
    /// rank violation, or a lock-held-across-poll finding.
    pub fn assert_clean() {
        let report = report();
        assert!(report.is_clean(), "{}", report.describe());
    }

    /// Clears the recorded graph (per-test isolation; the per-thread held
    /// stacks are left alone — they describe live guards).
    pub fn reset() {
        instr_impl::with_graph(|graph| {
            graph.edges.clear();
            graph.rank_violations.clear();
            graph.poll_violations.clear();
            graph.ranked_nestings = 0;
        });
    }

    fn make_edge(key: (ClassKey, ClassKey), witness: &EdgeWitness) -> Edge {
        Edge {
            from: key.0.label(),
            to: key.1.label(),
            thread: witness.thread.clone(),
            held_stack: witness.held_stack.clone(),
            acquired: witness.acquired.clone(),
        }
    }

    /// Finds every elementary cycle reachable through a depth-first walk of
    /// the class graph, reported as edge lists.  The graph is tiny (one
    /// node per lock *creation site*), so a simple coloring DFS suffices:
    /// each back edge closes one reported cycle.
    fn find_cycles(edges: &[((ClassKey, ClassKey), EdgeWitness)]) -> Vec<Vec<Edge>> {
        let mut adjacency: HashMap<ClassKey, Vec<ClassKey>> = HashMap::new();
        let mut witness: HashMap<(ClassKey, ClassKey), &EdgeWitness> = HashMap::new();
        for ((from, to), w) in edges {
            adjacency.entry(*from).or_default().push(*to);
            witness.insert((*from, *to), w);
        }
        let mut nodes: Vec<ClassKey> = adjacency.keys().copied().collect();
        nodes.sort();
        for targets in adjacency.values_mut() {
            targets.sort();
        }

        let mut cycles = Vec::new();
        let mut done: HashSet<ClassKey> = HashSet::new();
        for &start in &nodes {
            if done.contains(&start) {
                continue;
            }
            // Iterative DFS with an explicit path stack; a back edge into
            // the current path closes a cycle.
            let mut path: Vec<ClassKey> = Vec::new();
            let mut on_path: HashSet<ClassKey> = HashSet::new();
            let mut frames: Vec<(ClassKey, usize)> = vec![(start, 0)];
            while let Some((node, next)) = frames.last().copied() {
                if next == 0 {
                    path.push(node);
                    on_path.insert(node);
                }
                let targets = adjacency.get(&node).map_or(&[][..], Vec::as_slice);
                if next < targets.len() {
                    frames.last_mut().expect("frame exists").1 += 1;
                    let target = targets[next];
                    if on_path.contains(&target) {
                        // Close the cycle target → ... → node → target.
                        let from = path
                            .iter()
                            .position(|n| *n == target)
                            .expect("target is on the path");
                        let mut cycle = Vec::new();
                        for window in path[from..].windows(2) {
                            let key = (window[0], window[1]);
                            cycle.push(make_edge(key, witness[&key]));
                        }
                        let closing = (node, target);
                        cycle.push(make_edge(closing, witness[&closing]));
                        cycles.push(cycle);
                    } else if !done.contains(&target) {
                        frames.push((target, 0));
                    }
                } else {
                    frames.pop();
                    path.pop();
                    on_path.remove(&node);
                    done.insert(node);
                }
            }
        }
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trips_values() {
        let lock = Mutex::new(41);
        *lock.lock() += 1;
        assert_eq!(*lock.lock(), 42);
        assert!(lock.try_lock().is_some());
        let held = lock.lock();
        assert!(lock.try_lock().is_none(), "held lock must refuse try_lock");
        drop(held);
    }

    #[test]
    fn rwlock_round_trips_values() {
        let lock = RwLock::new(String::from("a"));
        lock.write().push('b');
        assert_eq!(&*lock.read(), "ab");
    }

    #[test]
    fn condvar_wakes_waiters() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock();
                while !*ready {
                    ready = cv.wait(ready);
                }
            })
        };
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        waiter.join().expect("waiter exits");
    }

    #[test]
    fn poisoned_locks_recover_and_are_counted() {
        let lock = Arc::new(Mutex::new(7));
        let before = poison_recoveries();
        let poisoner = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                let _guard = lock.lock();
                panic!("poison the lock");
            })
        };
        assert!(poisoner.join().is_err());
        // The panicking holder poisoned the std mutex underneath; the
        // wrapper recovers, counts, and hands out a valid guard.
        assert_eq!(*lock.lock(), 7);
        assert!(
            poison_recoveries() > before,
            "recovery must be counted ({before} before)"
        );
    }

    #[cfg(feature = "lock-graph")]
    #[test]
    fn lock_graph_records_edges_and_detects_inversion() {
        // Build a deliberate A→B / B→A inversion on two fresh lock classes
        // and check the cycle detector reports it with both witnesses.
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        let report = lock_graph::report();
        assert!(
            !report.is_acyclic(),
            "inverted order must produce a cycle: {}",
            report.describe()
        );
        let cycle = &report.cycles[0];
        assert!(cycle.len() >= 2, "cycle carries both edges");
        lock_graph::reset();
        assert!(lock_graph::report().is_acyclic());
    }

    #[cfg(feature = "lock-graph")]
    #[test]
    fn ranked_same_class_nesting_is_legal_only_ascending() {
        fn make(rank: u32) -> Mutex<u32> {
            Mutex::with_rank(rank, 0)
        }
        let shards: Vec<Mutex<u32>> = (0..3).map(make).collect();
        lock_graph::reset();
        {
            let _low = shards[0].lock();
            let _high = shards[2].lock();
        }
        assert!(
            lock_graph::report().rank_violations.is_empty(),
            "ascending rank order is the documented discipline"
        );
        {
            let _high = shards[2].lock();
            let _low = shards[0].lock();
        }
        let report = lock_graph::report();
        assert!(
            !report.rank_violations.is_empty(),
            "descending same-class order must be flagged"
        );
        lock_graph::reset();
    }
}
