//! Query identification.
//!
//! WATCHMAN identifies a retrieved set by the *query ID*: the query string
//! with all delimiter runs compressed to a single separator character
//! (paper §3).  To avoid comparing full strings on every lookup, each cache
//! entry additionally carries a *signature* — a hash of the query ID — and
//! only entries with a matching signature are compared textually.
//!
//! [`QueryKey`] bundles the compressed query text with its signature;
//! [`Signature`] is the 64-bit hash used by the signature index.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A 64-bit signature of a query ID, computed with FNV-1a.
///
/// FNV-1a is used instead of the standard library's SipHash because the
/// signature must be *stable* across processes (it is persisted in traces and
/// experiment outputs) and because query IDs are looked up extremely
/// frequently.  HashDoS resistance is not a concern: query IDs are generated
/// by the warehouse front end, not by untrusted clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Signature(pub u64);

impl Signature {
    /// Computes the FNV-1a signature of the given bytes.
    pub fn of_bytes(bytes: &[u8]) -> Signature {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        Signature(hash)
    }

    /// Computes the signature of a query ID string.
    pub fn of_str(text: &str) -> Signature {
        Signature::of_bytes(text.as_bytes())
    }

    /// Returns the raw 64-bit value.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Compresses a raw query string into a canonical query ID.
///
/// The paper compresses the query string "by substituting all delimiters with
/// a single special character".  This function collapses every maximal run of
/// ASCII whitespace, commas and semicolons into a single `'\u{1}'` separator,
/// trims leading and trailing separators, and lowercases keywords-agnostic
/// characters are left untouched (SQL identifiers may be case sensitive, so
/// only whitespace handling is normalized).
pub fn compress_query_text(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut in_delim = false;
    for ch in raw.chars() {
        let is_delim = ch.is_whitespace() || ch == ',' || ch == ';';
        if is_delim {
            in_delim = true;
        } else {
            if in_delim && !out.is_empty() {
                out.push('\u{1}');
            }
            in_delim = false;
            out.push(ch);
        }
    }
    out
}

/// The identity of a query (and therefore of its retrieved set) inside the
/// cache manager.
///
/// A `QueryKey` owns the compressed query ID text (shared via `Arc` so that
/// cloning keys while moving entries between the cache and the retained
/// reference store is cheap) and caches its [`Signature`].
///
/// Equality is *exact textual* equality, as in the paper: two semantically
/// equivalent but syntactically different queries are distinct keys.  The
/// `Hash` implementation forwards the precomputed signature so that hash-map
/// lookups do not re-hash the text.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryKey {
    text: Arc<str>,
    signature: Signature,
}

impl QueryKey {
    /// Creates a key from an already-canonical query ID.
    ///
    /// Use [`QueryKey::from_raw_query`] when starting from user-facing SQL
    /// text that still contains arbitrary whitespace.
    pub fn new(text: impl Into<Arc<str>>) -> Self {
        let text = text.into();
        let signature = Signature::of_str(&text);
        QueryKey { text, signature }
    }

    /// Creates a key from raw query text, compressing delimiters first.
    pub fn from_raw_query(raw: &str) -> Self {
        QueryKey::new(compress_query_text(raw))
    }

    /// Returns the canonical query ID text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Returns the precomputed signature.
    pub fn signature(&self) -> Signature {
        self.signature
    }

    /// Returns the number of bytes of metadata this key occupies, used when
    /// accounting for the space taken by retained reference information.
    pub fn metadata_bytes(&self) -> u64 {
        self.text.len() as u64 + std::mem::size_of::<Signature>() as u64
    }
}

impl PartialEq for QueryKey {
    fn eq(&self, other: &Self) -> bool {
        // Fast path on the signature; fall back to exact text comparison to
        // resolve collisions, exactly like the paper's lookup procedure.
        self.signature == other.signature && self.text == other.text
    }
}

impl Eq for QueryKey {}

impl Hash for QueryKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.signature.0);
    }
}

impl PartialOrd for QueryKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueryKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.text.cmp(&other.text)
    }
}

impl fmt::Display for QueryKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text.replace('\u{1}', " "))
    }
}

impl From<&str> for QueryKey {
    fn from(text: &str) -> Self {
        QueryKey::new(text.to_owned())
    }
}

impl From<String> for QueryKey {
    fn from(text: String) -> Self {
        QueryKey::new(text)
    }
}

impl Borrow<str> for QueryKey {
    fn borrow(&self) -> &str {
        &self.text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    #[test]
    fn signature_is_deterministic() {
        let a = Signature::of_str("SELECT * FROM lineitem");
        let b = Signature::of_str("SELECT * FROM lineitem");
        assert_eq!(a, b);
    }

    #[test]
    fn signature_differs_for_different_text() {
        let a = Signature::of_str("q1");
        let b = Signature::of_str("q2");
        assert_ne!(a, b);
    }

    #[test]
    fn signature_known_value_of_empty() {
        // FNV-1a offset basis for empty input.
        assert_eq!(Signature::of_bytes(b"").value(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn compress_collapses_whitespace_runs() {
        let compressed = compress_query_text("SELECT   a,\n\tb FROM  t ;");
        assert_eq!(compressed, "SELECT\u{1}a\u{1}b\u{1}FROM\u{1}t");
    }

    #[test]
    fn compress_trims_leading_and_trailing_delimiters() {
        assert_eq!(compress_query_text("   x   "), "x");
        assert_eq!(compress_query_text(""), "");
        assert_eq!(compress_query_text(" ,; "), "");
    }

    #[test]
    fn keys_with_same_text_are_equal() {
        let a = QueryKey::new("Q1(p=3)");
        let b = QueryKey::new("Q1(p=3)");
        assert_eq!(a, b);
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn keys_from_raw_query_normalize_whitespace() {
        let a = QueryKey::from_raw_query("SELECT  x FROM t");
        let b = QueryKey::from_raw_query("SELECT x\nFROM t");
        assert_eq!(a, b);
    }

    #[test]
    fn hash_uses_signature() {
        let key = QueryKey::new("Q7(a=1,b=2)");
        let mut h1 = DefaultHasher::new();
        key.hash(&mut h1);
        let mut h2 = DefaultHasher::new();
        h2.write_u64(key.signature().value());
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn display_replaces_separator_with_space() {
        let key = QueryKey::from_raw_query("SELECT  x FROM t");
        assert_eq!(key.to_string(), "SELECT x FROM t");
    }

    #[test]
    fn metadata_bytes_accounts_for_text() {
        let key = QueryKey::new("abcd");
        assert_eq!(key.metadata_bytes(), 4 + 8);
    }

    #[test]
    fn ordering_is_textual() {
        let a = QueryKey::new("a");
        let b = QueryKey::new("b");
        assert!(a < b);
    }
}
