//! The profit metric (paper §2.1–§2.2).
//!
//! WATCHMAN combines the three per-retrieved-set statistics — average
//! reference rate `λᵢ`, size `sᵢ` and query execution cost `cᵢ` — into a
//! single ranking metric:
//!
//! ```text
//! profit(RSᵢ)   = λᵢ · cᵢ / sᵢ          (Eq. 2, cached / previously seen sets)
//! e-profit(RSᵢ) =      cᵢ / sᵢ          (Eq. 6, first-time retrieved sets)
//! ```
//!
//! and, for a candidate replacement list `C`,
//!
//! ```text
//! profit(C)   = Σ λⱼ·cⱼ / Σ sⱼ           (Eq. 5)
//! e-profit(C) = Σ cⱼ    / Σ sⱼ           (Eq. 8)
//! ```
//!
//! [`Profit`] is a thin newtype over `f64` providing a total order so profit
//! values can be sorted and compared safely (NaN never occurs by
//! construction: rates, costs and sizes are finite and sizes are ≥ 1).

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::value::ExecutionCost;

/// A profit value; higher means more valuable to keep in cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Profit(f64);

impl Profit {
    /// Zero profit (a set that is free to recompute or infinitely large).
    pub const ZERO: Profit = Profit(0.0);

    /// Creates a profit from a raw value, clamping NaN and negatives to zero.
    pub fn new(value: f64) -> Self {
        if value.is_finite() && value > 0.0 {
            Profit(value)
        } else {
            Profit(0.0)
        }
    }

    /// The profit of a single retrieved set (Eq. 2): `λ · c / s`.
    pub fn of_set(rate: f64, cost: ExecutionCost, size_bytes: u64) -> Self {
        let size = size_bytes.max(1) as f64;
        Profit::new(rate * cost.value() / size)
    }

    /// The estimated profit of a first-time retrieved set (Eq. 6): `c / s`.
    pub fn estimated(cost: ExecutionCost, size_bytes: u64) -> Self {
        let size = size_bytes.max(1) as f64;
        Profit::new(cost.value() / size)
    }

    /// The aggregate profit of a replacement candidate list (Eq. 5):
    /// `Σ λⱼ·cⱼ / Σ sⱼ`.
    ///
    /// Returns [`Profit::ZERO`] for an empty list: evicting nothing costs
    /// nothing, so any positive-profit set wins the admission test against an
    /// empty candidate list.
    pub fn of_list<I>(items: I) -> Self
    where
        I: IntoIterator<Item = (f64, ExecutionCost, u64)>,
    {
        let mut weighted_cost = 0.0;
        let mut total_size = 0.0;
        for (rate, cost, size) in items {
            weighted_cost += rate * cost.value();
            total_size += size.max(1) as f64;
        }
        if total_size == 0.0 {
            Profit::ZERO
        } else {
            Profit::new(weighted_cost / total_size)
        }
    }

    /// The aggregate *estimated* profit of a candidate list (Eq. 8):
    /// `Σ cⱼ / Σ sⱼ`.
    pub fn estimated_of_list<I>(items: I) -> Self
    where
        I: IntoIterator<Item = (ExecutionCost, u64)>,
    {
        Profit::of_list(items.into_iter().map(|(c, s)| (1.0, c, s)))
    }

    /// The raw value.
    pub const fn value(self) -> f64 {
        self.0
    }
}

impl Eq for Profit {}

impl PartialOrd for Profit {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Profit {
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are finite and non-negative by construction, so total_cmp is
        // equivalent to partial_cmp here but never panics.
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for Profit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6e}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(c: f64) -> ExecutionCost {
        ExecutionCost::from_block_reads(c)
    }

    #[test]
    fn profit_of_set_matches_formula() {
        // λ = 0.5 refs/us, c = 200 blocks, s = 100 bytes → profit = 1.0.
        let p = Profit::of_set(0.5, cost(200.0), 100);
        assert!((p.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn estimated_profit_ignores_rate() {
        let p = Profit::estimated(cost(300.0), 150);
        assert!((p.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn profit_is_zero_for_invalid_inputs() {
        assert_eq!(Profit::new(f64::NAN), Profit::ZERO);
        assert_eq!(Profit::new(-3.0), Profit::ZERO);
        assert_eq!(Profit::of_set(0.0, cost(10.0), 5), Profit::ZERO);
    }

    #[test]
    fn zero_size_is_clamped() {
        let p = Profit::of_set(1.0, cost(10.0), 0);
        assert!((p.value() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn list_profit_is_size_weighted() {
        // Two sets: (λ=1, c=10, s=10) and (λ=1, c=30, s=30).
        // profit(C) = (10 + 30) / (10 + 30) = 1.0
        let p = Profit::of_list(vec![(1.0, cost(10.0), 10), (1.0, cost(30.0), 30)]);
        assert!((p.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn list_profit_differs_from_average_of_profits() {
        // Set A: profit 10 (λ=1,c=10,s=1); set B: profit 0.01 (λ=1,c=1,s=100).
        // Aggregate = (10 + 1) / 101 ≈ 0.1089, not the mean of 10 and 0.01.
        let p = Profit::of_list(vec![(1.0, cost(10.0), 1), (1.0, cost(1.0), 100)]);
        assert!((p.value() - 11.0 / 101.0).abs() < 1e-12);
    }

    #[test]
    fn empty_list_has_zero_profit() {
        assert_eq!(Profit::of_list(std::iter::empty()), Profit::ZERO);
        assert_eq!(Profit::estimated_of_list(std::iter::empty()), Profit::ZERO);
    }

    #[test]
    fn estimated_list_profit() {
        let p = Profit::estimated_of_list(vec![(cost(10.0), 10), (cost(90.0), 40)]);
        assert!((p.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ordering_is_total_and_by_value() {
        let small = Profit::new(0.5);
        let big = Profit::new(2.0);
        assert!(small < big);
        assert_eq!(small.max(big), big);
        let mut v = vec![big, Profit::ZERO, small];
        v.sort();
        assert_eq!(v, vec![Profit::ZERO, small, big]);
    }

    #[test]
    fn display_is_scientific() {
        let p = Profit::new(0.001234);
        assert!(p.to_string().contains('e'));
    }
}
