//! The constrained optimality model of paper §2.3.
//!
//! Under a stationary, independent reference distribution
//! `{p₁, …, pₙ}`, the optimal static cache contents minimize the expected
//! cost of misses `Σ_{i∉I*} pᵢ·cᵢ` subject to `Σ_{i∈I*} sᵢ ≤ S` — a knapsack
//! problem.  If cached sets are small relative to the cache (so the cache can
//! always be filled almost exactly, Eq. 11), the greedy algorithm **LNC\***
//! that ranks sets by `pᵢ·cᵢ/sᵢ` is optimal (Theorem 1).
//!
//! This module implements LNC\* and an exact dynamic-programming knapsack
//! oracle.  They are used by the test-suite to validate Theorem 1 empirically
//! and by the simulator to report how close the on-line LNC-RA policy comes
//! to the static optimum on a given trace.

use serde::{Deserialize, Serialize};

/// One retrieved set in the static model: reference probability `p`,
/// execution cost `c` and size `s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnapsackItem {
    /// Stationary reference probability `pᵢ` (need not be normalized; any
    /// positive weight proportional to the reference rate works).
    pub probability: f64,
    /// Execution cost `cᵢ` of the query producing the set.
    pub cost: f64,
    /// Size `sᵢ` of the retrieved set in bytes.
    pub size_bytes: u64,
}

impl KnapsackItem {
    /// Creates an item, clamping negative or non-finite inputs to zero.
    pub fn new(probability: f64, cost: f64, size_bytes: u64) -> Self {
        let sanitize = |v: f64| if v.is_finite() && v > 0.0 { v } else { 0.0 };
        KnapsackItem {
            probability: sanitize(probability),
            cost: sanitize(cost),
            size_bytes: size_bytes.max(1),
        }
    }

    /// The expected cost saving per reference if this item is cached:
    /// `pᵢ·cᵢ`.
    pub fn expected_saving(&self) -> f64 {
        self.probability * self.cost
    }

    /// The greedy ranking key of LNC\*: `pᵢ·cᵢ/sᵢ`.
    pub fn density(&self) -> f64 {
        self.expected_saving() / self.size_bytes as f64
    }
}

/// The result of a static cache-content selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// Indices (into the input slice) of the selected items.
    pub chosen: Vec<usize>,
    /// Total size of the selected items.
    pub total_size: u64,
    /// Total expected saving `Σ pᵢ·cᵢ` of the selected items.
    pub expected_saving: f64,
}

impl Selection {
    fn from_indices(items: &[KnapsackItem], chosen: Vec<usize>) -> Self {
        let total_size = chosen.iter().map(|&i| items[i].size_bytes).sum();
        let expected_saving = chosen.iter().map(|&i| items[i].expected_saving()).sum();
        Selection {
            chosen,
            total_size,
            expected_saving,
        }
    }
}

/// The LNC\* greedy algorithm (paper §2.3).
///
/// Items are sorted in descending order of `pᵢ·cᵢ/sᵢ` and taken from the
/// front of the list while they fit in the remaining capacity; the first item
/// that does not fit stops the scan (this is the paper's formulation, which
/// fills the cache as long as assumption (11) holds).
pub fn lnc_star(items: &[KnapsackItem], capacity_bytes: u64) -> Selection {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| items[b].density().total_cmp(&items[a].density()));
    let mut chosen = Vec::new();
    let mut used = 0u64;
    for idx in order {
        let size = items[idx].size_bytes;
        if used + size > capacity_bytes {
            break;
        }
        used += size;
        chosen.push(idx);
    }
    chosen.sort_unstable();
    Selection::from_indices(items, chosen)
}

/// A variant of LNC\* that *skips* items that do not fit instead of stopping
/// at the first one (a common practical refinement); still greedy, never
/// worse than [`lnc_star`].
pub fn lnc_star_skipping(items: &[KnapsackItem], capacity_bytes: u64) -> Selection {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| items[b].density().total_cmp(&items[a].density()));
    let mut chosen = Vec::new();
    let mut used = 0u64;
    for idx in order {
        let size = items[idx].size_bytes;
        if used + size <= capacity_bytes {
            used += size;
            chosen.push(idx);
        }
    }
    chosen.sort_unstable();
    Selection::from_indices(items, chosen)
}

/// Exact 0/1-knapsack solution by dynamic programming over sizes.
///
/// Complexity is `O(n · capacity)`, so this is only usable for the small
/// instances employed in tests and in the optimality-gap reports; the
/// simulator never calls it on full traces.
pub fn optimal_knapsack(items: &[KnapsackItem], capacity_bytes: u64) -> Selection {
    let capacity = usize::try_from(capacity_bytes).expect("capacity too large for exact knapsack");
    // best[w] = (saving, chosen set) achievable with total size exactly ≤ w.
    let mut best_value = vec![0.0f64; capacity + 1];
    let mut best_choice: Vec<Vec<usize>> = vec![Vec::new(); capacity + 1];
    for (idx, item) in items.iter().enumerate() {
        let size = item.size_bytes as usize;
        if size > capacity {
            continue;
        }
        let gain = item.expected_saving();
        for w in (size..=capacity).rev() {
            let candidate = best_value[w - size] + gain;
            if candidate > best_value[w] + 1e-12 {
                best_value[w] = candidate;
                let mut choice = best_choice[w - size].clone();
                choice.push(idx);
                best_choice[w] = choice;
            }
        }
    }
    let mut chosen = best_choice[capacity].clone();
    chosen.sort_unstable();
    Selection::from_indices(items, chosen)
}

/// The expected *miss* cost `Σ_{i∉I} pᵢ·cᵢ` of a selection — the objective
/// the paper minimizes (Eq. 9).
pub fn expected_miss_cost(items: &[KnapsackItem], selection: &Selection) -> f64 {
    let total: f64 = items.iter().map(KnapsackItem::expected_saving).sum();
    total - selection.expected_saving
}

/// The cost-savings ratio a static selection would achieve under the model:
/// `Σ_{i∈I} pᵢ·cᵢ / Σᵢ pᵢ·cᵢ`.
pub fn expected_cost_savings_ratio(items: &[KnapsackItem], selection: &Selection) -> f64 {
    let total: f64 = items.iter().map(KnapsackItem::expected_saving).sum();
    if total <= 0.0 {
        0.0
    } else {
        selection.expected_saving / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(p: f64, c: f64, s: u64) -> KnapsackItem {
        KnapsackItem::new(p, c, s)
    }

    #[test]
    fn item_sanitizes_inputs() {
        let i = item(-1.0, f64::NAN, 0);
        assert_eq!(i.probability, 0.0);
        assert_eq!(i.cost, 0.0);
        assert_eq!(i.size_bytes, 1);
    }

    #[test]
    fn greedy_prefers_high_density_items() {
        let items = vec![
            item(0.5, 100.0, 10),  // density 5.0
            item(0.5, 100.0, 100), // density 0.5
            item(0.1, 10.0, 1),    // density 1.0
        ];
        let sel = lnc_star(&items, 11);
        assert_eq!(sel.chosen, vec![0, 2]);
        assert_eq!(sel.total_size, 11);
    }

    #[test]
    fn greedy_stops_at_first_item_that_does_not_fit() {
        let items = vec![
            item(0.9, 100.0, 60), // density 1.5 — taken
            item(0.8, 100.0, 50), // density 1.6 — taken first
            item(0.1, 100.0, 5),  // density 2.0 — taken very first
        ];
        // Order by density: idx2 (5), idx1 (50), idx0 (60). Capacity 56:
        // 5 + 50 = 55 fits, adding 60 would violate → stop.
        let sel = lnc_star(&items, 56);
        assert_eq!(sel.chosen, vec![1, 2]);
    }

    #[test]
    fn skipping_variant_can_fill_remaining_space() {
        let items = vec![
            item(0.9, 100.0, 60),
            item(0.8, 100.0, 50),
            item(0.1, 100.0, 5),
        ];
        // Same instance as above but with capacity 61: greedy takes 5, then
        // 50, then stops at 60; the skipping variant also cannot fit 60, so
        // both agree here.  With capacity 65 greedy stops at 60 while
        // skipping still cannot take it: verify both never exceed capacity.
        for capacity in [56, 61, 65, 120] {
            let a = lnc_star(&items, capacity);
            let b = lnc_star_skipping(&items, capacity);
            assert!(a.total_size <= capacity);
            assert!(b.total_size <= capacity);
            assert!(b.expected_saving >= a.expected_saving - 1e-12);
        }
    }

    #[test]
    fn exact_knapsack_finds_optimum_on_classic_instance() {
        // Classic example where greedy-by-density is suboptimal because the
        // dense item blocks two items that together are better.
        let items = vec![
            item(1.0, 60.0, 10),  // density 6.0
            item(1.0, 100.0, 20), // density 5.0
            item(1.0, 120.0, 30), // density 4.0
        ];
        let optimal = optimal_knapsack(&items, 50);
        assert_eq!(optimal.chosen, vec![1, 2]);
        assert!((optimal.expected_saving - 220.0).abs() < 1e-9);
        let greedy = lnc_star(&items, 50);
        assert!(greedy.expected_saving <= optimal.expected_saving);
    }

    #[test]
    fn theorem_one_greedy_is_optimal_when_cache_fills_exactly() {
        // All sizes equal → assumption (11) holds (the cache can be filled
        // exactly), so LNC* must match the exact optimum.
        let items: Vec<KnapsackItem> = (0..10)
            .map(|i| item(0.1 * (i + 1) as f64, 10.0 * (10 - i) as f64, 10))
            .collect();
        for capacity in [10u64, 30, 50, 100] {
            let greedy = lnc_star(&items, capacity);
            let optimal = optimal_knapsack(&items, capacity);
            assert!(
                (greedy.expected_saving - optimal.expected_saving).abs() < 1e-9,
                "capacity {capacity}: greedy {} vs optimal {}",
                greedy.expected_saving,
                optimal.expected_saving
            );
        }
    }

    #[test]
    fn miss_cost_and_csr_are_complementary() {
        let items = vec![item(0.5, 10.0, 5), item(0.5, 30.0, 5)];
        let sel = lnc_star(&items, 5);
        let total = 0.5 * 10.0 + 0.5 * 30.0;
        let miss = expected_miss_cost(&items, &sel);
        let csr = expected_cost_savings_ratio(&items, &sel);
        assert!((miss + sel.expected_saving - total).abs() < 1e-12);
        assert!((csr - sel.expected_saving / total).abs() < 1e-12);
    }

    #[test]
    fn empty_input_yields_empty_selection() {
        let sel = lnc_star(&[], 100);
        assert!(sel.chosen.is_empty());
        assert_eq!(sel.total_size, 0);
        assert_eq!(expected_cost_savings_ratio(&[], &sel), 0.0);
    }

    #[test]
    fn zero_capacity_selects_nothing() {
        let items = vec![item(0.5, 10.0, 5)];
        assert!(lnc_star(&items, 0).chosen.is_empty());
        assert!(optimal_knapsack(&items, 0).chosen.is_empty());
    }
}
