//! Single-flight deduplication of concurrent cache misses, poll-based.
//!
//! When several sessions miss on the same query at once, only one of them —
//! the *leader* — should execute the warehouse query; the others wait for
//! the leader's result instead of issuing redundant multi-second scans.
//! [`Flight`] is the synchronization cell for one in-flight execution.  It
//! is a *future-style* cell: waiters suspend by registering a [`Waker`]
//! through [`Flight::poll_wait`] instead of blocking an OS thread on a
//! condvar, so thousands of coalesced sessions cost thousands of wakers, not
//! thousands of parked threads.
//!
//! ## The abandonment / takeover protocol
//!
//! If the leader's fetch panics the flight is [abandoned](Flight::abandon).
//! Abandonment wakes **exactly one** waiter — the takeover candidate — and
//! leaves the rest registered:
//!
//! * no thundering herd: one candidate re-executes; the others keep
//!   sleeping until the new leader completes the *same* flight cell;
//! * no lost wakeup: if the candidate is cancelled before it can take over
//!   (its future is dropped), [`Flight::forget_waiter`] wakes the next
//!   waiter in line; when the *last* waiter gives up (or none was
//!   registered at the failure), the engine retires the cell from its
//!   in-flight table — panicking keys that are never re-requested must not
//!   leak cells — and the next arrival for the key starts a fresh flight.
//!
//! Takeover reuses the cell in place ([`Flight::poll_wait`] returns
//! [`FlightOutcome::TakeOver`] after atomically flipping the state back to
//! pending), so waiters registered before the failure never need to migrate
//! to a new cell.
//!
//! The original leader's *session* is woken too — not as a takeover
//! candidate but to observe the failure: the engine stores the fetch's
//! panic payload in the cell ([`Flight::set_panic`]) and the leader session
//! re-raises it ([`Flight::poll_leader`]), preserving the synchronous API's
//! panic-propagation contract through the async path.
//!
//! ## Errors are not panics
//!
//! A fetch that returns `Err` (the fallible pipeline) resolves the cell
//! *terminally* through [`Flight::fail`]: unlike abandonment, **every**
//! waiter is woken at once and observes the same shared
//! `Arc<FetchError>` — there is nothing to take over, because the leader
//! already spent its whole retry budget on the query.  The engine retires a
//! failed cell immediately, so the next reference to the key starts a fresh
//! flight (or is answered by the negative cache).

use std::any::Any;
use std::sync::Arc;

use crate::engine::failure::FetchError;

use crate::sync::{Mutex, MutexGuard};
use std::task::{Context, Poll, Waker};

use crate::policy::InsertOutcome;
use crate::value::ExecutionCost;

/// The observable state of one in-flight execution.
enum FlightState<V> {
    /// A leader is executing the query; waiters are registered by id.
    Pending {
        /// The suspended waiter sessions, in registration order.
        waiters: Vec<(u64, Waker)>,
        /// The leader session's waker, when the fetch runs elsewhere (the
        /// async path spawns it on the runtime).
        leader: Option<Waker>,
    },
    /// The leader failed; one waiter has been woken to take over.
    Abandoned {
        /// Waiters still suspended, awaiting the takeover leader's result.
        waiters: Vec<(u64, Waker)>,
    },
    /// The leader published its result.
    Done(Arc<V>, ExecutionCost),
    /// The leader's fetch failed terminally (error, not panic): retry
    /// budget exhausted or fatal error.  Every waiter shares the error.
    Failed(Arc<FetchError>),
}

impl<V> std::fmt::Debug for FlightState<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlightState::Pending { waiters, leader } => f
                .debug_struct("Pending")
                .field("waiters", &waiters.len())
                .field("leader", &leader.is_some())
                .finish(),
            FlightState::Abandoned { waiters } => f
                .debug_struct("Abandoned")
                .field("waiters", &waiters.len())
                .finish(),
            FlightState::Done(_, cost) => f.debug_tuple("Done").field(cost).finish(),
            FlightState::Failed(error) => f.debug_tuple("Failed").field(error).finish(),
        }
    }
}

/// What a waiter observes when its poll completes.
#[derive(Debug)]
pub enum FlightOutcome<V> {
    /// The leader produced this value at this cost.
    Done(Arc<V>, ExecutionCost),
    /// The previous leader failed and this waiter won the takeover race:
    /// the flight is pending again and the caller **is now the leader** —
    /// it must execute the query and complete (or abandon) this same cell.
    TakeOver,
    /// The leader's fetch failed terminally; every waiter observes this
    /// same shared error.  There is no takeover: the result does not exist.
    Failed(Arc<FetchError>),
}

/// What the leader's session observes when its poll completes (async path,
/// where the fetch itself runs on the runtime).
#[derive(Debug)]
pub enum LeaderOutcome<V> {
    /// The spawned fetch completed the flight with this value and cost.
    Done(Arc<V>, ExecutionCost),
    /// The spawned fetch panicked; the payload (if any) should be re-raised
    /// on the session so the async path propagates panics exactly like the
    /// synchronous one.
    Failed(Option<Box<dyn Any + Send>>),
    /// The spawned fetch failed terminally with a fetch error (fallible
    /// pipeline); the session surfaces it as a `LookupError`, not a panic.
    Error(Arc<FetchError>),
}

/// A waiter's registration handle on a [`Flight`].
///
/// Create one per waiting session with [`WaiterSlot::new`]; pass it to every
/// [`Flight::poll_wait`] and hand it to [`Flight::forget_waiter`] if the
/// session gives up (drops its future) while the flight is unresolved.
#[derive(Debug, Default)]
pub struct WaiterSlot {
    id: Option<u64>,
}

impl WaiterSlot {
    /// A slot not yet registered on any flight.
    pub fn new() -> Self {
        WaiterSlot { id: None }
    }
}

/// The synchronization cell for one in-flight query execution.
pub struct Flight<V> {
    state: Mutex<FlightState<V>>,
    /// Monotonic waiter-id source.
    next_waiter: std::sync::atomic::AtomicU64,
    /// Monotonic leadership-generation source: each session that leads this
    /// cell (the original leader and every takeover) draws an epoch, so a
    /// failed fetch's panic is re-raised on *its own* session even after a
    /// takeover leader has completed the flight.
    next_epoch: std::sync::atomic::AtomicU64,
    /// The admission outcome of the leader's insert, for the leader session
    /// to take (async path; the sync path returns it directly).
    outcome: Mutex<Option<InsertOutcome>>,
    /// The panic payloads of failed fetches, each tagged with the leadership
    /// epoch whose session must re-raise it (successive takeovers can fail
    /// too, so there may briefly be more than one).
    panic_payload: Mutex<Vec<(u64, Box<dyn Any + Send>)>>,
}

impl<V> std::fmt::Debug for Flight<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Flight")
            .field("state", &*self.lock())
            .finish()
    }
}

impl<V> Flight<V> {
    /// Creates a pending flight with no registered waiters.
    pub fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending {
                waiters: Vec::new(),
                leader: None,
            }),
            next_waiter: std::sync::atomic::AtomicU64::new(0),
            next_epoch: std::sync::atomic::AtomicU64::new(0),
            outcome: Mutex::new(None),
            panic_payload: Mutex::new(Vec::new()),
        }
    }

    /// Draws a fresh leadership epoch.  Called by each session that starts
    /// (or takes over) an execution on this cell, before spawning its fetch.
    pub fn new_leader_epoch(&self) -> u64 {
        self.next_epoch
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            + 1
    }

    fn lock(&self) -> MutexGuard<'_, FlightState<V>> {
        // The engine never panics while holding this lock (fetches run
        // outside it); the sync layer's poison recovery keeps waiters alive
        // even if that invariant is ever broken.
        self.state.lock()
    }

    /// Publishes the leader's result and wakes the leader session and every
    /// waiter.
    pub fn complete(&self, value: Arc<V>, cost: ExecutionCost) {
        let mut state = self.lock();
        let previous = std::mem::replace(&mut *state, FlightState::Done(value, cost));
        drop(state);
        match previous {
            FlightState::Pending { waiters, leader } => {
                for (_, waker) in waiters {
                    waker.wake();
                }
                if let Some(leader) = leader {
                    leader.wake();
                }
            }
            FlightState::Abandoned { waiters } => {
                for (_, waker) in waiters {
                    waker.wake();
                }
            }
            FlightState::Done(..) | FlightState::Failed(..) => {}
        }
    }

    /// Resolves the flight with a terminal fetch error, waking **every**
    /// waiter and the leader session at once.  Unlike [`Flight::abandon`]
    /// there is no takeover candidate: the leader already exhausted its
    /// retry budget, so each waiter observes the same shared error (and
    /// decides for itself whether a stale serve applies).  The caller must
    /// retire the cell from the in-flight table, exactly as it would after
    /// the last waiter of an abandoned cell gives up.
    ///
    /// Failing a completed (or already failed) flight is a no-op.
    pub fn fail(&self, error: Arc<FetchError>) {
        let mut state = self.lock();
        match &mut *state {
            FlightState::Pending { .. } | FlightState::Abandoned { .. } => {}
            FlightState::Done(..) | FlightState::Failed(..) => return,
        }
        let previous = std::mem::replace(&mut *state, FlightState::Failed(error));
        drop(state);
        match previous {
            FlightState::Pending { waiters, leader } => {
                for (_, waker) in waiters {
                    waker.wake();
                }
                if let Some(leader) = leader {
                    leader.wake();
                }
            }
            FlightState::Abandoned { waiters } => {
                for (_, waker) in waiters {
                    waker.wake();
                }
            }
            FlightState::Done(..) | FlightState::Failed(..) => unreachable!("checked above"),
        }
    }

    /// Marks the flight as failed and wakes **exactly one** waiter to take
    /// over leadership (plus the original leader session, so it can observe
    /// the failure).  Returns the number of waiters still registered after
    /// the wake — **including** the woken candidate's claim on the cell, so
    /// when it is zero (nobody waiting at all) the engine retires the cell
    /// from its in-flight table instead of leaking it.
    ///
    /// Abandoning an already-abandoned flight wakes one more waiter (used
    /// when a takeover candidate is cancelled before it could lead); a
    /// completed flight is left untouched.
    pub fn abandon(&self) -> usize {
        let mut state = self.lock();
        match &mut *state {
            FlightState::Pending { waiters, leader } => {
                let leader = leader.take();
                let (invested, candidate) = pop_candidate(waiters);
                let waiters = std::mem::take(waiters);
                *state = FlightState::Abandoned { waiters };
                drop(state);
                if let Some(candidate) = candidate {
                    candidate.wake();
                }
                if let Some(leader) = leader {
                    leader.wake();
                }
                invested
            }
            FlightState::Abandoned { waiters } => {
                let (invested, candidate) = pop_candidate(waiters);
                drop(state);
                if let Some(candidate) = candidate {
                    candidate.wake();
                }
                invested
            }
            FlightState::Done(..) | FlightState::Failed(..) => 0,
        }
    }

    /// Polls the flight as a waiter.
    ///
    /// Returns [`FlightOutcome::Done`] once the leader completes, or
    /// [`FlightOutcome::TakeOver`] if the leader failed and this waiter is
    /// first to observe it — the state is atomically reset to pending and
    /// the caller becomes the new leader.  Otherwise registers (or refreshes)
    /// `slot`'s waker and suspends.
    pub fn poll_wait(&self, slot: &mut WaiterSlot, cx: &mut Context<'_>) -> Poll<FlightOutcome<V>> {
        let mut state = self.lock();
        match &mut *state {
            FlightState::Done(value, cost) => {
                let outcome = FlightOutcome::Done(Arc::clone(value), *cost);
                drop(state);
                self.deregister(slot);
                Poll::Ready(outcome)
            }
            FlightState::Failed(error) => {
                let outcome = FlightOutcome::Failed(Arc::clone(error));
                drop(state);
                self.deregister(slot);
                Poll::Ready(outcome)
            }
            FlightState::Abandoned { waiters } => {
                // First poller after the failure wins the takeover race; the
                // rest of the waiters stay registered on this same cell.
                if let Some(id) = slot.id.take() {
                    waiters.retain(|(waiter, _)| *waiter != id);
                }
                let waiters = std::mem::take(waiters);
                *state = FlightState::Pending {
                    waiters,
                    leader: None,
                };
                Poll::Ready(FlightOutcome::TakeOver)
            }
            FlightState::Pending { waiters, .. } => {
                match slot.id {
                    Some(id) => {
                        if let Some(entry) = waiters.iter_mut().find(|(waiter, _)| *waiter == id) {
                            // Waker::clone_from skips the clone when both
                            // wakers would wake the same task.
                            entry.1.clone_from(cx.waker());
                        } else {
                            // Re-registering after a wake consumed the entry.
                            waiters.push((id, cx.waker().clone()));
                        }
                    }
                    None => {
                        let id = self
                            .next_waiter
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                            + 1;
                        slot.id = Some(id);
                        waiters.push((id, cx.waker().clone()));
                    }
                }
                Poll::Pending
            }
        }
    }

    /// Polls the flight as the leader *session* of leadership generation
    /// `epoch`, while its fetch runs elsewhere (the async path spawns the
    /// fetch on the runtime).
    ///
    /// The epoch check matters after a failure: a takeover leader may have
    /// completed (or re-failed) the cell before the original session gets to
    /// poll, so each session re-raises only the panic tagged with *its own*
    /// generation and otherwise reports whatever the cell's current state
    /// says.
    pub fn poll_leader(&self, epoch: u64, cx: &mut Context<'_>) -> Poll<LeaderOutcome<V>> {
        // Own-generation failure wins over any later state: the session that
        // spawned the failed fetch must observe the failure even if a
        // takeover has already completed the flight with a fresh value.
        if let Some(payload) = self.take_panic_for(epoch) {
            return Poll::Ready(LeaderOutcome::Failed(Some(payload)));
        }
        let mut state = self.lock();
        match &mut *state {
            FlightState::Done(value, cost) => {
                Poll::Ready(LeaderOutcome::Done(Arc::clone(value), *cost))
            }
            FlightState::Failed(error) => Poll::Ready(LeaderOutcome::Error(Arc::clone(error))),
            FlightState::Abandoned { .. } => {
                // This generation's fetch failed without recording a payload
                // (it should always record one; be defensive).
                Poll::Ready(LeaderOutcome::Failed(None))
            }
            FlightState::Pending { leader, .. } => {
                *leader = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }

    /// Removes a cancelled waiter's registration (its future was dropped
    /// before the flight resolved).
    ///
    /// If the flight is currently abandoned, the cancelled waiter may have
    /// been the woken takeover candidate, so the next waiter in line is
    /// woken — at worst a spurious wake, never a lost takeover.  Returns
    /// `true` when the flight is abandoned with **no** waiter left to take
    /// it over: the caller (the engine) should then retire the cell from
    /// its in-flight table so never-re-requested panicking keys do not
    /// accumulate dead cells.
    pub fn forget_waiter(&self, slot: &mut WaiterSlot) -> bool {
        let Some(id) = slot.id.take() else {
            return false;
        };
        let mut state = self.lock();
        match &mut *state {
            FlightState::Pending { waiters, .. } => {
                waiters.retain(|(waiter, _)| *waiter != id);
                false
            }
            FlightState::Abandoned { waiters } => {
                waiters.retain(|(waiter, _)| *waiter != id);
                if waiters.is_empty() {
                    return true;
                }
                let candidate = waiters[0].1.clone();
                drop(state);
                candidate.wake();
                false
            }
            FlightState::Done(..) | FlightState::Failed(..) => false,
        }
    }

    fn deregister(&self, slot: &mut WaiterSlot) {
        if let Some(id) = slot.id.take() {
            let mut state = self.lock();
            if let FlightState::Pending { waiters, .. } | FlightState::Abandoned { waiters } =
                &mut *state
            {
                waiters.retain(|(waiter, _)| *waiter != id);
            }
        }
    }

    /// Stores the admission outcome of the leader's insert for the leader
    /// session to collect (async path).
    pub fn set_outcome(&self, outcome: InsertOutcome) {
        *self.outcome.lock() = Some(outcome);
    }

    /// Takes the stored admission outcome, if any.
    pub fn take_outcome(&self) -> Option<InsertOutcome> {
        self.outcome.lock().take()
    }

    /// Stores a failed fetch's panic payload for the leader session of
    /// generation `epoch` to re-raise.  Call **before** [`Flight::abandon`]
    /// so the leader observes the payload when its abandonment wake arrives.
    pub fn set_panic(&self, epoch: u64, payload: Box<dyn Any + Send>) {
        self.panic_payload.lock().push((epoch, payload));
    }

    fn take_panic_for(&self, epoch: u64) -> Option<Box<dyn Any + Send>> {
        let mut payloads = self.panic_payload.lock();
        let index = payloads.iter().position(|(e, _)| *e == epoch)?;
        Some(payloads.swap_remove(index).1)
    }

    /// Whether the flight has completed.
    #[cfg(test)]
    pub fn is_done(&self) -> bool {
        matches!(*self.lock(), FlightState::Done(..))
    }
}

impl<V> Default for Flight<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Pops the first registered waiter as the takeover candidate, FIFO.
/// Returns the number of waiters that were invested in the cell (the woken
/// candidate keeps its claim, so it counts) plus the candidate's waker.
fn pop_candidate(waiters: &mut Vec<(u64, Waker)>) -> (usize, Option<Waker>) {
    let invested = waiters.len();
    let candidate = if waiters.is_empty() {
        None
    } else {
        Some(waiters.remove(0).1)
    };
    (invested, candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::task::Wake;

    /// A waker that counts how many times it is woken.
    struct CountingWake {
        wakes: AtomicU64,
    }

    impl CountingWake {
        fn new() -> Arc<Self> {
            Arc::new(CountingWake {
                wakes: AtomicU64::new(0),
            })
        }

        fn count(&self) -> u64 {
            self.wakes.load(Ordering::SeqCst)
        }
    }

    impl Wake for CountingWake {
        fn wake(self: Arc<Self>) {
            self.wakes.fetch_add(1, Ordering::SeqCst);
        }
        fn wake_by_ref(self: &Arc<Self>) {
            self.wakes.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn register(flight: &Flight<u64>, wake: &Arc<CountingWake>) -> WaiterSlot {
        let waker = Waker::from(Arc::clone(wake));
        let mut cx = Context::from_waker(&waker);
        let mut slot = WaiterSlot::new();
        assert!(flight.poll_wait(&mut slot, &mut cx).is_pending());
        slot
    }

    #[test]
    fn complete_wakes_every_waiter_and_delivers_the_value() {
        let flight: Flight<u64> = Flight::new();
        let wakes: Vec<_> = (0..4).map(|_| CountingWake::new()).collect();
        let mut slots: Vec<_> = wakes.iter().map(|w| register(&flight, w)).collect();

        flight.complete(Arc::new(99), ExecutionCost::from_blocks(5));
        for wake in &wakes {
            assert_eq!(wake.count(), 1, "every waiter woken exactly once");
        }
        for (slot, wake) in slots.iter_mut().zip(&wakes) {
            let waker = Waker::from(Arc::clone(wake));
            let mut cx = Context::from_waker(&waker);
            match flight.poll_wait(slot, &mut cx) {
                Poll::Ready(FlightOutcome::Done(value, cost)) => {
                    assert_eq!(*value, 99);
                    assert_eq!(cost.value(), 5.0);
                }
                other => panic!("expected Done, got {other:?}"),
            }
        }
    }

    #[test]
    fn abandonment_wakes_exactly_one_waiter() {
        let flight: Flight<u64> = Flight::new();
        let wakes: Vec<_> = (0..5).map(|_| CountingWake::new()).collect();
        let _slots: Vec<_> = wakes.iter().map(|w| register(&flight, w)).collect();

        let invested = flight.abandon();
        assert_eq!(invested, 5, "all five waiters still have a claim");
        let woken: u64 = wakes.iter().map(|w| w.count()).sum();
        assert_eq!(woken, 1, "no thundering herd: exactly one waiter woken");
        // The candidate is the earliest registrant (FIFO).
        assert_eq!(wakes[0].count(), 1);
    }

    #[test]
    fn first_poller_after_abandonment_takes_over_and_the_rest_stay() {
        let flight: Flight<u64> = Flight::new();
        let candidate_wake = CountingWake::new();
        let bystander_wake = CountingWake::new();
        let mut candidate = register(&flight, &candidate_wake);
        let mut bystander = register(&flight, &bystander_wake);

        flight.abandon();
        let waker = Waker::from(Arc::clone(&candidate_wake));
        let mut cx = Context::from_waker(&waker);
        assert!(matches!(
            flight.poll_wait(&mut candidate, &mut cx),
            Poll::Ready(FlightOutcome::TakeOver)
        ));

        // The new leader completes the same cell; the bystander (never
        // re-registered, never woken in between) now observes Done.
        flight.complete(Arc::new(7), ExecutionCost::from_blocks(1));
        assert!(bystander_wake.count() >= 1, "bystander woken on completion");
        let waker = Waker::from(Arc::clone(&bystander_wake));
        let mut cx = Context::from_waker(&waker);
        assert!(matches!(
            flight.poll_wait(&mut bystander, &mut cx),
            Poll::Ready(FlightOutcome::Done(value, _)) if *value == 7
        ));
    }

    #[test]
    fn cancelled_candidate_hands_the_wake_to_the_next_waiter() {
        let flight: Flight<u64> = Flight::new();
        let first = CountingWake::new();
        let second = CountingWake::new();
        let mut first_slot = register(&flight, &first);
        let _second_slot = register(&flight, &second);

        flight.abandon();
        assert_eq!(first.count(), 1, "first waiter is the candidate");
        assert_eq!(second.count(), 0);

        // The candidate's session is cancelled before it could poll: its
        // future's drop handler forgets the registration, which must pass
        // the takeover wake along.
        flight.forget_waiter(&mut first_slot);
        assert_eq!(second.count(), 1, "next waiter woken — no lost wakeup");
    }

    #[test]
    fn abandon_after_complete_is_a_no_op() {
        let flight: Flight<u64> = Flight::new();
        flight.complete(Arc::new(1), ExecutionCost::from_blocks(1));
        assert_eq!(flight.abandon(), 0);
        assert!(flight.is_done());
    }

    #[test]
    fn leader_poll_observes_completion_and_failure() {
        let flight: Flight<u64> = Flight::new();
        let epoch = flight.new_leader_epoch();
        let wake = CountingWake::new();
        let waker = Waker::from(Arc::clone(&wake));
        let mut cx = Context::from_waker(&waker);
        assert!(flight.poll_leader(epoch, &mut cx).is_pending());

        flight.set_panic(epoch, Box::new("boom"));
        flight.abandon();
        assert_eq!(wake.count(), 1, "leader session woken on abandonment");
        match flight.poll_leader(epoch, &mut cx) {
            Poll::Ready(LeaderOutcome::Failed(Some(payload))) => {
                assert_eq!(*payload.downcast::<&str>().unwrap(), "boom");
            }
            other => panic!("expected Failed with payload, got {other:?}"),
        }

        let done: Flight<u64> = Flight::new();
        let epoch = done.new_leader_epoch();
        done.set_outcome(InsertOutcome::already_cached());
        done.complete(Arc::new(3), ExecutionCost::from_blocks(2));
        match done.poll_leader(epoch, &mut cx) {
            Poll::Ready(LeaderOutcome::Done(value, _)) => assert_eq!(*value, 3),
            other => panic!("expected Done, got {other:?}"),
        }
        assert!(done.take_outcome().is_some());
        assert!(done.take_outcome().is_none(), "outcome taken once");
    }

    #[test]
    fn own_generation_failure_wins_over_a_takeover_completion() {
        // The race the epoch exists for: leader A's fetch fails, waiter B
        // takes over and completes before A polls.  A must still observe its
        // own failure, and B's result must not be misread as A's.
        let flight: Flight<u64> = Flight::new();
        let epoch_a = flight.new_leader_epoch();
        flight.set_panic(epoch_a, Box::new("a failed"));
        flight.abandon();

        // B takes over (fresh epoch) and completes the same cell.
        let epoch_b = flight.new_leader_epoch();
        flight.complete(Arc::new(11), ExecutionCost::from_blocks(4));

        let wake = CountingWake::new();
        let waker = Waker::from(Arc::clone(&wake));
        let mut cx = Context::from_waker(&waker);
        // A polls late: its own generation's panic, not B's value.
        match flight.poll_leader(epoch_a, &mut cx) {
            Poll::Ready(LeaderOutcome::Failed(Some(payload))) => {
                assert_eq!(*payload.downcast::<&str>().unwrap(), "a failed");
            }
            other => panic!("A must observe its own failure, got {other:?}"),
        }
        // B polls: the completed value.
        match flight.poll_leader(epoch_b, &mut cx) {
            Poll::Ready(LeaderOutcome::Done(value, _)) => assert_eq!(*value, 11),
            other => panic!("B must observe its completion, got {other:?}"),
        }
    }

    #[test]
    fn fail_wakes_every_waiter_with_one_shared_error() {
        let flight: Flight<u64> = Flight::new();
        let wakes: Vec<_> = (0..4).map(|_| CountingWake::new()).collect();
        let mut slots: Vec<_> = wakes.iter().map(|w| register(&flight, w)).collect();

        let error = Arc::new(FetchError::transient("warehouse down"));
        flight.fail(Arc::clone(&error));
        for wake in &wakes {
            assert_eq!(wake.count(), 1, "unlike abandon, fail wakes everyone");
        }
        for (slot, wake) in slots.iter_mut().zip(&wakes) {
            let waker = Waker::from(Arc::clone(wake));
            let mut cx = Context::from_waker(&waker);
            match flight.poll_wait(slot, &mut cx) {
                Poll::Ready(FlightOutcome::Failed(observed)) => {
                    assert!(
                        Arc::ptr_eq(&observed, &error),
                        "the error is shared, not cloned"
                    );
                }
                other => panic!("expected Failed, got {other:?}"),
            }
        }
        // Terminal: no takeover, no further abandonment claims.
        assert_eq!(flight.abandon(), 0);
    }

    #[test]
    fn leader_session_observes_the_fetch_error() {
        let flight: Flight<u64> = Flight::new();
        let epoch = flight.new_leader_epoch();
        let wake = CountingWake::new();
        let waker = Waker::from(Arc::clone(&wake));
        let mut cx = Context::from_waker(&waker);
        assert!(flight.poll_leader(epoch, &mut cx).is_pending());

        let error = Arc::new(FetchError::fatal("relation dropped"));
        flight.fail(Arc::clone(&error));
        assert_eq!(wake.count(), 1, "leader session woken by fail");
        match flight.poll_leader(epoch, &mut cx) {
            Poll::Ready(LeaderOutcome::Error(observed)) => {
                assert!(Arc::ptr_eq(&observed, &error));
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn fail_after_complete_is_a_no_op() {
        let flight: Flight<u64> = Flight::new();
        flight.complete(Arc::new(42), ExecutionCost::from_blocks(1));
        flight.fail(Arc::new(FetchError::transient("late")));
        assert!(flight.is_done(), "a published result is never clawed back");
        // And the mirror image: completing a failed flight stays failed for
        // pollers that raced ahead (the engine retires failed cells, so in
        // practice nobody completes one).
        let failed: Flight<u64> = Flight::new();
        failed.fail(Arc::new(FetchError::transient("down")));
        let mut slot = WaiterSlot::new();
        let wake = CountingWake::new();
        let waker = Waker::from(Arc::clone(&wake));
        let mut cx = Context::from_waker(&waker);
        assert!(matches!(
            failed.poll_wait(&mut slot, &mut cx),
            Poll::Ready(FlightOutcome::Failed(_))
        ));
    }

    #[test]
    fn zero_waiter_abandonment_leaves_the_cell_takeover_able() {
        let flight: Flight<u64> = Flight::new();
        assert_eq!(flight.abandon(), 0);
        // A session arriving later joins the abandoned cell and immediately
        // becomes the new leader.
        let wake = CountingWake::new();
        let waker = Waker::from(Arc::clone(&wake));
        let mut cx = Context::from_waker(&waker);
        let mut slot = WaiterSlot::new();
        assert!(matches!(
            flight.poll_wait(&mut slot, &mut cx),
            Poll::Ready(FlightOutcome::TakeOver)
        ));
    }
}
