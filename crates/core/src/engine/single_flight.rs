//! Single-flight deduplication of concurrent cache misses.
//!
//! When several sessions miss on the same query at once, only one of them —
//! the *leader* — should execute the warehouse query; the others wait for
//! the leader's result instead of issuing redundant multi-second scans.
//! [`Flight`] is the synchronization cell for one in-flight execution: the
//! leader publishes its result through [`Flight::complete`], waiters block in
//! [`Flight::wait`], and if the leader's fetch panics the flight is
//! [abandoned](Flight::abandon) so that one waiter can take over as the new
//! leader rather than blocking forever.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::value::ExecutionCost;

/// The observable state of one in-flight execution.
#[derive(Debug)]
enum FlightState<V> {
    /// The leader is still executing the query.
    Pending,
    /// The leader published its result.
    Done(Arc<V>, ExecutionCost),
    /// The leader failed (its fetch panicked); a waiter must re-execute.
    Abandoned,
}

/// What a waiter observes when its flight finishes.
#[derive(Debug)]
pub enum FlightOutcome<V> {
    /// The leader produced this value at this cost.
    Done(Arc<V>, ExecutionCost),
    /// The leader abandoned the flight; the caller should retry (and may
    /// become the new leader).
    Abandoned,
}

/// The synchronization cell for one in-flight query execution.
#[derive(Debug)]
pub struct Flight<V> {
    state: Mutex<FlightState<V>>,
    finished: Condvar,
}

impl<V> Flight<V> {
    /// Creates a pending flight.
    pub fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            finished: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, FlightState<V>> {
        // The engine never panics while holding this lock except in the
        // leader's fetch, which is guarded by abandonment; recovering from
        // poisoning keeps waiters alive in that case.
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Publishes the leader's result and wakes all waiters.
    pub fn complete(&self, value: Arc<V>, cost: ExecutionCost) {
        *self.lock() = FlightState::Done(value, cost);
        self.finished.notify_all();
    }

    /// Marks the flight as failed and wakes all waiters so one can retry.
    pub fn abandon(&self) {
        let mut state = self.lock();
        if matches!(*state, FlightState::Pending) {
            *state = FlightState::Abandoned;
            self.finished.notify_all();
        }
    }

    /// Blocks until the flight finishes.
    pub fn wait(&self) -> FlightOutcome<V> {
        let mut state = self.lock();
        loop {
            match &*state {
                FlightState::Pending => {
                    state = self
                        .finished
                        .wait(state)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
                FlightState::Done(value, cost) => {
                    return FlightOutcome::Done(Arc::clone(value), *cost)
                }
                FlightState::Abandoned => return FlightOutcome::Abandoned,
            }
        }
    }
}

impl<V> Default for Flight<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn waiters_receive_the_leaders_result() {
        let flight: Arc<Flight<u64>> = Arc::new(Flight::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let flight = Arc::clone(&flight);
            handles.push(std::thread::spawn(move || match flight.wait() {
                FlightOutcome::Done(value, cost) => (*value, cost.value()),
                FlightOutcome::Abandoned => panic!("flight must complete"),
            }));
        }
        std::thread::sleep(Duration::from_millis(10));
        flight.complete(Arc::new(99), ExecutionCost::from_blocks(5));
        for handle in handles {
            assert_eq!(handle.join().unwrap(), (99, 5.0));
        }
    }

    #[test]
    fn abandonment_wakes_waiters() {
        let flight: Arc<Flight<u64>> = Arc::new(Flight::new());
        let waiter = {
            let flight = Arc::clone(&flight);
            std::thread::spawn(move || matches!(flight.wait(), FlightOutcome::Abandoned))
        };
        std::thread::sleep(Duration::from_millis(10));
        flight.abandon();
        assert!(waiter.join().unwrap(), "waiter must observe abandonment");
    }

    #[test]
    fn abandon_after_complete_is_a_no_op() {
        let flight: Flight<u64> = Flight::new();
        flight.complete(Arc::new(1), ExecutionCost::from_blocks(1));
        flight.abandon();
        assert!(matches!(flight.wait(), FlightOutcome::Done(..)));
    }
}
