//! The sharded concurrent cache engine.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::clock::Timestamp;
use crate::coherence::DependencyIndex;
use crate::engine::events::{CacheEvent, CacheObserver};
use crate::engine::policy_kind::PolicyKind;
use crate::engine::rebalance::{plan_transfer, RebalanceConfig, RebalanceOutcome, ShardSignal};
use crate::engine::single_flight::{Flight, FlightOutcome};
use crate::key::QueryKey;
use crate::metrics::CacheStats;
use crate::policy::{InsertOutcome, QueryCache};
use crate::value::{CachePayload, ExecutionCost};

/// Pluggable key normalization applied to every key entering the engine.
///
/// The paper matches queries by exact (delimiter-compressed) text; §6 lists a
/// cheaper-than-rewrite equivalence test as future work.  The engine makes
/// that choice a configuration knob: [`KeyNormalizer::Exact`] is the paper's
/// behavior, [`KeyNormalizer::CanonicalSql`] routes every key through
/// [`crate::equivalence::canonical_key`] so syntactically different but
/// canonically equivalent queries share one cache entry, and
/// [`KeyNormalizer::Custom`] accepts any user function.
#[derive(Clone)]
pub enum KeyNormalizer {
    /// Exact query-ID matching (the paper's §3 lookup).
    Exact,
    /// Canonical-SQL matching via the [`crate::equivalence`] canonicalizer.
    CanonicalSql,
    /// A caller-supplied normalization function.
    Custom(Arc<dyn Fn(&QueryKey) -> QueryKey + Send + Sync>),
}

impl std::fmt::Debug for KeyNormalizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyNormalizer::Exact => f.write_str("Exact"),
            KeyNormalizer::CanonicalSql => f.write_str("CanonicalSql"),
            KeyNormalizer::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

impl KeyNormalizer {
    fn apply(&self, key: &QueryKey) -> QueryKey {
        match self {
            KeyNormalizer::Exact => key.clone(),
            KeyNormalizer::CanonicalSql => crate::equivalence::canonical_key(&key.to_string()),
            KeyNormalizer::Custom(normalize) => normalize(key),
        }
    }
}

/// Where a [`Watchman::get_or_execute`] result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupSource {
    /// The retrieved set was already cached.
    Hit,
    /// This session executed the query (it was the single-flight leader).
    Executed,
    /// Another session was already executing the same query; this session
    /// waited for its result instead of re-executing.
    Coalesced,
}

/// The result of a [`Watchman::get_or_execute`] call.
#[derive(Debug)]
pub struct Lookup<V> {
    /// The retrieved set, shared without copying.
    pub value: Arc<V>,
    /// How the value was obtained.
    pub source: LookupSource,
    /// The admission outcome, when this session executed the query.
    pub outcome: Option<InsertOutcome>,
}

/// An owned, aggregated snapshot of the engine's statistics.
///
/// The snapshot is *atomic*: every shard is locked for the duration of the
/// read, so the per-shard capacities always sum to the configured total even
/// while a rebalance pass is moving bytes between shards.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Counters summed across every shard.
    pub total: CacheStats,
    /// The per-shard counters, indexed by shard.
    pub per_shard: Vec<CacheStats>,
    /// The per-shard capacities in bytes, indexed by shard.  With
    /// rebalancing enabled these drift away from the static `total/N` split
    /// toward the profit-heavy shards; they always sum to `capacity_bytes`.
    pub per_shard_capacity: Vec<u64>,
    /// The per-shard occupancies in bytes, indexed by shard.  Each entry is
    /// bounded by the matching `per_shard_capacity` entry.
    pub per_shard_used: Vec<u64>,
    /// Bytes currently cached, summed across shards.
    pub used_bytes: u64,
    /// Total configured capacity across shards.
    pub capacity_bytes: u64,
    /// Number of cached retrieved sets across shards.
    pub entries: usize,
    /// Number of misses whose execution was coalesced into another session's
    /// in-flight query instead of re-executing.  Equals `total.coalesced`.
    pub coalesced_misses: u64,
    /// Number of capacity transfers the rebalancer has performed.
    pub rebalances: u64,
}

impl StatsSnapshot {
    /// The aggregate hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        self.total.hit_ratio()
    }

    /// The aggregate cost savings ratio (the paper's primary metric).
    pub fn cost_savings_ratio(&self) -> f64 {
        self.total.cost_savings_ratio()
    }
}

struct ShardState<V> {
    cache: Box<dyn QueryCache<Arc<V>> + Send>,
    inflight: HashMap<QueryKey, Arc<Flight<V>>>,
}

struct Shard<V> {
    state: Mutex<ShardState<V>>,
}

impl<V> Shard<V> {
    fn lock(&self) -> MutexGuard<'_, ShardState<V>> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// The rebalancer's mutable bookkeeping, behind one mutex that also
/// serializes passes — a session that finds it busy simply skips its turn.
struct RebalancePassState {
    /// Per-shard cumulative pressure (rejections + evictions) observed at
    /// the previous pass.
    last_pressure: Vec<u64>,
    /// Exponentially smoothed per-shard step gain ([`QueryCache::grow_gain`]).
    /// Instantaneous profit estimates spike transiently — a single valuable
    /// eviction inflates a shard's retained store for several passes — and
    /// paying real evictions for a spike is how a rebalancer starts
    /// thrashing.  Smoothing across passes lets only *persistent* starvation
    /// attract capacity.
    smoothed_gain: Vec<f64>,
    /// Exponentially smoothed per-shard step loss ([`QueryCache::shrink_loss`]).
    smoothed_loss: Vec<f64>,
    /// Number of passes run (including ones that moved nothing).
    pass_index: u64,
    /// The last executed transfer, as (donor, recipient, pass_index).
    /// Shrinking a shard feeds its own starvation signal (the evicted sets
    /// land in its retained store), so an unchecked planner slowly sloshes
    /// capacity back and forth between two shards; refusing to reverse the
    /// most recent transfer for a cooldown period breaks that feedback loop.
    last_transfer: Option<(usize, usize, u64)>,
}

struct RebalancerState {
    config: RebalanceConfig,
    ops: AtomicU64,
    rebalances: AtomicU64,
    pass: Mutex<RebalancePassState>,
}

struct Inner<V> {
    shards: Vec<Shard<V>>,
    observers: Vec<Arc<dyn CacheObserver>>,
    normalizer: KeyNormalizer,
    policy: PolicyKind,
    total_capacity_bytes: u64,
    coalesced_misses: AtomicU64,
    rebalancer: Option<RebalancerState>,
}

/// Configures and builds a [`Watchman`] engine.
///
/// ```
/// use watchman_core::engine::{PolicyKind, Watchman};
/// use watchman_core::value::SizedPayload;
///
/// let engine: Watchman<SizedPayload> = Watchman::builder()
///     .shards(8)
///     .policy(PolicyKind::LncRa { k: 4 })
///     .capacity_bytes(64 << 20)
///     .build();
/// assert_eq!(engine.shard_count(), 8);
/// assert_eq!(engine.capacity_bytes(), 64 << 20);
/// ```
pub struct WatchmanBuilder<V> {
    shards: usize,
    policy: PolicyKind,
    capacity_bytes: u64,
    normalizer: KeyNormalizer,
    observers: Vec<Arc<dyn CacheObserver>>,
    rebalance: Option<RebalanceConfig>,
    _payload: std::marker::PhantomData<fn() -> V>,
}

impl<V> std::fmt::Debug for WatchmanBuilder<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WatchmanBuilder")
            .field("shards", &self.shards)
            .field("policy", &self.policy)
            .field("capacity_bytes", &self.capacity_bytes)
            .field("normalizer", &self.normalizer)
            .field("observers", &self.observers.len())
            .field("rebalance", &self.rebalance)
            .finish()
    }
}

impl<V> Default for WatchmanBuilder<V> {
    fn default() -> Self {
        WatchmanBuilder {
            shards: 1,
            policy: PolicyKind::LNC_RA,
            capacity_bytes: 0,
            normalizer: KeyNormalizer::Exact,
            observers: Vec::new(),
            rebalance: None,
            _payload: std::marker::PhantomData,
        }
    }
}

impl<V> WatchmanBuilder<V> {
    /// Sets the number of shards the keyspace is hash-partitioned across.
    ///
    /// Each shard holds an independent policy instance behind its own lock,
    /// so sessions touching different shards never contend.  Values are
    /// clamped to at least 1.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the replacement/admission policy every shard runs.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the total cache capacity, split evenly across shards.
    pub fn capacity_bytes(mut self, capacity_bytes: u64) -> Self {
        self.capacity_bytes = capacity_bytes;
        self
    }

    /// Sets the key-normalization step applied to every key.
    pub fn normalizer(mut self, normalizer: KeyNormalizer) -> Self {
        self.normalizer = normalizer;
        self
    }

    /// Routes every key through the [`crate::equivalence`] canonicalizer so
    /// canonically equivalent queries share one cache entry.
    pub fn canonical_sql_matching(self) -> Self {
        self.normalizer(KeyNormalizer::CanonicalSql)
    }

    /// Subscribes an observer to the engine's [`CacheEvent`] stream.
    pub fn observer(mut self, observer: Arc<dyn CacheObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Enables profit-aware capacity rebalancing between shards.
    ///
    /// Without this, every shard keeps its static `total/N` split for the
    /// engine's lifetime.  See [`RebalanceConfig`] for the profit signal and
    /// pass mechanics.
    pub fn rebalance(mut self, config: RebalanceConfig) -> Self {
        self.rebalance = Some(config.sanitized());
        self
    }

    /// Builds the engine.
    ///
    /// The configured capacity is split evenly across shards (any division
    /// remainder goes to the first shards, so the shard capacities always sum
    /// to the configured total).  When the total capacity is positive but
    /// smaller than the shard count, the shard count is clamped down so that
    /// no shard is created with zero bytes — an even `total/N` split would
    /// otherwise leave shards that reject every insert with `ZeroCapacity`.
    pub fn build(self) -> Watchman<V>
    where
        V: CachePayload + Send + Sync + 'static,
    {
        // Clamp away zero-byte shards: with 0 < capacity < shards an even
        // split would hand some shards 0 bytes, silently voiding the slice of
        // the keyspace hashed onto them.
        let shard_count = if self.capacity_bytes == 0 {
            self.shards
        } else {
            self.shards
                .min(usize::try_from(self.capacity_bytes).unwrap_or(usize::MAX))
                .max(1)
        };
        let base = self.capacity_bytes / shard_count as u64;
        let remainder = self.capacity_bytes % shard_count as u64;
        let shards: Vec<Shard<V>> = (0..shard_count)
            .map(|i| {
                // Distribute the division remainder so capacities sum exactly.
                let capacity = base + u64::from((i as u64) < remainder);
                Shard {
                    state: Mutex::new(ShardState {
                        cache: self.policy.build::<Arc<V>>(capacity),
                        inflight: HashMap::new(),
                    }),
                }
            })
            .collect();
        let rebalancer = self.rebalance.map(|config| RebalancerState {
            config,
            ops: AtomicU64::new(0),
            rebalances: AtomicU64::new(0),
            pass: Mutex::new(RebalancePassState {
                last_pressure: vec![0; shard_count],
                smoothed_gain: vec![0.0; shard_count],
                smoothed_loss: vec![0.0; shard_count],
                pass_index: 0,
                last_transfer: None,
            }),
        });
        Watchman {
            inner: Arc::new(Inner {
                shards,
                observers: self.observers,
                normalizer: self.normalizer,
                policy: self.policy,
                total_capacity_bytes: self.capacity_bytes,
                coalesced_misses: AtomicU64::new(0),
                rebalancer,
            }),
        }
    }
}

/// The WATCHMAN engine: a thread-safe, sharded retrieved-set cache facade.
///
/// This is the primary public API of the library — the "library of routines
/// that may be linked with an application" of paper §3, grown into a
/// concurrent engine:
///
/// * the keyspace is hash-partitioned by query signature across N shards,
///   each an independent [`PolicyKind`] instance behind its own lock;
/// * payloads are shared as `Arc<V>`, so hits never copy retrieved sets;
/// * [`Watchman::get_or_execute`] deduplicates concurrent misses on the same
///   query (*single-flight*): one session executes the warehouse query, the
///   rest wait for its result;
/// * admissions, rejections, evictions and invalidations are published to
///   [`CacheObserver`]s, which the coherence index and the buffer manager's
///   p₀-hint machinery subscribe to;
/// * statistics aggregate across shards into an owned [`StatsSnapshot`].
///
/// Handles are cheap to clone and share one underlying engine:
///
/// ```
/// use std::sync::Arc;
/// use watchman_core::engine::{LookupSource, PolicyKind, Watchman};
/// use watchman_core::prelude::*;
///
/// let engine: Watchman<SizedPayload> = Watchman::builder()
///     .shards(4)
///     .policy(PolicyKind::LncRa { k: 4 })
///     .capacity_bytes(1 << 20)
///     .build();
///
/// let key = QueryKey::from_raw_query("SELECT sum(price) FROM lineitem");
/// let first = engine.get_or_execute(&key, Timestamp::from_secs(1), || {
///     (SizedPayload::new(256), ExecutionCost::from_blocks(12_000))
/// });
/// assert_eq!(first.source, LookupSource::Executed);
///
/// let again = engine.get_or_execute(&key, Timestamp::from_secs(2), || {
///     unreachable!("served from cache")
/// });
/// assert_eq!(again.source, LookupSource::Hit);
/// assert_eq!(engine.stats().hits, 1);
/// ```
pub struct Watchman<V> {
    inner: Arc<Inner<V>>,
}

impl<V> Clone for Watchman<V> {
    fn clone(&self) -> Self {
        Watchman {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<V> std::fmt::Debug for Watchman<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watchman")
            .field("shards", &self.inner.shards.len())
            .field("policy", &self.inner.policy)
            .finish_non_exhaustive()
    }
}

impl<V> Watchman<V>
where
    V: CachePayload + Send + Sync + 'static,
{
    /// Starts configuring an engine.
    pub fn builder() -> WatchmanBuilder<V> {
        WatchmanBuilder::default()
    }

    /// The policy every shard runs.
    pub fn policy(&self) -> PolicyKind {
        self.inner.policy
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    fn shard_index(&self, key: &QueryKey) -> usize {
        // Mix the signature before reduction: FNV's low bits correlate with
        // short key suffixes, and the paper's signature index already uses
        // the raw value.
        let mixed = key.signature().value().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((mixed >> 32) as usize) % self.inner.shards.len()
    }

    fn emit(&self, events: Vec<CacheEvent>) {
        if self.inner.observers.is_empty() {
            return;
        }
        for event in &events {
            for observer in &self.inner.observers {
                observer.on_cache_event(event);
            }
        }
    }

    fn insert_events(
        key: &QueryKey,
        size_bytes: u64,
        cost: ExecutionCost,
        outcome: &InsertOutcome,
        shard: usize,
    ) -> Vec<CacheEvent> {
        match outcome {
            InsertOutcome::Admitted { evicted } => {
                let mut events = Vec::with_capacity(evicted.len() + 1);
                for victim in evicted {
                    events.push(CacheEvent::Evicted {
                        key: victim.clone(),
                        shard,
                    });
                }
                events.push(CacheEvent::Admitted {
                    key: key.clone(),
                    size_bytes,
                    cost,
                    shard,
                });
                events
            }
            InsertOutcome::Rejected(reason) => {
                vec![CacheEvent::Rejected {
                    key: key.clone(),
                    reason: *reason,
                    shard,
                }]
            }
            // A refresh emits no Admitted event (the key was already
            // resident), but a refresh whose payload grew may still have
            // evicted victims — observers mirroring cache contents must see
            // those removals or they keep stale keys.
            InsertOutcome::AlreadyCached { evicted } => evicted
                .iter()
                .map(|victim| CacheEvent::Evicted {
                    key: victim.clone(),
                    shard,
                })
                .collect(),
        }
    }

    /// Counts one engine operation toward the rebalance interval, running a
    /// rebalance pass when the interval elapses.  Must be called with **no
    /// shard lock held**.
    fn tick(&self, now: Timestamp) {
        let Some(rb) = &self.inner.rebalancer else {
            return;
        };
        if self.inner.shards.len() < 2 {
            return;
        }
        let ops = rb.ops.fetch_add(1, Ordering::Relaxed) + 1;
        if ops % rb.config.interval == 0 {
            self.rebalance_pass(now, false);
        }
    }

    /// Runs one rebalance pass immediately, regardless of the operation
    /// counter, and returns what it did (or `None` when rebalancing is not
    /// configured, another pass is in flight, or the shard signals do not
    /// justify a move).  Exposed for deterministic tests and drivers that
    /// prefer explicit scheduling over the operation-count trigger.
    pub fn rebalance_now(&self, now: Timestamp) -> Option<RebalanceOutcome> {
        self.rebalance_pass(now, true)
    }

    fn rebalance_pass(&self, now: Timestamp, block: bool) -> Option<RebalanceOutcome> {
        let rb = self.inner.rebalancer.as_ref()?;
        if self.inner.shards.len() < 2 {
            return None;
        }
        // The pass state mutex serializes passes; an op-triggered pass that
        // finds it busy skips its turn rather than queueing behind it.
        let mut pass = if block {
            rb.pass
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
        } else {
            match rb.pass.try_lock() {
                Ok(guard) => guard,
                Err(_) => return None,
            }
        };

        let total = self.inner.total_capacity_bytes;
        let floor = rb.config.floor_bytes(total, self.inner.shards.len());
        let step = rb.config.step_bytes(total, self.inner.shards.len());

        // Observe every shard's signal (one shard lock at a time) and fold
        // it into the exponentially smoothed per-shard gain/loss estimates:
        // instantaneous profit estimates spike (one valuable eviction
        // inflates a shard's retained store for a few passes), and paying
        // real evictions for a spike is how a rebalancer starts thrashing.
        const SMOOTHING: f64 = 0.4;
        let mut signals = Vec::with_capacity(self.inner.shards.len());
        let mut cumulative = Vec::with_capacity(self.inner.shards.len());
        for (i, shard) in self.inner.shards.iter().enumerate() {
            let state = shard.lock();
            let mut signal =
                ShardSignal::observe(state.cache.as_ref(), pass.last_pressure[i], step, now);
            cumulative.push(pass.last_pressure[i] + signal.pressure);
            pass.smoothed_loss[i] =
                (1.0 - SMOOTHING) * pass.smoothed_loss[i] + SMOOTHING * signal.loss.value();
            signal.loss = crate::profit::Profit::new(pass.smoothed_loss[i]);
            if let Some(gain) = signal.gain {
                pass.smoothed_gain[i] =
                    (1.0 - SMOOTHING) * pass.smoothed_gain[i] + SMOOTHING * gain.value();
                signal.gain = Some(crate::profit::Profit::new(pass.smoothed_gain[i]));
            }
            signals.push(signal);
        }
        pass.last_pressure.copy_from_slice(&cumulative);
        pass.pass_index += 1;

        let (donor, recipient, amount) = plan_transfer(&signals, floor, step)?;
        // Refuse to reverse the most recent transfer for a while (see
        // `RebalancePassState::last_transfer`).
        const REVERSAL_COOLDOWN_PASSES: u64 = 24;
        if let Some((last_donor, last_recipient, at)) = pass.last_transfer {
            if donor == last_recipient
                && recipient == last_donor
                && pass.pass_index.saturating_sub(at) < REVERSAL_COOLDOWN_PASSES
            {
                return None;
            }
        }

        // Transfer under BOTH shard locks (acquired in index order, the same
        // order every multi-lock path uses) so Σ capacity == total holds at
        // every point another thread can observe.
        let (low, high) = (donor.min(recipient), donor.max(recipient));
        let mut low_guard = self.inner.shards[low].lock();
        let mut high_guard = self.inner.shards[high].lock();
        let (donor_state, recipient_state) = if donor < recipient {
            (&mut *low_guard, &mut *high_guard)
        } else {
            (&mut *high_guard, &mut *low_guard)
        };
        let donor_capacity = donor_state.cache.capacity_bytes();
        let recipient_capacity = recipient_state.cache.capacity_bytes();
        // Capacities only change under the pass mutex we hold, so the
        // planned amount is still valid; be defensive anyway.
        let amount = amount.min(donor_capacity.saturating_sub(floor));
        if amount == 0 {
            return None;
        }
        let evicted = donor_state
            .cache
            .set_capacity_bytes(donor_capacity - amount, now);
        recipient_state
            .cache
            .set_capacity_bytes(recipient_capacity + amount, now);
        // The donor's evictions are real removals: publish them (under the
        // donor's lock, like every other eviction) so observer mirrors stay
        // exact.
        if !self.inner.observers.is_empty() {
            let events = evicted
                .iter()
                .map(|key| CacheEvent::Evicted {
                    key: key.clone(),
                    shard: donor,
                })
                .collect();
            self.emit(events);
        }
        drop(high_guard);
        drop(low_guard);
        pass.last_transfer = Some((donor, recipient, pass.pass_index));
        rb.rebalances.fetch_add(1, Ordering::Relaxed);
        Some(RebalanceOutcome {
            donor,
            recipient,
            moved_bytes: amount,
            evicted,
        })
    }

    /// Looks up the retrieved set for `key`, recording one query reference.
    ///
    /// Returns a shared handle to the cached value on a hit.  Callers that
    /// execute the query themselves on a miss should prefer
    /// [`Watchman::get_or_execute`], which additionally deduplicates
    /// concurrent executions.
    pub fn get(&self, key: &QueryKey, now: Timestamp) -> Option<Arc<V>> {
        self.tick(now);
        let key = self.inner.normalizer.apply(key);
        let index = self.shard_index(&key);
        let mut shard = self.inner.shards[index].lock();
        shard.cache.get(&key, now).map(Arc::clone)
    }

    /// Offers a freshly retrieved set for admission after a miss.
    pub fn insert(
        &self,
        key: QueryKey,
        value: V,
        cost: ExecutionCost,
        now: Timestamp,
    ) -> InsertOutcome {
        self.insert_shared(key, Arc::new(value), cost, now)
    }

    /// Offers an already-shared retrieved set for admission.
    pub fn insert_shared(
        &self,
        key: QueryKey,
        value: Arc<V>,
        cost: ExecutionCost,
        now: Timestamp,
    ) -> InsertOutcome {
        self.tick(now);
        let key = self.inner.normalizer.apply(&key);
        let index = self.shard_index(&key);
        let size_bytes = value.size_bytes();
        let mut shard = self.inner.shards[index].lock();
        let outcome = shard.cache.insert(key.clone(), value, cost, now);
        // Emitted under the shard lock so observers see this shard's events
        // in cache order (see the events module docs).
        if !self.inner.observers.is_empty() {
            self.emit(Self::insert_events(&key, size_bytes, cost, &outcome, index));
        }
        outcome
    }

    /// Looks up `key`; on a miss, executes `fetch` to produce the retrieved
    /// set and its observed cost, offers it for admission, and returns it.
    ///
    /// Concurrent misses on the same query are **single-flight**: exactly one
    /// session runs `fetch` (outside any lock), the others block until its
    /// result is available and share it without executing.  If the leader's
    /// `fetch` panics, one waiter takes over as the new leader.
    pub fn get_or_execute<F>(&self, key: &QueryKey, now: Timestamp, fetch: F) -> Lookup<V>
    where
        F: FnOnce() -> (V, ExecutionCost),
    {
        self.tick(now);
        let key = self.inner.normalizer.apply(key);
        let index = self.shard_index(&key);
        let shard = &self.inner.shards[index];
        let mut fetch = Some(fetch);
        loop {
            // Fast path: hit, or join an existing flight.
            let flight = {
                let mut state = shard.lock();
                if let Some(value) = state.cache.get(&key, now) {
                    return Lookup {
                        value: Arc::clone(value),
                        source: LookupSource::Hit,
                        outcome: None,
                    };
                }
                match state.inflight.get(&key) {
                    Some(flight) => FlightRole::Waiter(Arc::clone(flight)),
                    None => {
                        let flight = Arc::new(Flight::new());
                        state.inflight.insert(key.clone(), Arc::clone(&flight));
                        FlightRole::Leader(flight)
                    }
                }
            };

            match flight {
                FlightRole::Waiter(flight) => match flight.wait() {
                    FlightOutcome::Done(value, cost) => {
                        // A coalesced wait is still one logical reference
                        // (one-call-per-reference protocol): account it as
                        // hit-equivalent at the leader's observed cost so
                        // CSR/HR denominators cover every reference.
                        {
                            let mut state = self.inner.shards[index].lock();
                            state.cache.record_coalesced_reference(cost);
                        }
                        self.inner.coalesced_misses.fetch_add(1, Ordering::Relaxed);
                        return Lookup {
                            value,
                            source: LookupSource::Coalesced,
                            outcome: None,
                        };
                    }
                    // The leader failed; loop back and try to become the
                    // new leader (or hit the cache if someone else already
                    // repaired it).
                    FlightOutcome::Abandoned => continue,
                },
                FlightRole::Leader(flight) => {
                    let guard = AbandonGuard {
                        shard,
                        key: &key,
                        flight: &flight,
                    };
                    let (value, cost) = (fetch.take().expect("leader runs fetch once"))();
                    let value = Arc::new(value);
                    let outcome = {
                        let mut state = shard.lock();
                        let outcome =
                            state
                                .cache
                                .insert(key.clone(), Arc::clone(&value), cost, now);
                        state.inflight.remove(&key);
                        // Emitted under the shard lock: observers see this
                        // shard's events in cache order.
                        if !self.inner.observers.is_empty() {
                            self.emit(Self::insert_events(
                                &key,
                                value.size_bytes(),
                                cost,
                                &outcome,
                                index,
                            ));
                        }
                        outcome
                    };
                    flight.complete(Arc::clone(&value), cost);
                    std::mem::forget(guard);
                    return Lookup {
                        value,
                        source: LookupSource::Executed,
                        outcome: Some(outcome),
                    };
                }
            }
        }
    }

    /// Removes the retrieved set for `key` because a warehouse update made it
    /// stale.  Returns whether it was resident.
    pub fn invalidate(&self, key: &QueryKey) -> bool {
        let key = self.inner.normalizer.apply(key);
        let index = self.shard_index(&key);
        let mut shard = self.inner.shards[index].lock();
        let removed = shard.cache.remove(&key);
        if removed && !self.inner.observers.is_empty() {
            self.emit(vec![CacheEvent::Invalidated { key, shard: index }]);
        }
        removed
    }

    /// Invalidates every cached set that `index` records as dependent on
    /// `relation`, returning the coherence report.
    ///
    /// This is the warehouse-update entry point of paper §3: the embedding
    /// application maintains the [`DependencyIndex`] (usually via a
    /// [`crate::coherence::DependencyObserver`] subscribed to this engine)
    /// and calls this when an update lands on a base relation.
    pub fn invalidate_relation(
        &self,
        index: &mut DependencyIndex,
        relation: &str,
    ) -> crate::coherence::InvalidationReport {
        crate::coherence::invalidate_affected(index, relation, |key| self.invalidate(key))
    }

    /// Whether a retrieved set for `key` is currently cached.
    pub fn contains(&self, key: &QueryKey) -> bool {
        let key = self.inner.normalizer.apply(key);
        let index = self.shard_index(&key);
        self.inner.shards[index].lock().cache.contains(&key)
    }

    /// Number of cached retrieved sets across all shards.
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().cache.len()).sum()
    }

    /// Whether no retrieved set is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently cached across all shards.
    pub fn used_bytes(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().cache.used_bytes())
            .sum()
    }

    /// Total configured capacity across all shards.
    ///
    /// Rebalancing moves capacity *between* shards but never changes the
    /// total, so this is a constant established at build time.
    pub fn capacity_bytes(&self) -> u64 {
        self.inner.total_capacity_bytes
    }

    /// The current per-shard capacities in bytes (an atomic snapshot: they
    /// always sum to [`Watchman::capacity_bytes`]).
    pub fn shard_capacities(&self) -> Vec<u64> {
        let guards: Vec<_> = self.inner.shards.iter().map(|s| s.lock()).collect();
        guards.iter().map(|s| s.cache.capacity_bytes()).collect()
    }

    /// Number of capacity transfers the rebalancer has performed.
    pub fn rebalance_count(&self) -> u64 {
        self.inner
            .rebalancer
            .as_ref()
            .map_or(0, |rb| rb.rebalances.load(Ordering::Relaxed))
    }

    /// Fraction of capacity currently in use.
    pub fn utilization(&self) -> f64 {
        let capacity = self.capacity_bytes();
        if capacity == 0 {
            0.0
        } else {
            self.used_bytes() as f64 / capacity as f64
        }
    }

    /// The keys currently cached, across all shards, in unspecified order.
    pub fn cached_keys(&self) -> Vec<QueryKey> {
        let mut keys = Vec::new();
        for shard in &self.inner.shards {
            keys.extend(shard.lock().cache.cached_keys());
        }
        keys
    }

    /// Removes every cached retrieved set (statistics are preserved).
    pub fn clear(&self) {
        for shard in &self.inner.shards {
            shard.lock().cache.clear();
        }
    }

    /// The aggregate statistics summed across shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::new();
        for shard in &self.inner.shards {
            total.merge(&shard.lock().cache.stats_snapshot());
        }
        total
    }

    /// A full owned snapshot: aggregate and per-shard counters, occupancies,
    /// capacities, single-flight coalescing and rebalancing activity.
    ///
    /// Every shard is locked for the duration of the read (in index order,
    /// consistent with the rebalancer's lock order), so the snapshot is
    /// internally consistent: per-shard capacities sum to the configured
    /// total even while a rebalance pass runs concurrently.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let guards: Vec<_> = self.inner.shards.iter().map(|s| s.lock()).collect();
        let mut total = CacheStats::new();
        let mut per_shard = Vec::with_capacity(guards.len());
        let mut per_shard_capacity = Vec::with_capacity(guards.len());
        let mut per_shard_used = Vec::with_capacity(guards.len());
        let mut used_bytes = 0;
        let mut capacity_bytes = 0;
        let mut entries = 0;
        for state in &guards {
            let stats = state.cache.stats_snapshot();
            total.merge(&stats);
            per_shard.push(stats);
            let used = state.cache.used_bytes();
            let capacity = state.cache.capacity_bytes();
            per_shard_used.push(used);
            per_shard_capacity.push(capacity);
            used_bytes += used;
            capacity_bytes += capacity;
            entries += state.cache.len();
        }
        StatsSnapshot {
            total,
            per_shard,
            per_shard_capacity,
            per_shard_used,
            used_bytes,
            capacity_bytes,
            entries,
            coalesced_misses: self.inner.coalesced_misses.load(Ordering::Relaxed),
            rebalances: self
                .inner
                .rebalancer
                .as_ref()
                .map_or(0, |rb| rb.rebalances.load(Ordering::Relaxed)),
        }
    }
}

enum FlightRole<V> {
    Leader(Arc<Flight<V>>),
    Waiter(Arc<Flight<V>>),
}

/// Abandons the leader's flight if its fetch panics, so waiters are not
/// stranded on a flight that will never complete.
struct AbandonGuard<'a, V> {
    shard: &'a Shard<V>,
    key: &'a QueryKey,
    flight: &'a Arc<Flight<V>>,
}

impl<V> Drop for AbandonGuard<'_, V> {
    fn drop(&mut self) {
        self.shard.lock().inflight.remove(self.key);
        self.flight.abandon();
    }
}
