//! The sharded concurrent cache engine.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::clock::Timestamp;
use crate::coherence::DependencyIndex;
use crate::engine::events::{CacheEvent, CacheObserver};
use crate::engine::policy_kind::PolicyKind;
use crate::engine::single_flight::{Flight, FlightOutcome};
use crate::key::QueryKey;
use crate::metrics::CacheStats;
use crate::policy::{InsertOutcome, QueryCache};
use crate::value::{CachePayload, ExecutionCost};

/// Pluggable key normalization applied to every key entering the engine.
///
/// The paper matches queries by exact (delimiter-compressed) text; §6 lists a
/// cheaper-than-rewrite equivalence test as future work.  The engine makes
/// that choice a configuration knob: [`KeyNormalizer::Exact`] is the paper's
/// behavior, [`KeyNormalizer::CanonicalSql`] routes every key through
/// [`crate::equivalence::canonical_key`] so syntactically different but
/// canonically equivalent queries share one cache entry, and
/// [`KeyNormalizer::Custom`] accepts any user function.
#[derive(Clone)]
pub enum KeyNormalizer {
    /// Exact query-ID matching (the paper's §3 lookup).
    Exact,
    /// Canonical-SQL matching via the [`crate::equivalence`] canonicalizer.
    CanonicalSql,
    /// A caller-supplied normalization function.
    Custom(Arc<dyn Fn(&QueryKey) -> QueryKey + Send + Sync>),
}

impl std::fmt::Debug for KeyNormalizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyNormalizer::Exact => f.write_str("Exact"),
            KeyNormalizer::CanonicalSql => f.write_str("CanonicalSql"),
            KeyNormalizer::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

impl KeyNormalizer {
    fn apply(&self, key: &QueryKey) -> QueryKey {
        match self {
            KeyNormalizer::Exact => key.clone(),
            KeyNormalizer::CanonicalSql => crate::equivalence::canonical_key(&key.to_string()),
            KeyNormalizer::Custom(normalize) => normalize(key),
        }
    }
}

/// Where a [`Watchman::get_or_execute`] result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupSource {
    /// The retrieved set was already cached.
    Hit,
    /// This session executed the query (it was the single-flight leader).
    Executed,
    /// Another session was already executing the same query; this session
    /// waited for its result instead of re-executing.
    Coalesced,
}

/// The result of a [`Watchman::get_or_execute`] call.
#[derive(Debug)]
pub struct Lookup<V> {
    /// The retrieved set, shared without copying.
    pub value: Arc<V>,
    /// How the value was obtained.
    pub source: LookupSource,
    /// The admission outcome, when this session executed the query.
    pub outcome: Option<InsertOutcome>,
}

/// An owned, aggregated snapshot of the engine's statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Counters summed across every shard.
    pub total: CacheStats,
    /// The per-shard counters, indexed by shard.
    pub per_shard: Vec<CacheStats>,
    /// Bytes currently cached, summed across shards.
    pub used_bytes: u64,
    /// Total configured capacity across shards.
    pub capacity_bytes: u64,
    /// Number of cached retrieved sets across shards.
    pub entries: usize,
    /// Number of misses whose execution was coalesced into another session's
    /// in-flight query instead of re-executing.
    pub coalesced_misses: u64,
}

impl StatsSnapshot {
    /// The aggregate hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        self.total.hit_ratio()
    }

    /// The aggregate cost savings ratio (the paper's primary metric).
    pub fn cost_savings_ratio(&self) -> f64 {
        self.total.cost_savings_ratio()
    }
}

struct ShardState<V> {
    cache: Box<dyn QueryCache<Arc<V>> + Send>,
    inflight: HashMap<QueryKey, Arc<Flight<V>>>,
}

struct Shard<V> {
    state: Mutex<ShardState<V>>,
}

impl<V> Shard<V> {
    fn lock(&self) -> MutexGuard<'_, ShardState<V>> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

struct Inner<V> {
    shards: Vec<Shard<V>>,
    observers: Vec<Arc<dyn CacheObserver>>,
    normalizer: KeyNormalizer,
    policy: PolicyKind,
    coalesced_misses: std::sync::atomic::AtomicU64,
}

/// Configures and builds a [`Watchman`] engine.
///
/// ```
/// use watchman_core::engine::{PolicyKind, Watchman};
/// use watchman_core::value::SizedPayload;
///
/// let engine: Watchman<SizedPayload> = Watchman::builder()
///     .shards(8)
///     .policy(PolicyKind::LncRa { k: 4 })
///     .capacity_bytes(64 << 20)
///     .build();
/// assert_eq!(engine.shard_count(), 8);
/// assert_eq!(engine.capacity_bytes(), 64 << 20);
/// ```
pub struct WatchmanBuilder<V> {
    shards: usize,
    policy: PolicyKind,
    capacity_bytes: u64,
    normalizer: KeyNormalizer,
    observers: Vec<Arc<dyn CacheObserver>>,
    _payload: std::marker::PhantomData<fn() -> V>,
}

impl<V> std::fmt::Debug for WatchmanBuilder<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WatchmanBuilder")
            .field("shards", &self.shards)
            .field("policy", &self.policy)
            .field("capacity_bytes", &self.capacity_bytes)
            .field("normalizer", &self.normalizer)
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl<V> Default for WatchmanBuilder<V> {
    fn default() -> Self {
        WatchmanBuilder {
            shards: 1,
            policy: PolicyKind::LNC_RA,
            capacity_bytes: 0,
            normalizer: KeyNormalizer::Exact,
            observers: Vec::new(),
            _payload: std::marker::PhantomData,
        }
    }
}

impl<V> WatchmanBuilder<V> {
    /// Sets the number of shards the keyspace is hash-partitioned across.
    ///
    /// Each shard holds an independent policy instance behind its own lock,
    /// so sessions touching different shards never contend.  Values are
    /// clamped to at least 1.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the replacement/admission policy every shard runs.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the total cache capacity, split evenly across shards.
    pub fn capacity_bytes(mut self, capacity_bytes: u64) -> Self {
        self.capacity_bytes = capacity_bytes;
        self
    }

    /// Sets the key-normalization step applied to every key.
    pub fn normalizer(mut self, normalizer: KeyNormalizer) -> Self {
        self.normalizer = normalizer;
        self
    }

    /// Routes every key through the [`crate::equivalence`] canonicalizer so
    /// canonically equivalent queries share one cache entry.
    pub fn canonical_sql_matching(self) -> Self {
        self.normalizer(KeyNormalizer::CanonicalSql)
    }

    /// Subscribes an observer to the engine's [`CacheEvent`] stream.
    pub fn observer(mut self, observer: Arc<dyn CacheObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Builds the engine.
    pub fn build(self) -> Watchman<V>
    where
        V: CachePayload + Send + Sync + 'static,
    {
        let shard_count = self.shards as u64;
        let base = self.capacity_bytes / shard_count;
        let remainder = self.capacity_bytes % shard_count;
        let shards = (0..self.shards)
            .map(|i| {
                // Distribute the division remainder so capacities sum exactly.
                let capacity = base + u64::from((i as u64) < remainder);
                Shard {
                    state: Mutex::new(ShardState {
                        cache: self.policy.build::<Arc<V>>(capacity),
                        inflight: HashMap::new(),
                    }),
                }
            })
            .collect();
        Watchman {
            inner: Arc::new(Inner {
                shards,
                observers: self.observers,
                normalizer: self.normalizer,
                policy: self.policy,
                coalesced_misses: std::sync::atomic::AtomicU64::new(0),
            }),
        }
    }
}

/// The WATCHMAN engine: a thread-safe, sharded retrieved-set cache facade.
///
/// This is the primary public API of the library — the "library of routines
/// that may be linked with an application" of paper §3, grown into a
/// concurrent engine:
///
/// * the keyspace is hash-partitioned by query signature across N shards,
///   each an independent [`PolicyKind`] instance behind its own lock;
/// * payloads are shared as `Arc<V>`, so hits never copy retrieved sets;
/// * [`Watchman::get_or_execute`] deduplicates concurrent misses on the same
///   query (*single-flight*): one session executes the warehouse query, the
///   rest wait for its result;
/// * admissions, rejections, evictions and invalidations are published to
///   [`CacheObserver`]s, which the coherence index and the buffer manager's
///   p₀-hint machinery subscribe to;
/// * statistics aggregate across shards into an owned [`StatsSnapshot`].
///
/// Handles are cheap to clone and share one underlying engine:
///
/// ```
/// use std::sync::Arc;
/// use watchman_core::engine::{LookupSource, PolicyKind, Watchman};
/// use watchman_core::prelude::*;
///
/// let engine: Watchman<SizedPayload> = Watchman::builder()
///     .shards(4)
///     .policy(PolicyKind::LncRa { k: 4 })
///     .capacity_bytes(1 << 20)
///     .build();
///
/// let key = QueryKey::from_raw_query("SELECT sum(price) FROM lineitem");
/// let first = engine.get_or_execute(&key, Timestamp::from_secs(1), || {
///     (SizedPayload::new(256), ExecutionCost::from_blocks(12_000))
/// });
/// assert_eq!(first.source, LookupSource::Executed);
///
/// let again = engine.get_or_execute(&key, Timestamp::from_secs(2), || {
///     unreachable!("served from cache")
/// });
/// assert_eq!(again.source, LookupSource::Hit);
/// assert_eq!(engine.stats().hits, 1);
/// ```
pub struct Watchman<V> {
    inner: Arc<Inner<V>>,
}

impl<V> Clone for Watchman<V> {
    fn clone(&self) -> Self {
        Watchman {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<V> std::fmt::Debug for Watchman<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watchman")
            .field("shards", &self.inner.shards.len())
            .field("policy", &self.inner.policy)
            .finish_non_exhaustive()
    }
}

impl<V> Watchman<V>
where
    V: CachePayload + Send + Sync + 'static,
{
    /// Starts configuring an engine.
    pub fn builder() -> WatchmanBuilder<V> {
        WatchmanBuilder::default()
    }

    /// The policy every shard runs.
    pub fn policy(&self) -> PolicyKind {
        self.inner.policy
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    fn shard_index(&self, key: &QueryKey) -> usize {
        // Mix the signature before reduction: FNV's low bits correlate with
        // short key suffixes, and the paper's signature index already uses
        // the raw value.
        let mixed = key.signature().value().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((mixed >> 32) as usize) % self.inner.shards.len()
    }

    fn emit(&self, events: Vec<CacheEvent>) {
        if self.inner.observers.is_empty() {
            return;
        }
        for event in &events {
            for observer in &self.inner.observers {
                observer.on_cache_event(event);
            }
        }
    }

    fn insert_events(
        key: &QueryKey,
        size_bytes: u64,
        cost: ExecutionCost,
        outcome: &InsertOutcome,
        shard: usize,
    ) -> Vec<CacheEvent> {
        match outcome {
            InsertOutcome::Admitted { evicted } => {
                let mut events = Vec::with_capacity(evicted.len() + 1);
                for victim in evicted {
                    events.push(CacheEvent::Evicted {
                        key: victim.clone(),
                        shard,
                    });
                }
                events.push(CacheEvent::Admitted {
                    key: key.clone(),
                    size_bytes,
                    cost,
                    shard,
                });
                events
            }
            InsertOutcome::Rejected(reason) => {
                vec![CacheEvent::Rejected {
                    key: key.clone(),
                    reason: *reason,
                    shard,
                }]
            }
            InsertOutcome::AlreadyCached => Vec::new(),
        }
    }

    /// Looks up the retrieved set for `key`, recording one query reference.
    ///
    /// Returns a shared handle to the cached value on a hit.  Callers that
    /// execute the query themselves on a miss should prefer
    /// [`Watchman::get_or_execute`], which additionally deduplicates
    /// concurrent executions.
    pub fn get(&self, key: &QueryKey, now: Timestamp) -> Option<Arc<V>> {
        let key = self.inner.normalizer.apply(key);
        let index = self.shard_index(&key);
        let mut shard = self.inner.shards[index].lock();
        shard.cache.get(&key, now).map(Arc::clone)
    }

    /// Offers a freshly retrieved set for admission after a miss.
    pub fn insert(
        &self,
        key: QueryKey,
        value: V,
        cost: ExecutionCost,
        now: Timestamp,
    ) -> InsertOutcome {
        self.insert_shared(key, Arc::new(value), cost, now)
    }

    /// Offers an already-shared retrieved set for admission.
    pub fn insert_shared(
        &self,
        key: QueryKey,
        value: Arc<V>,
        cost: ExecutionCost,
        now: Timestamp,
    ) -> InsertOutcome {
        let key = self.inner.normalizer.apply(&key);
        let index = self.shard_index(&key);
        let size_bytes = value.size_bytes();
        let mut shard = self.inner.shards[index].lock();
        let outcome = shard.cache.insert(key.clone(), value, cost, now);
        // Emitted under the shard lock so observers see this shard's events
        // in cache order (see the events module docs).
        if !self.inner.observers.is_empty() {
            self.emit(Self::insert_events(&key, size_bytes, cost, &outcome, index));
        }
        outcome
    }

    /// Looks up `key`; on a miss, executes `fetch` to produce the retrieved
    /// set and its observed cost, offers it for admission, and returns it.
    ///
    /// Concurrent misses on the same query are **single-flight**: exactly one
    /// session runs `fetch` (outside any lock), the others block until its
    /// result is available and share it without executing.  If the leader's
    /// `fetch` panics, one waiter takes over as the new leader.
    pub fn get_or_execute<F>(&self, key: &QueryKey, now: Timestamp, fetch: F) -> Lookup<V>
    where
        F: FnOnce() -> (V, ExecutionCost),
    {
        let key = self.inner.normalizer.apply(key);
        let index = self.shard_index(&key);
        let shard = &self.inner.shards[index];
        let mut fetch = Some(fetch);
        loop {
            // Fast path: hit, or join an existing flight.
            let flight = {
                let mut state = shard.lock();
                if let Some(value) = state.cache.get(&key, now) {
                    return Lookup {
                        value: Arc::clone(value),
                        source: LookupSource::Hit,
                        outcome: None,
                    };
                }
                match state.inflight.get(&key) {
                    Some(flight) => FlightRole::Waiter(Arc::clone(flight)),
                    None => {
                        let flight = Arc::new(Flight::new());
                        state.inflight.insert(key.clone(), Arc::clone(&flight));
                        FlightRole::Leader(flight)
                    }
                }
            };

            match flight {
                FlightRole::Waiter(flight) => match flight.wait() {
                    FlightOutcome::Done(value, _cost) => {
                        self.inner
                            .coalesced_misses
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        return Lookup {
                            value,
                            source: LookupSource::Coalesced,
                            outcome: None,
                        };
                    }
                    // The leader failed; loop back and try to become the
                    // new leader (or hit the cache if someone else already
                    // repaired it).
                    FlightOutcome::Abandoned => continue,
                },
                FlightRole::Leader(flight) => {
                    let guard = AbandonGuard {
                        shard,
                        key: &key,
                        flight: &flight,
                    };
                    let (value, cost) = (fetch.take().expect("leader runs fetch once"))();
                    let value = Arc::new(value);
                    let outcome = {
                        let mut state = shard.lock();
                        let outcome =
                            state
                                .cache
                                .insert(key.clone(), Arc::clone(&value), cost, now);
                        state.inflight.remove(&key);
                        // Emitted under the shard lock: observers see this
                        // shard's events in cache order.
                        if !self.inner.observers.is_empty() {
                            self.emit(Self::insert_events(
                                &key,
                                value.size_bytes(),
                                cost,
                                &outcome,
                                index,
                            ));
                        }
                        outcome
                    };
                    flight.complete(Arc::clone(&value), cost);
                    std::mem::forget(guard);
                    return Lookup {
                        value,
                        source: LookupSource::Executed,
                        outcome: Some(outcome),
                    };
                }
            }
        }
    }

    /// Removes the retrieved set for `key` because a warehouse update made it
    /// stale.  Returns whether it was resident.
    pub fn invalidate(&self, key: &QueryKey) -> bool {
        let key = self.inner.normalizer.apply(key);
        let index = self.shard_index(&key);
        let mut shard = self.inner.shards[index].lock();
        let removed = shard.cache.remove(&key);
        if removed && !self.inner.observers.is_empty() {
            self.emit(vec![CacheEvent::Invalidated { key, shard: index }]);
        }
        removed
    }

    /// Invalidates every cached set that `index` records as dependent on
    /// `relation`, returning the coherence report.
    ///
    /// This is the warehouse-update entry point of paper §3: the embedding
    /// application maintains the [`DependencyIndex`] (usually via a
    /// [`crate::coherence::DependencyObserver`] subscribed to this engine)
    /// and calls this when an update lands on a base relation.
    pub fn invalidate_relation(
        &self,
        index: &mut DependencyIndex,
        relation: &str,
    ) -> crate::coherence::InvalidationReport {
        crate::coherence::invalidate_affected(index, relation, |key| self.invalidate(key))
    }

    /// Whether a retrieved set for `key` is currently cached.
    pub fn contains(&self, key: &QueryKey) -> bool {
        let key = self.inner.normalizer.apply(key);
        let index = self.shard_index(&key);
        self.inner.shards[index].lock().cache.contains(&key)
    }

    /// Number of cached retrieved sets across all shards.
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().cache.len()).sum()
    }

    /// Whether no retrieved set is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently cached across all shards.
    pub fn used_bytes(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().cache.used_bytes())
            .sum()
    }

    /// Total configured capacity across all shards.
    pub fn capacity_bytes(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().cache.capacity_bytes())
            .sum()
    }

    /// Fraction of capacity currently in use.
    pub fn utilization(&self) -> f64 {
        let capacity = self.capacity_bytes();
        if capacity == 0 {
            0.0
        } else {
            self.used_bytes() as f64 / capacity as f64
        }
    }

    /// The keys currently cached, across all shards, in unspecified order.
    pub fn cached_keys(&self) -> Vec<QueryKey> {
        let mut keys = Vec::new();
        for shard in &self.inner.shards {
            keys.extend(shard.lock().cache.cached_keys());
        }
        keys
    }

    /// Removes every cached retrieved set (statistics are preserved).
    pub fn clear(&self) {
        for shard in &self.inner.shards {
            shard.lock().cache.clear();
        }
    }

    /// The aggregate statistics summed across shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::new();
        for shard in &self.inner.shards {
            total.merge(&shard.lock().cache.stats_snapshot());
        }
        total
    }

    /// A full owned snapshot: aggregate and per-shard counters, occupancy and
    /// single-flight coalescing.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let mut total = CacheStats::new();
        let mut per_shard = Vec::with_capacity(self.inner.shards.len());
        let mut used_bytes = 0;
        let mut capacity_bytes = 0;
        let mut entries = 0;
        for shard in &self.inner.shards {
            let state = shard.lock();
            let stats = state.cache.stats_snapshot();
            total.merge(&stats);
            per_shard.push(stats);
            used_bytes += state.cache.used_bytes();
            capacity_bytes += state.cache.capacity_bytes();
            entries += state.cache.len();
        }
        StatsSnapshot {
            total,
            per_shard,
            used_bytes,
            capacity_bytes,
            entries,
            coalesced_misses: self
                .inner
                .coalesced_misses
                .load(std::sync::atomic::Ordering::Relaxed),
        }
    }
}

enum FlightRole<V> {
    Leader(Arc<Flight<V>>),
    Waiter(Arc<Flight<V>>),
}

/// Abandons the leader's flight if its fetch panics, so waiters are not
/// stranded on a flight that will never complete.
struct AbandonGuard<'a, V> {
    shard: &'a Shard<V>,
    key: &'a QueryKey,
    flight: &'a Arc<Flight<V>>,
}

impl<V> Drop for AbandonGuard<'_, V> {
    fn drop(&mut self) {
        self.shard.lock().inflight.remove(self.key);
        self.flight.abandon();
    }
}
