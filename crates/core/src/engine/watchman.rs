//! The sharded concurrent cache engine.

use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::clock::Timestamp;
use crate::coherence::DependencyIndex;
use crate::engine::events::{CacheEvent, CacheObserver};
use crate::engine::failure::{
    BreakerState, CircuitBreaker, FailureConfig, FetchError, LookupError, NegativeCacheConfig,
    StalenessPolicy,
};
use crate::engine::policy_kind::PolicyKind;
use crate::engine::rebalance::{plan_transfer, RebalanceConfig, RebalanceOutcome, ShardSignal};
use crate::engine::single_flight::{Flight, FlightOutcome, LeaderOutcome, WaiterSlot};
use crate::key::QueryKey;
use crate::metrics::{CacheStats, FragmentationTracker};
use crate::policy::{InsertOutcome, QueryCache};
use crate::runtime::{Runtime, Sleep};
use crate::sync::{Mutex, MutexGuard};
use crate::telemetry::TraceKind;
use crate::value::{CachePayload, ExecutionCost};

/// Records a finished lookup into the outcome-keyed telemetry histograms
/// ([`crate::telemetry`]): latency from the session's first touch of the
/// engine to the resolved lookup, bucketed by how it resolved.  A coalesced
/// resolution also feeds the single-flight wait histogram — for a waiter,
/// the whole lookup *was* the wait.
fn record_lookup_telemetry(started: Option<Instant>, source: LookupSource) {
    let Some(started) = started else { return };
    let micros = crate::telemetry::elapsed_us(started);
    let telemetry = crate::telemetry::global();
    match source {
        LookupSource::Hit => telemetry.lookup_hit_us.record(micros),
        LookupSource::Executed => telemetry.lookup_executed_us.record(micros),
        LookupSource::Coalesced => {
            telemetry.lookup_coalesced_us.record(micros);
            telemetry.singleflight_wait_us.record(micros);
        }
        LookupSource::Stale => telemetry.lookup_stale_us.record(micros),
    }
}

/// The error-outcome analogue of [`record_lookup_telemetry`].
fn record_lookup_error_telemetry(started: Option<Instant>) {
    let Some(started) = started else { return };
    crate::telemetry::global()
        .lookup_error_us
        .record(crate::telemetry::elapsed_us(started));
}

/// Publishes an insert's side effects to telemetry: the shard's occupancy
/// gauge and the global eviction counter.  Called under the shard lock (both
/// targets are atomics, so this adds no lock class).
fn record_insert_telemetry(shard_index: usize, used_bytes: u64, outcome: &InsertOutcome) {
    let telemetry = crate::telemetry::global();
    telemetry.set_shard_used(shard_index, used_bytes);
    match outcome {
        InsertOutcome::Admitted { evicted } | InsertOutcome::AlreadyCached { evicted } => {
            if !evicted.is_empty() {
                telemetry.evictions.add(evicted.len() as u64);
            }
        }
        InsertOutcome::Rejected(_) => {}
    }
}

/// Pluggable key normalization applied to every key entering the engine.
///
/// The paper matches queries by exact (delimiter-compressed) text; §6 lists a
/// cheaper-than-rewrite equivalence test as future work.  The engine makes
/// that choice a configuration knob: [`KeyNormalizer::Exact`] is the paper's
/// behavior, [`KeyNormalizer::CanonicalSql`] routes every key through
/// [`crate::equivalence::canonical_key`] so syntactically different but
/// canonically equivalent queries share one cache entry, and
/// [`KeyNormalizer::Custom`] accepts any user function.
#[derive(Clone)]
pub enum KeyNormalizer {
    /// Exact query-ID matching (the paper's §3 lookup).
    Exact,
    /// Canonical-SQL matching via the [`crate::equivalence`] canonicalizer.
    CanonicalSql,
    /// A caller-supplied normalization function.
    Custom(Arc<dyn Fn(&QueryKey) -> QueryKey + Send + Sync>),
}

impl std::fmt::Debug for KeyNormalizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyNormalizer::Exact => f.write_str("Exact"),
            KeyNormalizer::CanonicalSql => f.write_str("CanonicalSql"),
            KeyNormalizer::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

impl KeyNormalizer {
    fn apply(&self, key: &QueryKey) -> QueryKey {
        match self {
            KeyNormalizer::Exact => key.clone(),
            KeyNormalizer::CanonicalSql => crate::equivalence::canonical_key(&key.to_string()),
            KeyNormalizer::Custom(normalize) => normalize(key),
        }
    }
}

/// Where a [`Watchman::get_or_execute`] result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupSource {
    /// The retrieved set was already cached.
    Hit,
    /// This session executed the query (it was the single-flight leader).
    Executed,
    /// Another session was already executing the same query; this session
    /// waited for its result instead of re-executing.
    Coalesced,
    /// The fetch failed (or the shard's circuit breaker was open) and the
    /// engine served the last-known-good value instead.  Stale serves pay
    /// their cost into `total_cost` but never into `saved_cost`, so they can
    /// not inflate the paper's cost-savings ratio.
    Stale,
}

/// The result of a [`Watchman::get_or_execute`] call.
#[derive(Debug)]
pub struct Lookup<V> {
    /// The retrieved set, shared without copying.
    pub value: Arc<V>,
    /// How the value was obtained.
    pub source: LookupSource,
    /// The admission outcome, when this session executed the query.
    pub outcome: Option<InsertOutcome>,
}

/// An owned, aggregated snapshot of the engine's statistics.
///
/// The snapshot is *atomic*: every shard is locked for the duration of the
/// read, so the per-shard capacities always sum to the configured total even
/// while a rebalance pass is moving bytes between shards.
///
/// Snapshots are serde-serializable: the server's `STATS` opcode, the
/// benchmark reports and the load generator all exchange this one schema
/// (JSON round-trips are exact — every counter is an integer and the float
/// accumulators print in shortest round-trip form).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Counters summed across every shard.
    pub total: CacheStats,
    /// The per-shard counters, indexed by shard.
    pub per_shard: Vec<CacheStats>,
    /// The per-shard capacities in bytes, indexed by shard.  With
    /// rebalancing enabled these drift away from the static `total/N` split
    /// toward the profit-heavy shards; they always sum to `capacity_bytes`.
    pub per_shard_capacity: Vec<u64>,
    /// The per-shard occupancies in bytes, indexed by shard.  Each entry is
    /// bounded by the matching `per_shard_capacity` entry.
    pub per_shard_used: Vec<u64>,
    /// Bytes currently cached, summed across shards.
    pub used_bytes: u64,
    /// Total configured capacity across shards.
    pub capacity_bytes: u64,
    /// Number of cached retrieved sets across shards.
    pub entries: usize,
    /// Number of misses whose execution was coalesced into another session's
    /// in-flight query instead of re-executing.  Equals `total.coalesced`.
    pub coalesced_misses: u64,
    /// Number of capacity transfers the rebalancer has performed.
    pub rebalances: u64,
    /// Number of fetch retries the fallible pipeline issued (attempts beyond
    /// the first, across every key).
    pub fetch_retries: u64,
    /// Number of lookups answered straight from the per-shard negative cache
    /// (a memoized recent fetch failure) without invoking the fetch closure.
    pub negative_hits: u64,
    /// Total circuit-breaker state transitions across shards
    /// (closed→open, open→half-open, half-open→closed, half-open→open).
    pub breaker_transitions: u64,
    /// Requests refused by the server's overload admission gate.  The engine
    /// itself never sheds — this is always zero in engine-produced snapshots
    /// and is filled in by `watchmand` before a STATS response is encoded.
    pub sheds: u64,
    /// Storage-fragmentation statistics (the paper's tertiary metric): each
    /// snapshot call records one `used/capacity` sample into the engine's
    /// tracker and copies the accumulated series out here.
    pub fragmentation: FragmentationTracker,
}

impl StatsSnapshot {
    /// The aggregate hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        self.total.hit_ratio()
    }

    /// The aggregate cost savings ratio (the paper's primary metric).
    pub fn cost_savings_ratio(&self) -> f64 {
        self.total.cost_savings_ratio()
    }
}

/// A last-known-good value retained for stale serving after its cache entry
/// is gone (evicted or superseded by a failing refetch).
struct StaleEntry<V> {
    value: Arc<V>,
    cost: ExecutionCost,
    size_bytes: u64,
    stored: Timestamp,
}

/// A memoized fetch failure with an expiry.
struct NegativeEntry {
    error: Arc<FetchError>,
    expires: Timestamp,
}

/// Per-shard failure-domain state.  Lives *inside* the shard mutex, so it
/// introduces no new lock class: every breaker/stale/negative operation
/// happens under the same shard lock that already guards the cache and the
/// in-flight map (see CONCURRENCY.md).
struct ShardFailureState<V> {
    breaker: Option<CircuitBreaker>,
    stale: HashMap<QueryKey, StaleEntry<V>>,
    stale_order: VecDeque<QueryKey>,
    negative: HashMap<QueryKey, NegativeEntry>,
    negative_order: VecDeque<QueryKey>,
}

impl<V> ShardFailureState<V> {
    fn new(breaker: Option<CircuitBreaker>) -> Self {
        ShardFailureState {
            breaker,
            stale: HashMap::new(),
            stale_order: VecDeque::new(),
            negative: HashMap::new(),
            negative_order: VecDeque::new(),
        }
    }

    /// Record a last-known-good value.  Bounded FIFO: the oldest first-stored
    /// key is dropped once the store exceeds the policy's `max_entries`.
    fn store_stale(
        &mut self,
        key: &QueryKey,
        value: Arc<V>,
        cost: ExecutionCost,
        size_bytes: u64,
        now: Timestamp,
        policy: &StalenessPolicy,
    ) {
        if policy.max_entries == 0 {
            return;
        }
        if self
            .stale
            .insert(
                key.clone(),
                StaleEntry {
                    value,
                    cost,
                    size_bytes,
                    stored: now,
                },
            )
            .is_some()
        {
            self.stale_order.retain(|k| k != key);
        }
        self.stale_order.push_back(key.clone());
        while self.stale.len() > policy.max_entries {
            match self.stale_order.pop_front() {
                Some(evict) => {
                    self.stale.remove(&evict);
                }
                None => break,
            }
        }
    }

    /// The last-known-good value for `key`, if one exists and the staleness
    /// policy judges it worth serving at `now`.
    fn stale_for(
        &self,
        key: &QueryKey,
        now: Timestamp,
        policy: &StalenessPolicy,
    ) -> Option<(Arc<V>, ExecutionCost)> {
        let entry = self.stale.get(key)?;
        if policy.worth_serving(entry.cost, entry.size_bytes, entry.stored, now) {
            Some((Arc::clone(&entry.value), entry.cost))
        } else {
            None
        }
    }

    fn drop_stale(&mut self, key: &QueryKey) {
        if self.stale.remove(key).is_some() {
            self.stale_order.retain(|k| k != key);
        }
    }

    /// Memoize a terminal fetch failure.  Bounded FIFO like the stale store.
    fn store_negative(
        &mut self,
        key: &QueryKey,
        error: Arc<FetchError>,
        now: Timestamp,
        config: &NegativeCacheConfig,
    ) {
        if config.max_entries == 0 || config.ttl_us == 0 {
            return;
        }
        let expires = now.advanced_by(config.ttl_us);
        if self
            .negative
            .insert(key.clone(), NegativeEntry { error, expires })
            .is_some()
        {
            self.negative_order.retain(|k| k != key);
        }
        self.negative_order.push_back(key.clone());
        while self.negative.len() > config.max_entries {
            match self.negative_order.pop_front() {
                Some(evict) => {
                    self.negative.remove(&evict);
                }
                None => break,
            }
        }
    }

    /// The memoized failure for `key` if it has not expired; expired entries
    /// are removed lazily on the way past.
    fn fresh_negative(&mut self, key: &QueryKey, now: Timestamp) -> Option<Arc<FetchError>> {
        match self.negative.get(key) {
            Some(entry) if now.as_micros() < entry.expires.as_micros() => {
                Some(Arc::clone(&entry.error))
            }
            Some(_) => {
                self.negative.remove(key);
                self.negative_order.retain(|k| k != key);
                None
            }
            None => None,
        }
    }

    fn drop_negative(&mut self, key: &QueryKey) {
        if self.negative.remove(key).is_some() {
            self.negative_order.retain(|k| k != key);
        }
    }
}

struct ShardState<V> {
    cache: Box<dyn QueryCache<Arc<V>> + Send>,
    inflight: HashMap<QueryKey, Arc<Flight<V>>>,
    failure: ShardFailureState<V>,
}

struct Shard<V> {
    state: Mutex<ShardState<V>>,
}

impl<V> Shard<V> {
    fn lock(&self) -> MutexGuard<'_, ShardState<V>> {
        self.state.lock()
    }
}

/// The rebalancer's mutable bookkeeping, behind one mutex that also
/// serializes passes.
struct RebalancePassState {
    /// Per-shard cumulative pressure (rejections + evictions) observed at
    /// the previous pass.
    last_pressure: Vec<u64>,
    /// Exponentially smoothed per-shard step gain ([`QueryCache::grow_gain`]).
    /// Instantaneous profit estimates spike transiently — a single valuable
    /// eviction inflates a shard's retained store for several passes — and
    /// paying real evictions for a spike is how a rebalancer starts
    /// thrashing.  Smoothing across passes lets only *persistent* starvation
    /// attract capacity.
    smoothed_gain: Vec<f64>,
    /// Exponentially smoothed per-shard step loss ([`QueryCache::shrink_loss`]).
    smoothed_loss: Vec<f64>,
    /// Number of passes run (including ones that moved nothing).
    pass_index: u64,
    /// The last executed transfer, as (donor, recipient, pass_index).
    /// Shrinking a shard feeds its own starvation signal (the evicted sets
    /// land in its retained store), so an unchecked planner slowly sloshes
    /// capacity back and forth between two shards; refusing to reverse the
    /// most recent transfer for a cooldown period breaks that feedback loop.
    last_transfer: Option<(usize, usize, u64)>,
}

struct RebalancerState {
    config: RebalanceConfig,
    rebalances: AtomicU64,
    /// Passes run (including ones that moved nothing), for observability and
    /// for the no-pass-on-request-path tests.
    passes: AtomicU64,
    pass: Mutex<RebalancePassState>,
    /// Thread identities of every pass, recorded in unit tests to prove that
    /// passes never run on a session thread.
    #[cfg(test)]
    pass_threads: Mutex<Vec<std::thread::ThreadId>>,
}

/// A one-shot signal the engine fires at drop to stop its background
/// rebalance task, even when the task lives on a *shared* runtime that
/// outlives the engine.
#[derive(Default)]
struct ShutdownCell {
    fired: AtomicBool,
    waker: Mutex<Option<Waker>>,
}

impl ShutdownCell {
    fn register(&self, waker: &Waker) {
        *self.waker.lock() = Some(waker.clone());
    }

    fn fire(&self) {
        self.fired.store(true, Ordering::Release);
        let waker = self.waker.lock().take();
        if let Some(waker) = waker {
            waker.wake();
        }
    }

    fn is_fired(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }
}

/// Where the engine's runtime comes from: an externally shared one, or a
/// lazily created owned pool (no threads are spawned until the first async
/// leader or background task needs them — purely synchronous, hit-heavy
/// usage never pays for a pool).
struct RuntimeSlot {
    external: Option<Arc<Runtime>>,
    workers: usize,
    own: OnceLock<Arc<Runtime>>,
}

impl RuntimeSlot {
    fn get(&self) -> Arc<Runtime> {
        match &self.external {
            Some(runtime) => Arc::clone(runtime),
            None => Arc::clone(
                self.own
                    .get_or_init(|| Arc::new(Runtime::with_workers(self.workers))),
            ),
        }
    }
}

struct Inner<V> {
    shards: Vec<Shard<V>>,
    observers: Vec<Arc<dyn CacheObserver>>,
    normalizer: KeyNormalizer,
    policy: PolicyKind,
    total_capacity_bytes: u64,
    coalesced_misses: AtomicU64,
    /// Failure-domain configuration for the fallible fetch pipeline.
    failure: FailureConfig,
    /// Fetch retries issued by the fallible pipeline (attempts beyond the
    /// first), across every key and shard.
    fetch_retries: AtomicU64,
    /// Lookups answered straight from a shard's negative cache.
    negative_hits: AtomicU64,
    rebalancer: Option<RebalancerState>,
    runtime: RuntimeSlot,
    /// The latest logical timestamp any operation carried, in microseconds.
    /// The background rebalance task evaluates victim profits "now", and the
    /// engine's notion of now is whatever the sessions last said it was.
    latest_now: AtomicU64,
    /// Fired on drop so the background rebalance task exits promptly even on
    /// a shared runtime.
    rebalance_shutdown: OnceLock<Arc<ShutdownCell>>,
    /// Storage-fragmentation sample series, fed by [`Watchman::stats_snapshot`]
    /// (one `used/capacity` sample per snapshot).  A leaf lock: taken while
    /// holding every shard lock, never the other way around.
    fragmentation: Mutex<FragmentationTracker>,
}

impl<V> Drop for Inner<V> {
    fn drop(&mut self) {
        if let Some(cell) = self.rebalance_shutdown.get() {
            cell.fire();
        }
    }
}

/// Configures and builds a [`Watchman`] engine.
///
/// ```
/// use watchman_core::engine::{PolicyKind, Watchman};
/// use watchman_core::value::SizedPayload;
///
/// let engine: Watchman<SizedPayload> = Watchman::builder()
///     .shards(8)
///     .policy(PolicyKind::LncRa { k: 4 })
///     .capacity_bytes(64 << 20)
///     .build();
/// assert_eq!(engine.shard_count(), 8);
/// assert_eq!(engine.capacity_bytes(), 64 << 20);
/// ```
pub struct WatchmanBuilder<V> {
    shards: usize,
    policy: PolicyKind,
    capacity_bytes: u64,
    normalizer: KeyNormalizer,
    observers: Vec<Arc<dyn CacheObserver>>,
    rebalance: Option<RebalanceConfig>,
    runtime: Option<Arc<Runtime>>,
    runtime_workers: usize,
    failure: FailureConfig,
    _payload: std::marker::PhantomData<fn() -> V>,
}

impl<V> std::fmt::Debug for WatchmanBuilder<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WatchmanBuilder")
            .field("shards", &self.shards)
            .field("policy", &self.policy)
            .field("capacity_bytes", &self.capacity_bytes)
            .field("normalizer", &self.normalizer)
            .field("observers", &self.observers.len())
            .field("rebalance", &self.rebalance)
            .field("runtime", &self.runtime.is_some())
            .field("runtime_workers", &self.runtime_workers)
            .finish()
    }
}

impl<V> Default for WatchmanBuilder<V> {
    fn default() -> Self {
        WatchmanBuilder {
            shards: 1,
            policy: PolicyKind::LNC_RA,
            capacity_bytes: 0,
            normalizer: KeyNormalizer::Exact,
            observers: Vec::new(),
            rebalance: None,
            runtime: None,
            runtime_workers: 2,
            failure: FailureConfig::default(),
            _payload: std::marker::PhantomData,
        }
    }
}

impl<V> WatchmanBuilder<V> {
    /// Sets the number of shards the keyspace is hash-partitioned across.
    ///
    /// Each shard holds an independent policy instance behind its own lock,
    /// so sessions touching different shards never contend.  Values are
    /// clamped to at least 1.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the replacement/admission policy every shard runs.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the total cache capacity, split evenly across shards.
    pub fn capacity_bytes(mut self, capacity_bytes: u64) -> Self {
        self.capacity_bytes = capacity_bytes;
        self
    }

    /// Sets the key-normalization step applied to every key.
    pub fn normalizer(mut self, normalizer: KeyNormalizer) -> Self {
        self.normalizer = normalizer;
        self
    }

    /// Routes every key through the [`crate::equivalence`] canonicalizer so
    /// canonically equivalent queries share one cache entry.
    pub fn canonical_sql_matching(self) -> Self {
        self.normalizer(KeyNormalizer::CanonicalSql)
    }

    /// Subscribes an observer to the engine's [`CacheEvent`] stream.
    pub fn observer(mut self, observer: Arc<dyn CacheObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Enables profit-aware capacity rebalancing between shards.
    ///
    /// Without this, every shard keeps its static `total/N` split for the
    /// engine's lifetime.  Passes run on a background runtime task every
    /// [`RebalanceConfig::period`] (never on a session's request path); a
    /// `manual()` config leaves scheduling to explicit
    /// [`Watchman::rebalance_now`] calls.  See [`RebalanceConfig`] for the
    /// profit signal and pass mechanics.
    pub fn rebalance(mut self, config: RebalanceConfig) -> Self {
        self.rebalance = Some(config.sanitized());
        self
    }

    /// Shares an externally owned [`Runtime`] instead of letting the engine
    /// lazily create its own pool.  Several engines may share one runtime;
    /// each engine's background task still stops when *its* engine is
    /// dropped.
    pub fn runtime(mut self, runtime: Arc<Runtime>) -> Self {
        self.runtime = Some(runtime);
        self
    }

    /// Sets the worker count of the engine's own lazily created runtime
    /// (ignored when [`WatchmanBuilder::runtime`] supplies one).  Each
    /// in-flight fetch occupies a worker for its duration, so this is the
    /// engine's execution multiprogramming level.  Defaults to 2.
    pub fn runtime_workers(mut self, workers: usize) -> Self {
        self.runtime_workers = workers.max(1);
        self
    }

    /// Configures the failure domain of the fallible fetch pipeline
    /// ([`Watchman::try_get_or_execute`] /
    /// [`Watchman::try_get_or_execute_async`]): the leader's retry policy,
    /// the per-shard circuit breaker, the staleness policy that gates
    /// last-known-good serving, and the negative cache for memoized
    /// failures.  The default config retries transient errors with seeded
    /// exponential backoff but enables neither breaker nor stale serving.
    pub fn failure(mut self, config: FailureConfig) -> Self {
        self.failure = config;
        self
    }

    /// Builds the engine.
    ///
    /// The configured capacity is split evenly across shards (any division
    /// remainder goes to the first shards, so the shard capacities always sum
    /// to the configured total).  When the total capacity is positive but
    /// smaller than the shard count, the shard count is clamped down so that
    /// no shard is created with zero bytes — an even `total/N` split would
    /// otherwise leave shards that reject every insert with `ZeroCapacity`.
    pub fn build(self) -> Watchman<V>
    where
        V: CachePayload + Send + Sync + 'static,
    {
        // Clamp away zero-byte shards: with 0 < capacity < shards an even
        // split would hand some shards 0 bytes, silently voiding the slice of
        // the keyspace hashed onto them.
        let shard_count = if self.capacity_bytes == 0 {
            self.shards
        } else {
            self.shards
                .min(usize::try_from(self.capacity_bytes).unwrap_or(usize::MAX))
                .max(1)
        };
        let base = self.capacity_bytes / shard_count as u64;
        let remainder = self.capacity_bytes % shard_count as u64;
        let shards: Vec<Shard<V>> = (0..shard_count)
            .map(|i| {
                // Distribute the division remainder so capacities sum exactly.
                let capacity = base + u64::from((i as u64) < remainder);
                Shard {
                    // The shard index is the lock's declared rank: whenever
                    // two shard locks nest (rebalance transfers, atomic
                    // snapshots) they must be acquired in index order.
                    state: Mutex::with_rank(
                        u32::try_from(i).unwrap_or(u32::MAX),
                        ShardState {
                            cache: self.policy.build::<Arc<V>>(capacity),
                            inflight: HashMap::new(),
                            failure: ShardFailureState::new(
                                self.failure.breaker.clone().map(CircuitBreaker::new),
                            ),
                        },
                    ),
                }
            })
            .collect();
        let rebalancer = self.rebalance.as_ref().map(|config| RebalancerState {
            config: config.clone(),
            rebalances: AtomicU64::new(0),
            passes: AtomicU64::new(0),
            pass: Mutex::new(RebalancePassState {
                last_pressure: vec![0; shard_count],
                smoothed_gain: vec![0.0; shard_count],
                smoothed_loss: vec![0.0; shard_count],
                pass_index: 0,
                last_transfer: None,
            }),
            #[cfg(test)]
            pass_threads: Mutex::new(Vec::new()),
        });
        let engine = Watchman {
            inner: Arc::new(Inner {
                shards,
                observers: self.observers,
                normalizer: self.normalizer,
                policy: self.policy,
                total_capacity_bytes: self.capacity_bytes,
                coalesced_misses: AtomicU64::new(0),
                failure: self.failure,
                fetch_retries: AtomicU64::new(0),
                negative_hits: AtomicU64::new(0),
                rebalancer,
                runtime: RuntimeSlot {
                    external: self.runtime,
                    workers: self.runtime_workers,
                    own: OnceLock::new(),
                },
                latest_now: AtomicU64::new(0),
                rebalance_shutdown: OnceLock::new(),
                fragmentation: Mutex::new(FragmentationTracker::new()),
            }),
        };
        crate::telemetry::global()
            .shard_count
            .set(shard_count as u64);
        if let Some(period) = self
            .rebalance
            .and_then(|config| config.period)
            .filter(|_| shard_count >= 2)
        {
            engine.spawn_background_rebalancer(period);
        }
        engine
    }
}

/// The WATCHMAN engine: a thread-safe, sharded retrieved-set cache facade.
///
/// This is the primary public API of the library — the "library of routines
/// that may be linked with an application" of paper §3, grown into a
/// concurrent engine:
///
/// * the keyspace is hash-partitioned by query signature across N shards,
///   each an independent [`PolicyKind`] instance behind its own lock;
/// * payloads are shared as `Arc<V>`, so hits never copy retrieved sets;
/// * [`Watchman::get_or_execute`] / [`Watchman::get_or_execute_async`]
///   deduplicate concurrent misses on the same query (*single-flight*):
///   exactly one session executes the warehouse query, the rest share its
///   result.  Both entry points drive the **same poll-based implementation**;
///   the synchronous one is a [`block_on`](crate::runtime::block_on) shim,
///   the asynchronous one suspends waiting sessions as futures on the
///   engine's [`Runtime`] instead of parking OS threads;
/// * admissions, rejections, evictions and invalidations are published to
///   [`CacheObserver`]s, which the coherence index and the buffer manager's
///   p₀-hint machinery subscribe to;
/// * statistics aggregate across shards into an owned [`StatsSnapshot`].
///
/// Handles are cheap to clone and share one underlying engine:
///
/// ```
/// use std::sync::Arc;
/// use watchman_core::engine::{LookupSource, PolicyKind, Watchman};
/// use watchman_core::prelude::*;
///
/// let engine: Watchman<SizedPayload> = Watchman::builder()
///     .shards(4)
///     .policy(PolicyKind::LncRa { k: 4 })
///     .capacity_bytes(1 << 20)
///     .build();
///
/// let key = QueryKey::from_raw_query("SELECT sum(price) FROM lineitem");
/// let first = engine.get_or_execute(&key, Timestamp::from_secs(1), || {
///     (SizedPayload::new(256), ExecutionCost::from_blocks(12_000))
/// });
/// assert_eq!(first.source, LookupSource::Executed);
///
/// let again = engine.get_or_execute(&key, Timestamp::from_secs(2), || {
///     unreachable!("served from cache")
/// });
/// assert_eq!(again.source, LookupSource::Hit);
/// assert_eq!(engine.stats().hits, 1);
/// ```
pub struct Watchman<V> {
    inner: Arc<Inner<V>>,
}

impl<V> Clone for Watchman<V> {
    fn clone(&self) -> Self {
        Watchman {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<V> std::fmt::Debug for Watchman<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watchman")
            .field("shards", &self.inner.shards.len())
            .field("policy", &self.inner.policy)
            .finish_non_exhaustive()
    }
}

impl<V> Watchman<V>
where
    V: CachePayload + Send + Sync + 'static,
{
    /// Starts configuring an engine.
    pub fn builder() -> WatchmanBuilder<V> {
        WatchmanBuilder::default()
    }

    /// The policy every shard runs.
    pub fn policy(&self) -> PolicyKind {
        self.inner.policy
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The runtime the engine spawns fetches and background tasks on.
    ///
    /// Lazily created on first use unless [`WatchmanBuilder::runtime`]
    /// supplied a shared one.  Applications can spawn their own session
    /// tasks here so sessions and fetches share one worker pool.
    pub fn runtime(&self) -> Arc<Runtime> {
        self.inner.runtime.get()
    }

    fn shard_index(&self, key: &QueryKey) -> usize {
        // Mix the signature before reduction: FNV's low bits correlate with
        // short key suffixes, and the paper's signature index already uses
        // the raw value.
        let mixed = key.signature().value().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((mixed >> 32) as usize) % self.inner.shards.len()
    }

    /// Folds an operation's logical timestamp into the engine's notion of
    /// "now" (used by background rebalance passes).
    fn observe_now(&self, now: Timestamp) {
        self.inner
            .latest_now
            .fetch_max(now.as_micros(), Ordering::Relaxed);
    }

    fn emit(&self, events: Vec<CacheEvent>) {
        if self.inner.observers.is_empty() {
            return;
        }
        for event in &events {
            for observer in &self.inner.observers {
                observer.on_cache_event(event);
            }
        }
    }

    fn insert_events(
        key: &QueryKey,
        size_bytes: u64,
        cost: ExecutionCost,
        outcome: &InsertOutcome,
        shard: usize,
    ) -> Vec<CacheEvent> {
        match outcome {
            InsertOutcome::Admitted { evicted } => {
                let mut events = Vec::with_capacity(evicted.len() + 1);
                for victim in evicted {
                    events.push(CacheEvent::Evicted {
                        key: victim.clone(),
                        shard,
                    });
                }
                events.push(CacheEvent::Admitted {
                    key: key.clone(),
                    size_bytes,
                    cost,
                    shard,
                });
                events
            }
            InsertOutcome::Rejected(reason) => {
                vec![CacheEvent::Rejected {
                    key: key.clone(),
                    reason: *reason,
                    shard,
                }]
            }
            // A refresh emits no Admitted event (the key was already
            // resident), but a refresh whose payload grew may still have
            // evicted victims — observers mirroring cache contents must see
            // those removals or they keep stale keys.
            InsertOutcome::AlreadyCached { evicted } => evicted
                .iter()
                .map(|victim| CacheEvent::Evicted {
                    key: victim.clone(),
                    shard,
                })
                .collect(),
        }
    }

    /// Spawns the background rebalance task on the engine's runtime.  The
    /// task holds only weak references, so it never keeps the engine (or a
    /// shared runtime) alive; the engine's drop fires its shutdown cell.
    fn spawn_background_rebalancer(&self, period: Duration) {
        let cell = Arc::new(ShutdownCell::default());
        self.inner
            .rebalance_shutdown
            .set(Arc::clone(&cell))
            .ok()
            .expect("background rebalancer spawned once");
        let runtime = self.runtime();
        let task = RebalanceTask {
            engine: Arc::downgrade(&self.inner),
            shutdown: cell,
            runtime: runtime.inner_handle(),
            sleep: runtime.sleep(period),
            period,
        };
        runtime.spawn(task);
    }

    /// Runs one rebalance pass immediately and returns what it did (or
    /// `None` when rebalancing is not configured or the shard signals do not
    /// justify a move).
    ///
    /// This is the *driver-scheduled* entry point: deterministic replays
    /// (the simulator's shard sweep) and tests call it explicitly instead of
    /// configuring a background period.  Sessions never trigger passes —
    /// `get`/`insert`/`get_or_execute` carry no rebalancing work at all.
    pub fn rebalance_now(&self, now: Timestamp) -> Option<RebalanceOutcome> {
        self.rebalance_pass(now)
    }

    fn rebalance_pass(&self, now: Timestamp) -> Option<RebalanceOutcome> {
        let rb = self.inner.rebalancer.as_ref()?;
        if self.inner.shards.len() < 2 {
            return None;
        }
        // The pass state mutex serializes passes (the background task and
        // any driver-scheduled calls).
        let mut pass = rb.pass.lock();
        rb.passes.fetch_add(1, Ordering::Relaxed);
        #[cfg(test)]
        rb.pass_threads.lock().push(std::thread::current().id());

        let total = self.inner.total_capacity_bytes;
        let floor = rb.config.floor_bytes(total, self.inner.shards.len());
        let step = rb.config.step_bytes(total, self.inner.shards.len());

        // Observe every shard's signal (one shard lock at a time) and fold
        // it into the exponentially smoothed per-shard gain/loss estimates:
        // instantaneous profit estimates spike (one valuable eviction
        // inflates a shard's retained store for a few passes), and paying
        // real evictions for a spike is how a rebalancer starts thrashing.
        const SMOOTHING: f64 = 0.4;
        let mut signals = Vec::with_capacity(self.inner.shards.len());
        let mut cumulative = Vec::with_capacity(self.inner.shards.len());
        for (i, shard) in self.inner.shards.iter().enumerate() {
            let mut state = shard.lock();
            let mut signal =
                ShardSignal::observe(state.cache.as_mut(), pass.last_pressure[i], step, now);
            cumulative.push(pass.last_pressure[i] + signal.pressure);
            pass.smoothed_loss[i] =
                (1.0 - SMOOTHING) * pass.smoothed_loss[i] + SMOOTHING * signal.loss.value();
            signal.loss = crate::profit::Profit::new(pass.smoothed_loss[i]);
            if let Some(gain) = signal.gain {
                pass.smoothed_gain[i] =
                    (1.0 - SMOOTHING) * pass.smoothed_gain[i] + SMOOTHING * gain.value();
                signal.gain = Some(crate::profit::Profit::new(pass.smoothed_gain[i]));
            }
            signals.push(signal);
        }
        pass.last_pressure.copy_from_slice(&cumulative);
        pass.pass_index += 1;

        let (donor, recipient, amount) = plan_transfer(&signals, floor, step)?;
        // Refuse to reverse the most recent transfer for a while (see
        // `RebalancePassState::last_transfer`).
        const REVERSAL_COOLDOWN_PASSES: u64 = 24;
        if let Some((last_donor, last_recipient, at)) = pass.last_transfer {
            if donor == last_recipient
                && recipient == last_donor
                && pass.pass_index.saturating_sub(at) < REVERSAL_COOLDOWN_PASSES
            {
                return None;
            }
        }

        // Transfer under BOTH shard locks (acquired in index order, the same
        // order every multi-lock path uses) so Σ capacity == total holds at
        // every point another thread can observe.
        let (low, high) = (donor.min(recipient), donor.max(recipient));
        let mut low_guard = self.inner.shards[low].lock();
        let mut high_guard = self.inner.shards[high].lock();
        let (donor_state, recipient_state) = if donor < recipient {
            (&mut *low_guard, &mut *high_guard)
        } else {
            (&mut *high_guard, &mut *low_guard)
        };
        let donor_capacity = donor_state.cache.capacity_bytes();
        let recipient_capacity = recipient_state.cache.capacity_bytes();
        // Capacities only change under the pass mutex we hold, so the
        // planned amount is still valid; be defensive anyway.
        let amount = amount.min(donor_capacity.saturating_sub(floor));
        if amount == 0 {
            return None;
        }
        let evicted = donor_state
            .cache
            .set_capacity_bytes(donor_capacity - amount, now);
        recipient_state
            .cache
            .set_capacity_bytes(recipient_capacity + amount, now);
        // The donor's evictions are real removals: publish them (under the
        // donor's lock, like every other eviction) so observer mirrors stay
        // exact.
        if !self.inner.observers.is_empty() {
            let events = evicted
                .iter()
                .map(|key| CacheEvent::Evicted {
                    key: key.clone(),
                    shard: donor,
                })
                .collect();
            self.emit(events);
        }
        drop(high_guard);
        drop(low_guard);
        pass.last_transfer = Some((donor, recipient, pass.pass_index));
        rb.rebalances.fetch_add(1, Ordering::Relaxed);
        Some(RebalanceOutcome {
            donor,
            recipient,
            moved_bytes: amount,
            evicted,
        })
    }

    /// Looks up the retrieved set for `key`, recording one query reference.
    ///
    /// Returns a shared handle to the cached value on a hit.  Callers that
    /// execute the query themselves on a miss should prefer
    /// [`Watchman::get_or_execute`], which additionally deduplicates
    /// concurrent executions.
    pub fn get(&self, key: &QueryKey, now: Timestamp) -> Option<Arc<V>> {
        self.observe_now(now);
        let key = self.inner.normalizer.apply(key);
        let index = self.shard_index(&key);
        let mut shard = self.inner.shards[index].lock();
        shard.cache.get(&key, now).map(Arc::clone)
    }

    /// Offers a freshly retrieved set for admission after a miss.
    pub fn insert(
        &self,
        key: QueryKey,
        value: V,
        cost: ExecutionCost,
        now: Timestamp,
    ) -> InsertOutcome {
        self.insert_shared(key, Arc::new(value), cost, now)
    }

    /// Offers an already-shared retrieved set for admission.
    pub fn insert_shared(
        &self,
        key: QueryKey,
        value: Arc<V>,
        cost: ExecutionCost,
        now: Timestamp,
    ) -> InsertOutcome {
        self.observe_now(now);
        let key = self.inner.normalizer.apply(&key);
        let index = self.shard_index(&key);
        let size_bytes = value.size_bytes();
        let mut shard = self.inner.shards[index].lock();
        let outcome = shard.cache.insert(key.clone(), value, cost, now);
        record_insert_telemetry(index, shard.cache.used_bytes(), &outcome);
        // Emitted under the shard lock so observers see this shard's events
        // in cache order (see the events module docs).
        if !self.inner.observers.is_empty() {
            self.emit(Self::insert_events(&key, size_bytes, cost, &outcome, index));
        }
        outcome
    }

    /// Looks up `key`; on a miss, executes `fetch` to produce the retrieved
    /// set and its observed cost, offers it for admission, and returns it.
    ///
    /// Concurrent misses on the same query are **single-flight**: exactly one
    /// session runs `fetch` (outside any lock), the others wait for its
    /// result and share it without executing.  If the leader's `fetch`
    /// panics, exactly one waiter is woken to take over as the new leader
    /// and the panic propagates out of the leader's call.
    ///
    /// This is the synchronous front door: a
    /// [`block_on`](crate::runtime::block_on) shim over the same poll-based
    /// implementation [`Watchman::get_or_execute_async`] returns, with the
    /// one difference that the leader's `fetch` runs *inline on the calling
    /// thread* (so `fetch` needs no `Send + 'static` bounds and a
    /// single-threaded replay is fully deterministic).
    pub fn get_or_execute<F>(&self, key: &QueryKey, now: Timestamp, fetch: F) -> Lookup<V>
    where
        F: FnOnce() -> (V, ExecutionCost) + Unpin,
    {
        self.observe_now(now);
        let started = crate::telemetry::now();
        let key = self.inner.normalizer.apply(key);
        let shard = self.shard_index(&key);
        // Hit fast path: the engine's hottest operation needs none of the
        // future machinery (engine clone, waker, pinning).  This is exactly
        // the check the future's Start state performs; on a miss the Start
        // state repeats the `get`, which is stat-neutral (misses are
        // recorded at insert, and retained-reference records deduplicate on
        // the timestamp), so both front doors stay byte-identical.
        {
            let mut state = self.inner.shards[shard].lock();
            if let Some(value) = state.cache.get(&key, now) {
                let lookup = Lookup {
                    value: Arc::clone(value),
                    source: LookupSource::Hit,
                    outcome: None,
                };
                drop(state);
                record_lookup_telemetry(Some(started), LookupSource::Hit);
                return lookup;
            }
        }
        crate::runtime::block_on(LookupFuture {
            engine: self.clone(),
            key,
            shard: Some(shard),
            now,
            driver: FetchDriver::Inline(Some(fetch)),
            state: LookupState::Start,
            leader_cancel: None,
            started: Some(started),
        })
    }

    /// The asynchronous front door: like [`Watchman::get_or_execute`], but
    /// returns a [`LookupFuture`] and runs the leader's `fetch` on the
    /// engine's [`Runtime`], so a waiting session suspends (a registered
    /// waker) instead of blocking an OS thread.
    ///
    /// Thousands of sessions can wait on slow warehouse queries while the
    /// thread count stays at the runtime's worker-pool size.  The future is
    /// lazy (nothing happens until it is polled) and cancellation-safe:
    /// dropping it deregisters the session's waker, and if the session had
    /// been woken to take over an abandoned flight, the wake is passed to
    /// the next waiter.  Dropping a *leader* whose spawned fetch has not
    /// started yet cancels the execution entirely: the fetch closure is
    /// never invoked, and the flight is abandoned so a still-interested
    /// waiter takes leadership over with its own fetch (with no waiters the
    /// cell is retired).  A fetch already running is past cancellation —
    /// it completes the flight for any remaining waiters.
    ///
    /// A panicking `fetch` is re-raised on the leader session when it awaits
    /// the result, mirroring the synchronous contract; one waiter takes over
    /// the execution.
    pub fn get_or_execute_async<F>(
        &self,
        key: &QueryKey,
        now: Timestamp,
        fetch: F,
    ) -> LookupFuture<V, F>
    where
        F: FnOnce() -> (V, ExecutionCost) + Send + 'static,
    {
        LookupFuture {
            engine: self.clone(),
            key: self.inner.normalizer.apply(key),
            shard: None,
            now,
            driver: FetchDriver::Spawn {
                fetch: Some(fetch),
                spawn: spawn_fetch_task::<V, F>,
            },
            state: LookupState::Start,
            leader_cancel: None,
            started: None,
        }
    }

    /// Like [`Watchman::get_or_execute_async`], but the lookup gives up once
    /// `timeout` has elapsed (measured from this call), resolving to
    /// `Err(`[`LookupTimedOut`]`)`.
    ///
    /// A timed-out lookup behaves exactly like a dropped [`LookupFuture`]:
    /// a waiter deregisters (passing along any takeover claim), and a leader
    /// whose spawned fetch has not started yet cancels it — the closure is
    /// never invoked and leadership moves to a remaining waiter.  A fetch
    /// already running finishes and its result still lands in the cache for
    /// future sessions; only *this* session stops waiting for it.
    pub fn get_or_execute_async_with_timeout<F>(
        &self,
        key: &QueryKey,
        now: Timestamp,
        timeout: Duration,
        fetch: F,
    ) -> DeadlineLookup<V, F>
    where
        F: FnOnce() -> (V, ExecutionCost) + Send + 'static,
    {
        DeadlineLookup {
            lookup: Some(self.get_or_execute_async(key, now, fetch)),
            deadline: self.runtime().sleep(timeout),
        }
    }

    /// Like [`Watchman::get_or_execute`], but the fetch is **fallible**: it
    /// returns `Result<(V, Cost), `[`FetchError`]`>`, and an error — unlike a
    /// panic — is a first-class outcome of the lookup.
    ///
    /// * **Single-flight errors are shared.** A terminal fetch error resolves
    ///   the flight for *every* coalesced waiter at once; all of them observe
    ///   the same `Arc<FetchError>` (no per-waiter re-execution, no takeover
    ///   storm).
    /// * **Retries.** The leader retries transient errors under the
    ///   configured [`crate::engine::RetryPolicy`] — bounded attempts,
    ///   exponential backoff with deterministic seeded jitter, slept on the
    ///   engine's runtime timer so replays stay byte-identical.
    /// * **Negative caching.** A terminal failure is memoized per key for a
    ///   short TTL; lookups inside the window resolve immediately
    ///   (`negative_hit == true`) without invoking the fetch.
    /// * **Graceful degradation.** When a [`StalenessPolicy`] is configured,
    ///   a failed (or breaker-refused) lookup serves the last-known-good
    ///   value as [`LookupSource::Stale`] — cost-gated by the paper's profit
    ///   machinery, paid into `total_cost` but never into `saved_cost`, so
    ///   stale serves cannot inflate the cost-savings ratio.
    /// * **Circuit breaking.** With a [`crate::engine::BreakerConfig`], a
    ///   shard whose rolling fetch-failure rate trips the threshold refuses
    ///   new executions outright (stale-serving when possible) until a
    ///   half-open probe succeeds.
    ///
    /// A **panicking** fetch keeps the infallible contract: the panic
    /// propagates to this caller and one waiter takes over the execution.
    pub fn try_get_or_execute<F>(
        &self,
        key: &QueryKey,
        now: Timestamp,
        fetch: F,
    ) -> Result<Lookup<V>, LookupError>
    where
        F: FnMut() -> Result<(V, ExecutionCost), FetchError> + Unpin,
    {
        self.observe_now(now);
        let started = crate::telemetry::now();
        let key = self.inner.normalizer.apply(key);
        let shard = self.shard_index(&key);
        // Hit fast path, identical to the infallible front door.
        {
            let mut state = self.inner.shards[shard].lock();
            if let Some(value) = state.cache.get(&key, now) {
                let lookup = Lookup {
                    value: Arc::clone(value),
                    source: LookupSource::Hit,
                    outcome: None,
                };
                drop(state);
                record_lookup_telemetry(Some(started), LookupSource::Hit);
                return Ok(lookup);
            }
        }
        crate::runtime::block_on(TryLookupFuture {
            engine: self.clone(),
            key,
            shard: Some(shard),
            now,
            driver: TryFetchDriver::Inline(fetch),
            state: TryLookupState::Start,
            attempts: 0,
            leader_cancel: None,
            started: Some(started),
        })
    }

    /// The asynchronous fallible front door: like
    /// [`Watchman::try_get_or_execute`], but returns a [`TryLookupFuture`]
    /// and runs the leader's fetch (and its retry backoffs) on the engine's
    /// [`Runtime`], so waiting sessions suspend instead of blocking OS
    /// threads.  Cancellation behaves exactly like
    /// [`Watchman::get_or_execute_async`]: dropping the future deregisters a
    /// waiter, and a leader whose spawned fetch has not started yet cancels
    /// the execution entirely.
    pub fn try_get_or_execute_async<F>(
        &self,
        key: &QueryKey,
        now: Timestamp,
        fetch: F,
    ) -> TryLookupFuture<V, F>
    where
        F: FnMut() -> Result<(V, ExecutionCost), FetchError> + Send + 'static,
    {
        TryLookupFuture {
            engine: self.clone(),
            key: self.inner.normalizer.apply(key),
            shard: None,
            now,
            driver: TryFetchDriver::Spawn {
                fetch: Some(fetch),
                spawn: spawn_try_fetch_task::<V, F>,
            },
            state: TryLookupState::Start,
            attempts: 0,
            leader_cancel: None,
            started: None,
        }
    }

    /// Fetch retries the fallible pipeline has issued (attempts beyond the
    /// first, across every key and shard).
    pub fn fetch_retries(&self) -> u64 {
        self.inner.fetch_retries.load(Ordering::Relaxed)
    }

    /// Lookups answered straight from a shard's negative cache.
    pub fn negative_hits(&self) -> u64 {
        self.inner.negative_hits.load(Ordering::Relaxed)
    }

    /// Abandons `flight` after a failed fetch and, when no waiter holds a
    /// takeover claim on it, retires its entry from the shard's in-flight
    /// table — without this, a panicking key that is never re-requested
    /// would leak its cell (and panic payload) forever.
    ///
    /// Runs under the shard lock so the zero-waiter check and the removal
    /// are atomic against new sessions joining the flight; no other path
    /// acquires these two locks in the reverse order.  A racer that already
    /// cloned the cell's `Arc` but has not polled yet can still take the
    /// orphaned cell over and complete it (its `finish_leader_insert` then
    /// finds no matching entry and removes nothing) — the worst case is one
    /// duplicate execution, the same window the in-flight table has always
    /// had around abandonment.
    fn abandon_flight(&self, key: &QueryKey, shard_index: usize, flight: &Arc<Flight<V>>) {
        let mut state = self.inner.shards[shard_index].lock();
        if flight.abandon() == 0
            && state
                .inflight
                .get(key)
                .is_some_and(|entry| Arc::ptr_eq(entry, flight))
        {
            state.inflight.remove(key);
        }
    }

    /// Completes a leader's execution: offers the value for admission,
    /// retires the in-flight entry, and publishes the resulting events.
    fn finish_leader_insert(
        &self,
        key: &QueryKey,
        shard_index: usize,
        flight: &Arc<Flight<V>>,
        value: Arc<V>,
        cost: ExecutionCost,
        now: Timestamp,
    ) -> InsertOutcome {
        self.finish_leader_insert_with(key, shard_index, flight, value, cost, now, false)
    }

    /// Like [`Watchman::finish_leader_insert`], but a *fallible* leader also
    /// updates the failure domain under the same shard lock: the breaker
    /// records a success, a fresh last-known-good copy lands in the stale
    /// store (when a [`StalenessPolicy`] is configured), and any memoized
    /// failure for the key is dropped.  The infallible path passes `false`
    /// and touches none of it, so its behavior is byte-identical to before
    /// the failure domain existed.
    #[allow(clippy::too_many_arguments)]
    fn finish_leader_insert_with(
        &self,
        key: &QueryKey,
        shard_index: usize,
        flight: &Arc<Flight<V>>,
        value: Arc<V>,
        cost: ExecutionCost,
        now: Timestamp,
        record_fetch_success: bool,
    ) -> InsertOutcome {
        let size_bytes = value.size_bytes();
        let mut state = self.inner.shards[shard_index].lock();
        if record_fetch_success {
            if let Some(breaker) = state.failure.breaker.as_mut() {
                breaker.record_success(now);
            }
            if let Some(staleness) = &self.inner.failure.staleness {
                state.failure.store_stale(
                    key,
                    Arc::clone(&value),
                    cost,
                    size_bytes,
                    now,
                    staleness,
                );
            }
            state.failure.drop_negative(key);
        }
        let outcome = state.cache.insert(key.clone(), value, cost, now);
        record_insert_telemetry(shard_index, state.cache.used_bytes(), &outcome);
        crate::telemetry::global().recorder.record(
            TraceKind::LookupExecuted,
            key.signature().value(),
            shard_index as u64,
            cost.value() as u64,
        );
        // Retire the in-flight entry only if it is still ours (defensive:
        // completion is the only remover, so it always is).
        if state
            .inflight
            .get(key)
            .is_some_and(|entry| Arc::ptr_eq(entry, flight))
        {
            state.inflight.remove(key);
        }
        // Emitted under the shard lock: observers see this shard's events in
        // cache order.
        if !self.inner.observers.is_empty() {
            self.emit(Self::insert_events(
                key,
                size_bytes,
                cost,
                &outcome,
                shard_index,
            ));
        }
        outcome
    }

    /// Resolves a fallible leader's *terminal* fetch failure under the shard
    /// lock: retires the in-flight entry (so new arrivals start a fresh
    /// flight instead of joining a doomed one), memoizes the error in the
    /// negative cache, and feeds the breaker's rolling failure window.  The
    /// caller fails the flight cell *after* this returns — waking waiters
    /// only once the negative entry is visible keeps their stale/negative
    /// consultations consistent.
    fn fail_leader(
        &self,
        key: &QueryKey,
        shard_index: usize,
        flight: &Arc<Flight<V>>,
        error: &Arc<FetchError>,
        now: Timestamp,
    ) {
        let mut state = self.inner.shards[shard_index].lock();
        if state
            .inflight
            .get(key)
            .is_some_and(|entry| Arc::ptr_eq(entry, flight))
        {
            state.inflight.remove(key);
        }
        state
            .failure
            .store_negative(key, Arc::clone(error), now, &self.inner.failure.negative);
        if let Some(breaker) = state.failure.breaker.as_mut() {
            let was_open = matches!(breaker.state(), BreakerState::Open);
            breaker.record_failure(now);
            if !was_open && matches!(breaker.state(), BreakerState::Open) {
                // A freshly tripped breaker is an anomaly: snapshot the
                // flight recorder's context for the key that tripped it.
                crate::telemetry::global().anomaly(
                    TraceKind::BreakerTrip,
                    key.signature().value(),
                    shard_index as u64,
                    0,
                );
            }
        }
    }

    /// Resolves this session's share of a failed lookup: serves the
    /// last-known-good value when the staleness policy judges it worth it
    /// (recording a stale reference — cost paid, nothing saved), otherwise
    /// records an error reference and surfaces the shared error.  Every
    /// session — leader, coalesced waiter, negative-cache hit — resolves
    /// through here exactly once, so the extended reference invariant
    /// `references == hits + coalesced + fetch_errors + stale_serves +
    /// misses` holds per reference.
    fn resolve_failed_lookup(
        &self,
        key: &QueryKey,
        shard_index: usize,
        now: Timestamp,
        error: Arc<FetchError>,
        negative_hit: bool,
    ) -> Result<Lookup<V>, LookupError> {
        let mut state = self.inner.shards[shard_index].lock();
        if let Some(staleness) = &self.inner.failure.staleness {
            if let Some((value, cost)) = state.failure.stale_for(key, now, staleness) {
                state.cache.record_stale_reference(cost);
                crate::telemetry::global().recorder.record(
                    TraceKind::LookupStale,
                    key.signature().value(),
                    shard_index as u64,
                    cost.value() as u64,
                );
                return Ok(Lookup {
                    value,
                    source: LookupSource::Stale,
                    outcome: None,
                });
            }
        }
        state.cache.record_error_reference();
        crate::telemetry::global().recorder.record(
            TraceKind::LookupError,
            key.signature().value(),
            shard_index as u64,
            u64::from(negative_hit),
        );
        Err(LookupError {
            error,
            negative_hit,
        })
    }

    /// Removes the retrieved set for `key` because a warehouse update made it
    /// stale.  Returns whether it was resident.
    pub fn invalidate(&self, key: &QueryKey) -> bool {
        let key = self.inner.normalizer.apply(key);
        let index = self.shard_index(&key);
        let mut shard = self.inner.shards[index].lock();
        // Invalidated data is *wrong*, not merely old: the last-known-good
        // copy must never be stale-served after an invalidation.
        shard.failure.drop_stale(&key);
        shard.failure.drop_negative(&key);
        let removed = shard.cache.remove(&key);
        if removed && !self.inner.observers.is_empty() {
            self.emit(vec![CacheEvent::Invalidated { key, shard: index }]);
        }
        removed
    }

    /// Invalidates every cached set that `index` records as dependent on
    /// `relation`, returning the coherence report.
    ///
    /// This is the warehouse-update entry point of paper §3: the embedding
    /// application maintains the [`DependencyIndex`] (usually via a
    /// [`crate::coherence::DependencyObserver`] subscribed to this engine)
    /// and calls this when an update lands on a base relation.
    pub fn invalidate_relation(
        &self,
        index: &mut DependencyIndex,
        relation: &str,
    ) -> crate::coherence::InvalidationReport {
        crate::coherence::invalidate_affected(index, relation, |key| self.invalidate(key))
    }

    /// Looks up `key` **without** recording a query reference: no recency or
    /// frequency update, no reference-history sample, no statistics
    /// mutation.  Returns the cached payload if resident.
    ///
    /// This is the *admin* probe (the server's `PEEK` opcode, diagnostics,
    /// tests): unlike [`Watchman::get`], observing the cache this way leaves
    /// the replacement policy's state and the [`StatsSnapshot`] byte-for-byte
    /// unchanged, so monitoring never perturbs replay-visible behavior.
    pub fn peek(&self, key: &QueryKey) -> Option<Arc<V>> {
        let key = self.inner.normalizer.apply(key);
        let index = self.shard_index(&key);
        let shard = self.inner.shards[index].lock();
        shard.cache.peek(&key).map(Arc::clone)
    }

    /// Whether a retrieved set for `key` is currently cached.
    pub fn contains(&self, key: &QueryKey) -> bool {
        let key = self.inner.normalizer.apply(key);
        let index = self.shard_index(&key);
        self.inner.shards[index].lock().cache.contains(&key)
    }

    /// Number of cached retrieved sets across all shards.
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().cache.len()).sum()
    }

    /// Whether no retrieved set is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently cached across all shards.
    pub fn used_bytes(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().cache.used_bytes())
            .sum()
    }

    /// Total configured capacity across all shards.
    ///
    /// Rebalancing moves capacity *between* shards but never changes the
    /// total, so this is a constant established at build time.
    pub fn capacity_bytes(&self) -> u64 {
        self.inner.total_capacity_bytes
    }

    /// The current per-shard capacities in bytes (an atomic snapshot: they
    /// always sum to [`Watchman::capacity_bytes`]).
    pub fn shard_capacities(&self) -> Vec<u64> {
        let guards: Vec<_> = self.inner.shards.iter().map(|s| s.lock()).collect();
        guards.iter().map(|s| s.cache.capacity_bytes()).collect()
    }

    /// Number of capacity transfers the rebalancer has performed.
    pub fn rebalance_count(&self) -> u64 {
        self.inner
            .rebalancer
            .as_ref()
            .map_or(0, |rb| rb.rebalances.load(Ordering::Relaxed))
    }

    /// Number of rebalance passes run, including ones that moved nothing.
    ///
    /// With a background period configured this grows over wall-clock time;
    /// in `manual()` mode it counts [`Watchman::rebalance_now`] calls.  It
    /// never grows from session operations — passes do not run on the
    /// request path.
    pub fn rebalance_passes(&self) -> u64 {
        self.inner
            .rebalancer
            .as_ref()
            .map_or(0, |rb| rb.passes.load(Ordering::Relaxed))
    }

    /// Fraction of capacity currently in use.
    pub fn utilization(&self) -> f64 {
        let capacity = self.capacity_bytes();
        if capacity == 0 {
            0.0
        } else {
            self.used_bytes() as f64 / capacity as f64
        }
    }

    /// The keys currently cached, across all shards, in unspecified order.
    pub fn cached_keys(&self) -> Vec<QueryKey> {
        let mut keys = Vec::new();
        for shard in &self.inner.shards {
            keys.extend(shard.lock().cache.cached_keys());
        }
        keys
    }

    /// Removes every cached retrieved set (statistics are preserved).
    pub fn clear(&self) {
        for shard in &self.inner.shards {
            shard.lock().cache.clear();
        }
    }

    /// The aggregate statistics summed across shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::new();
        for shard in &self.inner.shards {
            total.merge(&shard.lock().cache.stats_snapshot());
        }
        total
    }

    /// A full owned snapshot: aggregate and per-shard counters, occupancies,
    /// capacities, single-flight coalescing and rebalancing activity.
    ///
    /// Every shard is locked for the duration of the read (in index order,
    /// consistent with the rebalancer's lock order), so the snapshot is
    /// internally consistent: per-shard capacities sum to the configured
    /// total even while a rebalance pass runs concurrently.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let guards: Vec<_> = self.inner.shards.iter().map(|s| s.lock()).collect();
        let mut total = CacheStats::new();
        let mut per_shard = Vec::with_capacity(guards.len());
        let mut per_shard_capacity = Vec::with_capacity(guards.len());
        let mut per_shard_used = Vec::with_capacity(guards.len());
        let mut used_bytes = 0;
        let mut capacity_bytes = 0;
        let mut entries = 0;
        let mut breaker_transitions = 0;
        let telemetry = crate::telemetry::global();
        for (index, state) in guards.iter().enumerate() {
            let stats = state.cache.stats_snapshot();
            total.merge(&stats);
            per_shard.push(stats);
            let used = state.cache.used_bytes();
            let capacity = state.cache.capacity_bytes();
            telemetry.set_shard_used(index, used);
            per_shard_used.push(used);
            per_shard_capacity.push(capacity);
            used_bytes += used;
            capacity_bytes += capacity;
            entries += state.cache.len();
            breaker_transitions += state
                .failure
                .breaker
                .as_ref()
                .map_or(0, CircuitBreaker::transitions);
        }
        telemetry.shard_count.set(guards.len() as u64);
        // One occupancy sample per snapshot, taken while every shard guard
        // is still held so the sample matches the reported numbers.  The
        // tracker mutex is a leaf: nothing is acquired under it.
        let fragmentation = {
            let mut tracker = self.inner.fragmentation.lock();
            tracker.record(used_bytes, capacity_bytes);
            tracker.clone()
        };
        StatsSnapshot {
            total,
            per_shard,
            per_shard_capacity,
            per_shard_used,
            used_bytes,
            capacity_bytes,
            entries,
            coalesced_misses: self.inner.coalesced_misses.load(Ordering::Relaxed),
            rebalances: self
                .inner
                .rebalancer
                .as_ref()
                .map_or(0, |rb| rb.rebalances.load(Ordering::Relaxed)),
            fetch_retries: self.inner.fetch_retries.load(Ordering::Relaxed),
            negative_hits: self.inner.negative_hits.load(Ordering::Relaxed),
            breaker_transitions,
            sheds: 0,
            fragmentation,
        }
    }

    /// Number of in-flight single-flight cells across all shards (test
    /// instrumentation for the abandoned-cell retirement guarantee).
    #[cfg(test)]
    pub(crate) fn inflight_entries(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|shard| shard.lock().inflight.len())
            .sum()
    }

    /// Thread identities of every rebalance pass (test instrumentation for
    /// the no-pass-on-a-session-thread guarantee).
    #[cfg(test)]
    pub(crate) fn rebalance_pass_threads(&self) -> Vec<std::thread::ThreadId> {
        self.inner
            .rebalancer
            .as_ref()
            .map_or(Vec::new(), |rb| rb.pass_threads.lock().clone())
    }
}

/// The hook an async lookup uses to launch its fetch on the runtime: a
/// plain `fn` pointer, monomorphized in [`Watchman::get_or_execute_async`]
/// (the one place `F`'s `Send + 'static` bounds are in scope) and stored in
/// [`FetchDriver::Spawn`] next to the still-unboxed fetch closure.  A hit
/// therefore resolves without ever touching the allocator for its driver —
/// only an actual miss, when the leader transition calls this hook, pays
/// for spawning the fetch task.  The future itself stays a single
/// non-virtual implementation shared with the synchronous path.  The final
/// `Arc<AtomicBool>` is the leader session's cancellation flag: set when
/// the session's future is dropped, checked by the spawned task before it
/// invokes the fetch.
type SpawnFetch<V, F> =
    fn(&Watchman<V>, F, QueryKey, usize, Timestamp, Arc<Flight<V>>, u64, Arc<AtomicBool>);

/// The [`SpawnFetch`] implementation: hands the fetch closure to a task on
/// the engine's runtime.  Generic so the closure rides along unboxed; the
/// task future it creates is the miss path's one unavoidable allocation.
#[allow(clippy::too_many_arguments)]
fn spawn_fetch_task<V, F>(
    engine: &Watchman<V>,
    fetch: F,
    key: QueryKey,
    shard: usize,
    now: Timestamp,
    flight: Arc<Flight<V>>,
    epoch: u64,
    cancelled: Arc<AtomicBool>,
) where
    V: CachePayload + Send + Sync + 'static,
    F: FnOnce() -> (V, ExecutionCost) + Send + 'static,
{
    let weak = Arc::downgrade(&engine.inner);
    engine.runtime().spawn(async move {
        run_spawned_fetch(weak, key, shard, now, flight, epoch, cancelled, fetch);
    });
}

/// Runs a spawned leader fetch to completion on a runtime worker: executes
/// the closure, admits the result, and completes (or, on panic, abandons)
/// the flight.  Holds only a weak engine reference so a task queued behind a
/// long fetch never keeps a dropped engine alive.
#[allow(clippy::too_many_arguments)]
fn run_spawned_fetch<V, F>(
    engine: Weak<Inner<V>>,
    key: QueryKey,
    shard: usize,
    now: Timestamp,
    flight: Arc<Flight<V>>,
    epoch: u64,
    cancelled: Arc<AtomicBool>,
    fetch: F,
) where
    V: CachePayload + Send + Sync + 'static,
    F: FnOnce() -> (V, ExecutionCost),
{
    // Cooperative cancellation point: the leader session dropped its future
    // (deadline elapsed, connection torn down) before this task got a
    // worker.  The fetch closure is never invoked; abandoning the flight
    // wakes one still-interested waiter to take leadership over with its
    // own fetch — and with no waiters, retires the cell so the next arrival
    // starts fresh.  No panic payload is stored: the only session that
    // would re-raise it is the one that was dropped.
    if cancelled.load(Ordering::Acquire) {
        match engine.upgrade() {
            Some(inner) => Watchman { inner }.abandon_flight(&key, shard, &flight),
            None => {
                flight.abandon();
            }
        }
        return;
    }
    // The completion stage (insert + observer emit) runs under its own
    // catch_unwind for the same reason the inline path keeps its guard armed
    // through it: a panic in user observer code must abandon the flight, not
    // strand the waiters on a cell that never resolves.
    let fetch_start = crate::telemetry::now();
    let fetched = catch_unwind(AssertUnwindSafe(fetch));
    crate::telemetry::global()
        .fetch_attempt_us
        .record(crate::telemetry::elapsed_us(fetch_start));
    let result = fetched.and_then(|(value, cost)| {
        let value = Arc::new(value);
        catch_unwind(AssertUnwindSafe(|| {
            if let Some(inner) = engine.upgrade() {
                let engine = Watchman { inner };
                let outcome = engine.finish_leader_insert(
                    &key,
                    shard,
                    &flight,
                    Arc::clone(&value),
                    cost,
                    now,
                );
                flight.set_outcome(outcome);
            }
            (value, cost)
        }))
    });
    match result {
        Ok((value, cost)) => flight.complete(value, cost),
        Err(payload) => {
            // Payload first, then abandon: the leader session must observe
            // the payload when its abandonment wake arrives.
            flight.set_panic(epoch, payload);
            match engine.upgrade() {
                Some(inner) => Watchman { inner }.abandon_flight(&key, shard, &flight),
                // Engine gone: there is no table left to retire from.
                None => {
                    flight.abandon();
                }
            }
        }
    }
}

/// The [`SpawnFetch`] analogue for the fallible pipeline.
type SpawnTryFetch<V, F> =
    fn(&Watchman<V>, F, QueryKey, usize, Timestamp, Arc<Flight<V>>, u64, Arc<AtomicBool>);

/// Hands a fallible fetch closure to a task on the engine's runtime.  The
/// task owns the whole retry loop: backoffs are real `Sleep`s awaited on the
/// runtime timer, so a retrying leader occupies no worker while it waits.
#[allow(clippy::too_many_arguments)]
fn spawn_try_fetch_task<V, F>(
    engine: &Watchman<V>,
    fetch: F,
    key: QueryKey,
    shard: usize,
    now: Timestamp,
    flight: Arc<Flight<V>>,
    epoch: u64,
    cancelled: Arc<AtomicBool>,
) where
    V: CachePayload + Send + Sync + 'static,
    F: FnMut() -> Result<(V, ExecutionCost), FetchError> + Send + 'static,
{
    let weak = Arc::downgrade(&engine.inner);
    let runtime = engine.runtime();
    let timer = runtime.inner_handle();
    runtime.spawn(run_spawned_try_fetch(
        weak, timer, key, shard, now, flight, epoch, cancelled, fetch,
    ));
}

/// Runs a spawned fallible leader fetch to completion: invokes the closure,
/// retrying transient errors under the engine's [`RetryPolicy`] (sleeping
/// the deterministic backoff on the runtime timer), then either admits the
/// result or resolves the flight with the terminal error for every waiter.
/// Holds only weak references so a task queued behind a long fetch never
/// keeps a dropped engine (or runtime) alive.
#[allow(clippy::too_many_arguments)]
async fn run_spawned_try_fetch<V, F>(
    engine: Weak<Inner<V>>,
    timer: Weak<crate::runtime::RuntimeInner>,
    key: QueryKey,
    shard: usize,
    now: Timestamp,
    flight: Arc<Flight<V>>,
    epoch: u64,
    cancelled: Arc<AtomicBool>,
    mut fetch: F,
) where
    V: CachePayload + Send + Sync + 'static,
    F: FnMut() -> Result<(V, ExecutionCost), FetchError>,
{
    let mut attempt: u32 = 0;
    loop {
        // Cooperative cancellation point, re-checked before *every* attempt:
        // a leader session dropped mid-backoff must not burn further
        // attempts on a result nobody claims (waiters take the flight over).
        if cancelled.load(Ordering::Acquire) {
            match engine.upgrade() {
                Some(inner) => Watchman { inner }.abandon_flight(&key, shard, &flight),
                None => {
                    flight.abandon();
                }
            }
            return;
        }
        attempt += 1;
        let fetch_start = crate::telemetry::now();
        let result = catch_unwind(AssertUnwindSafe(&mut fetch));
        crate::telemetry::global()
            .fetch_attempt_us
            .record(crate::telemetry::elapsed_us(fetch_start));
        match result {
            // A panic keeps the infallible contract: payload to the leader
            // session, flight abandoned so one waiter takes over.
            Err(payload) => {
                flight.set_panic(epoch, payload);
                match engine.upgrade() {
                    Some(inner) => Watchman { inner }.abandon_flight(&key, shard, &flight),
                    None => {
                        flight.abandon();
                    }
                }
                return;
            }
            Ok(Ok((value, cost))) => {
                let value = Arc::new(value);
                // The completion stage (insert + observer emit) runs under
                // its own catch_unwind, mirroring `run_spawned_fetch`.
                let completed = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(inner) = engine.upgrade() {
                        let engine = Watchman { inner };
                        let outcome = engine.finish_leader_insert_with(
                            &key,
                            shard,
                            &flight,
                            Arc::clone(&value),
                            cost,
                            now,
                            true,
                        );
                        flight.set_outcome(outcome);
                    }
                }));
                match completed {
                    Ok(()) => flight.complete(value, cost),
                    Err(payload) => {
                        flight.set_panic(epoch, payload);
                        match engine.upgrade() {
                            Some(inner) => Watchman { inner }.abandon_flight(&key, shard, &flight),
                            None => {
                                flight.abandon();
                            }
                        }
                    }
                }
                return;
            }
            Ok(Err(error)) => {
                let Some(inner) = engine.upgrade() else {
                    flight.fail(Arc::new(error));
                    return;
                };
                let handle = Watchman { inner };
                let retry = handle.inner.failure.retry.clone();
                if error.is_retryable() && attempt < retry.max_attempts {
                    handle.inner.fetch_retries.fetch_add(1, Ordering::Relaxed);
                    let delay = retry.backoff(attempt, key.signature().value());
                    let telemetry = crate::telemetry::global();
                    telemetry.fetch_retries.incr();
                    telemetry.recorder.record(
                        TraceKind::FetchRetry,
                        key.signature().value(),
                        u64::from(attempt),
                        delay.as_micros() as u64,
                    );
                    drop(handle);
                    if !delay.is_zero() {
                        Sleep::until(timer.clone(), crate::telemetry::now() + delay).await;
                    }
                    continue;
                }
                // Terminal: memoize, feed the breaker, retire the cell —
                // then fail the flight so every waiter observes the same
                // shared error.
                let error = Arc::new(error);
                handle.fail_leader(&key, shard, &flight, &error, now);
                drop(handle);
                flight.fail(error);
                return;
            }
        }
    }
}

/// How a [`LookupFuture`]'s leader runs its fetch: inline on the polling
/// thread (synchronous front door) or spawned onto the runtime (async front
/// door).  Everything else — hit, coalesce, abandonment, takeover — is the
/// same code.
enum FetchDriver<V, F> {
    Inline(Option<F>),
    Spawn {
        fetch: Option<F>,
        spawn: SpawnFetch<V, F>,
    },
}

enum LookupState<V> {
    Start,
    Waiting {
        flight: Arc<Flight<V>>,
        slot: WaiterSlot,
        /// `Some(epoch)` when this session is the leader of that leadership
        /// generation, awaiting its own spawned fetch; `None` for a
        /// coalescing waiter.
        leading: Option<u64>,
    },
    Finished,
}

/// What one poll step decided, lifted out of the state borrow so the state
/// machine can transition freely.
enum Step<V> {
    Return(Lookup<V>),
    BecomeWaiter(Arc<Flight<V>>),
    Lead(Arc<Flight<V>>),
    /// Won the takeover race on an abandoned flight: re-check the cache
    /// before re-executing (the failed leader may have panicked *after* its
    /// insert succeeded — e.g. in a user observer — leaving the value
    /// cached), then lead.
    TakeOver(Arc<Flight<V>>),
    Suspend,
    LeaderFailed(Option<Box<dyn std::any::Any + Send>>),
    /// The awaited flight resolved in a way this session cannot consume
    /// (a fallible leader failed it); go back to `Start` and look again.
    Restart,
}

/// The future returned by [`Watchman::get_or_execute_async`] (and driven by
/// [`block_on`](crate::runtime::block_on) inside the synchronous
/// [`Watchman::get_or_execute`]).
///
/// Lazy: nothing happens until first poll.  Cancellation-safe: dropping it
/// deregisters this session's waker from the flight it waits on; a dropped
/// takeover candidate passes its wake to the next waiter.
pub struct LookupFuture<V, F> {
    engine: Watchman<V>,
    /// The normalized key.
    key: QueryKey,
    /// Shard index, resolved on first poll.
    shard: Option<usize>,
    now: Timestamp,
    driver: FetchDriver<V, F>,
    state: LookupState<V>,
    /// Set once this session spawns a leader fetch; flipped by `Drop` so a
    /// fetch task that has not started yet observes the cancellation and
    /// never invokes the closure.
    leader_cancel: Option<Arc<AtomicBool>>,
    /// When this session first touched the engine (the synchronous front
    /// door presets it; the async one stamps it on first poll), feeding the
    /// outcome-keyed lookup-latency telemetry.
    started: Option<Instant>,
}

impl<V, F> std::fmt::Debug for LookupFuture<V, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LookupFuture")
            .field("key", &self.key)
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl<V, F> Future for LookupFuture<V, F>
where
    V: CachePayload + Send + Sync + 'static,
    F: FnOnce() -> (V, ExecutionCost) + Unpin,
{
    type Output = Lookup<V>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Lookup<V>> {
        // All fields are Unpin (`F` by bound — every ordinary closure is),
        // so plain projection is safe without unsafe code.
        let this = self.get_mut();
        if this.started.is_none() {
            this.started = Some(crate::telemetry::now());
        }
        loop {
            let step = match &mut this.state {
                LookupState::Finished => panic!("LookupFuture polled after completion"),
                LookupState::Start => {
                    this.engine.observe_now(this.now);
                    let shard_index = *this
                        .shard
                        .get_or_insert_with(|| this.engine.shard_index(&this.key));
                    let mut state = this.engine.inner.shards[shard_index].lock();
                    if let Some(value) = state.cache.get(&this.key, this.now) {
                        Step::Return(Lookup {
                            value: Arc::clone(value),
                            source: LookupSource::Hit,
                            outcome: None,
                        })
                    } else {
                        match state.inflight.get(&this.key) {
                            Some(flight) => Step::BecomeWaiter(Arc::clone(flight)),
                            None => {
                                let flight = Arc::new(Flight::new());
                                state.inflight.insert(this.key.clone(), Arc::clone(&flight));
                                Step::Lead(flight)
                            }
                        }
                    }
                }
                LookupState::Waiting {
                    flight,
                    slot: _,
                    leading: Some(epoch),
                } => match flight.poll_leader(*epoch, cx) {
                    Poll::Pending => Step::Suspend,
                    Poll::Ready(LeaderOutcome::Done(value, _cost)) => {
                        let outcome = flight.take_outcome();
                        Step::Return(Lookup {
                            value,
                            source: LookupSource::Executed,
                            outcome,
                        })
                    }
                    Poll::Ready(LeaderOutcome::Failed(payload)) => Step::LeaderFailed(payload),
                    // An infallible leader's fetch returns `(V, Cost)` — it
                    // can panic but never produce a `FetchError`, so its own
                    // flight is never `fail()`ed under it.
                    Poll::Ready(LeaderOutcome::Error(error)) => {
                        unreachable!("infallible leader observed a fetch error: {error}")
                    }
                },
                LookupState::Waiting {
                    flight,
                    slot,
                    leading: None,
                } => match flight.poll_wait(slot, cx) {
                    Poll::Pending => Step::Suspend,
                    Poll::Ready(FlightOutcome::Done(value, cost)) => {
                        // A coalesced wait is still one logical reference
                        // (one-call-per-reference protocol): account it as
                        // hit-equivalent at the leader's observed cost so
                        // CSR/HR denominators cover every reference.
                        let shard_index = this.shard.expect("set before waiting");
                        {
                            let mut state = this.engine.inner.shards[shard_index].lock();
                            state.cache.record_coalesced_reference(cost);
                        }
                        this.engine
                            .inner
                            .coalesced_misses
                            .fetch_add(1, Ordering::Relaxed);
                        Step::Return(Lookup {
                            value,
                            source: LookupSource::Coalesced,
                            outcome: None,
                        })
                    }
                    // The previous leader failed and this session won the
                    // takeover race: it is the leader now, on the same
                    // flight cell, with its own (still unconsumed) fetch.
                    Poll::Ready(FlightOutcome::TakeOver) => Step::TakeOver(Arc::clone(flight)),
                    // A *fallible* leader (the try_* front doors) resolved
                    // the shared flight with a fetch error and retired the
                    // cell.  This infallible session cannot surface an error,
                    // but it still holds its own unconsumed fetch: start
                    // over — the retired cell means it will lead a fresh
                    // flight (or hit the negative-cache-free cache).
                    Poll::Ready(FlightOutcome::Failed(_)) => Step::Restart,
                },
            };

            // Resolve a takeover into a hit or real leadership before the
            // state transition below.
            let step = match step {
                Step::TakeOver(flight) => {
                    let shard_index = this.shard.expect("set before waiting");
                    let cached = {
                        let mut state = this.engine.inner.shards[shard_index].lock();
                        state.cache.get(&this.key, this.now).map(Arc::clone)
                    };
                    match cached {
                        // The value landed before the old leader failed (a
                        // panic in its post-insert observer emit): serve the
                        // hit instead of re-running a multi-second fetch,
                        // and pass leadership along — the next candidate
                        // repeats this check, and the last abandonment
                        // retires the cell.
                        Some(value) => {
                            this.engine.abandon_flight(&this.key, shard_index, &flight);
                            Step::Return(Lookup {
                                value,
                                source: LookupSource::Hit,
                                outcome: None,
                            })
                        }
                        None => Step::Lead(flight),
                    }
                }
                other => other,
            };

            match step {
                Step::TakeOver(_) => unreachable!("resolved into Return or Lead above"),
                Step::Suspend => return Poll::Pending,
                Step::Restart => {
                    this.state = LookupState::Start;
                    // Loop: look the key up afresh.
                }
                Step::Return(lookup) => {
                    this.state = LookupState::Finished;
                    record_lookup_telemetry(this.started, lookup.source);
                    return Poll::Ready(lookup);
                }
                Step::BecomeWaiter(flight) => {
                    this.state = LookupState::Waiting {
                        flight,
                        slot: WaiterSlot::new(),
                        leading: None,
                    };
                    // Loop: poll the flight, registering our waker.
                }
                Step::LeaderFailed(payload) => {
                    this.state = LookupState::Finished;
                    match payload {
                        // Re-raise the fetch's panic on the leader session,
                        // mirroring the synchronous contract.
                        Some(payload) => std::panic::resume_unwind(payload),
                        None => panic!("single-flight leader fetch failed"),
                    }
                }
                Step::Lead(flight) => {
                    let shard_index = this.shard.expect("set before leading");
                    match &mut this.driver {
                        FetchDriver::Inline(fetch) => {
                            let fetch = fetch.take().expect("leader consumes its fetch once");
                            // The guard stays armed through the fetch AND the
                            // completion (insert + observer emit): a panic
                            // anywhere before `complete` — including user
                            // observer code — must wake exactly one waiter to
                            // take over this same flight cell (retiring the
                            // cell when nobody waits) instead of stranding
                            // the waiters on a flight that never resolves.
                            // The panic itself propagates to the caller.
                            let guard = AbandonGuard {
                                engine: &this.engine,
                                key: &this.key,
                                shard_index,
                                flight: &flight,
                            };
                            let fetch_start = crate::telemetry::now();
                            let (value, cost) = fetch();
                            crate::telemetry::global()
                                .fetch_attempt_us
                                .record(crate::telemetry::elapsed_us(fetch_start));
                            let value = Arc::new(value);
                            let outcome = this.engine.finish_leader_insert(
                                &this.key,
                                shard_index,
                                &flight,
                                Arc::clone(&value),
                                cost,
                                this.now,
                            );
                            flight.complete(Arc::clone(&value), cost);
                            std::mem::forget(guard);
                            this.state = LookupState::Finished;
                            record_lookup_telemetry(this.started, LookupSource::Executed);
                            return Poll::Ready(Lookup {
                                value,
                                source: LookupSource::Executed,
                                outcome: Some(outcome),
                            });
                        }
                        FetchDriver::Spawn { fetch, spawn } => {
                            let fetch = fetch.take().expect("leader consumes its fetch once");
                            let spawn = *spawn;
                            let epoch = flight.new_leader_epoch();
                            let cancel = Arc::new(AtomicBool::new(false));
                            this.leader_cancel = Some(Arc::clone(&cancel));
                            spawn(
                                &this.engine,
                                fetch,
                                this.key.clone(),
                                shard_index,
                                this.now,
                                Arc::clone(&flight),
                                epoch,
                                cancel,
                            );
                            this.state = LookupState::Waiting {
                                flight,
                                slot: WaiterSlot::new(),
                                leading: Some(epoch),
                            };
                            // Loop: poll as leader, registering our waker.
                        }
                    }
                }
            }
        }
    }
}

impl<V, F> Drop for LookupFuture<V, F> {
    fn drop(&mut self) {
        // A cancelled *leader* flips its cancellation flag: a spawned fetch
        // task that has not started yet observes it, skips the closure
        // entirely and abandons the flight (leadership moves to a waiter; a
        // waiterless cell is retired).  A fetch already running is past the
        // check and completes the flight for the remaining waiters — either
        // way nobody is stranded.
        if let Some(cancel) = &self.leader_cancel {
            cancel.store(true, Ordering::Release);
        }
        // A cancelled waiter must deregister; if it had been woken to take
        // over an abandoned flight, forget_waiter passes the wake along so
        // no takeover is lost, and if it was the *last* waiter of an
        // abandoned flight, the cell is retired from the in-flight table.
        if let LookupState::Waiting {
            flight,
            slot,
            leading: None,
        } = &mut self.state
        {
            let shard_index = self.shard.expect("set before waiting");
            // Shard lock first, then the flight's lock inside forget_waiter —
            // the same order abandon_flight uses.
            let mut state = self.engine.inner.shards[shard_index].lock();
            if flight.forget_waiter(slot)
                && state
                    .inflight
                    .get(&self.key)
                    .is_some_and(|entry| Arc::ptr_eq(entry, flight))
            {
                state.inflight.remove(&self.key);
            }
        }
    }
}

/// Abandons the leader's flight if its inline fetch panics, so waiters are
/// not stranded on a flight that will never complete.  Exactly one waiter is
/// woken to take over leadership of the same cell; with no waiters at all
/// the cell is retired from the in-flight table (see
/// [`Watchman::abandon_flight`]).
struct AbandonGuard<'a, V>
where
    V: CachePayload + Send + Sync + 'static,
{
    engine: &'a Watchman<V>,
    key: &'a QueryKey,
    shard_index: usize,
    flight: &'a Arc<Flight<V>>,
}

impl<V> Drop for AbandonGuard<'_, V>
where
    V: CachePayload + Send + Sync + 'static,
{
    fn drop(&mut self) {
        self.engine
            .abandon_flight(self.key, self.shard_index, self.flight);
    }
}

/// How a [`TryLookupFuture`]'s leader runs its fallible fetch.  Unlike
/// [`FetchDriver`], the inline closure is stored directly (not as an
/// `Option`): retries re-invoke it, so it is `FnMut` and never consumed.
enum TryFetchDriver<V, F> {
    Inline(F),
    Spawn {
        fetch: Option<F>,
        spawn: SpawnTryFetch<V, F>,
    },
}

enum TryLookupState<V> {
    Start,
    Waiting {
        flight: Arc<Flight<V>>,
        slot: WaiterSlot,
        /// `Some(epoch)` when this session leads via a spawned fetch task.
        leading: Option<u64>,
    },
    /// An *inline* leader sleeping out a retry backoff on the runtime timer.
    /// The flight stays pending (this session still leads it); waiters keep
    /// coalescing onto it while the backoff elapses.
    Backoff {
        flight: Arc<Flight<V>>,
        sleep: Sleep,
    },
    Finished,
}

/// What one fallible poll step decided.
enum TryStep<V> {
    Return(Lookup<V>),
    /// Resolve a failure for *this* session: stale-serve if the staleness
    /// policy allows, otherwise surface the shared error.
    Resolve {
        error: Arc<FetchError>,
        negative_hit: bool,
    },
    BecomeWaiter(Arc<Flight<V>>),
    Lead(Arc<Flight<V>>),
    TakeOver(Arc<Flight<V>>),
    Suspend,
    LeaderFailed(Option<Box<dyn std::any::Any + Send>>),
}

/// The future returned by [`Watchman::try_get_or_execute_async`] (and driven
/// by [`block_on`](crate::runtime::block_on) inside the synchronous
/// [`Watchman::try_get_or_execute`]).
///
/// Resolves to `Ok(`[`Lookup`]`)` — including [`LookupSource::Stale`] serves
/// — or `Err(`[`LookupError`]`)` carrying the shared `Arc<FetchError>`.
/// Lazy and cancellation-safe with the same semantics as [`LookupFuture`].
pub struct TryLookupFuture<V, F> {
    engine: Watchman<V>,
    key: QueryKey,
    shard: Option<usize>,
    now: Timestamp,
    driver: TryFetchDriver<V, F>,
    state: TryLookupState<V>,
    /// Fetch attempts this session has made as the inline leader of the
    /// current flight (spawned leaders count inside their task instead).
    attempts: u32,
    leader_cancel: Option<Arc<AtomicBool>>,
    /// When this session first touched the engine (see [`LookupFuture`]).
    started: Option<Instant>,
}

impl<V, F> std::fmt::Debug for TryLookupFuture<V, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TryLookupFuture")
            .field("key", &self.key)
            .field("now", &self.now)
            .field("attempts", &self.attempts)
            .finish_non_exhaustive()
    }
}

impl<V, F> Future for TryLookupFuture<V, F>
where
    V: CachePayload + Send + Sync + 'static,
    F: FnMut() -> Result<(V, ExecutionCost), FetchError> + Unpin,
{
    type Output = Result<Lookup<V>, LookupError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if this.started.is_none() {
            this.started = Some(crate::telemetry::now());
        }
        loop {
            let step = match &mut this.state {
                TryLookupState::Finished => panic!("TryLookupFuture polled after completion"),
                TryLookupState::Start => {
                    this.engine.observe_now(this.now);
                    let shard_index = *this
                        .shard
                        .get_or_insert_with(|| this.engine.shard_index(&this.key));
                    let mut state = this.engine.inner.shards[shard_index].lock();
                    if let Some(value) = state.cache.get(&this.key, this.now) {
                        TryStep::Return(Lookup {
                            value: Arc::clone(value),
                            source: LookupSource::Hit,
                            outcome: None,
                        })
                    } else if let Some(flight) = state.inflight.get(&this.key) {
                        // A live flight wins over a memoized failure: the
                        // in-flight leader may be retrying its way to a
                        // success this session can share.
                        TryStep::BecomeWaiter(Arc::clone(flight))
                    } else if let Some(error) = state.failure.fresh_negative(&this.key, this.now) {
                        this.engine
                            .inner
                            .negative_hits
                            .fetch_add(1, Ordering::Relaxed);
                        crate::telemetry::global().negative_hits.incr();
                        TryStep::Resolve {
                            error,
                            negative_hit: true,
                        }
                    } else {
                        // The breaker's admit() is the half-open probe
                        // ticket: a refused shard degrades without ever
                        // invoking the fetch.
                        let admitted = match state.failure.breaker.as_mut() {
                            Some(breaker) => breaker.admit(this.now),
                            None => true,
                        };
                        if admitted {
                            let flight = Arc::new(Flight::new());
                            state.inflight.insert(this.key.clone(), Arc::clone(&flight));
                            TryStep::Lead(flight)
                        } else {
                            TryStep::Resolve {
                                error: Arc::new(FetchError::transient(
                                    "circuit breaker open: fetch refused",
                                )),
                                negative_hit: false,
                            }
                        }
                    }
                }
                TryLookupState::Waiting {
                    flight,
                    slot: _,
                    leading: Some(epoch),
                } => match flight.poll_leader(*epoch, cx) {
                    Poll::Pending => TryStep::Suspend,
                    Poll::Ready(LeaderOutcome::Done(value, _cost)) => {
                        let outcome = flight.take_outcome();
                        TryStep::Return(Lookup {
                            value,
                            source: LookupSource::Executed,
                            outcome,
                        })
                    }
                    Poll::Ready(LeaderOutcome::Failed(payload)) => TryStep::LeaderFailed(payload),
                    Poll::Ready(LeaderOutcome::Error(error)) => TryStep::Resolve {
                        error,
                        negative_hit: false,
                    },
                },
                TryLookupState::Waiting {
                    flight,
                    slot,
                    leading: None,
                } => match flight.poll_wait(slot, cx) {
                    Poll::Pending => TryStep::Suspend,
                    Poll::Ready(FlightOutcome::Done(value, cost)) => {
                        let shard_index = this.shard.expect("set before waiting");
                        {
                            let mut state = this.engine.inner.shards[shard_index].lock();
                            state.cache.record_coalesced_reference(cost);
                        }
                        this.engine
                            .inner
                            .coalesced_misses
                            .fetch_add(1, Ordering::Relaxed);
                        TryStep::Return(Lookup {
                            value,
                            source: LookupSource::Coalesced,
                            outcome: None,
                        })
                    }
                    Poll::Ready(FlightOutcome::TakeOver) => TryStep::TakeOver(Arc::clone(flight)),
                    // The leader's terminal error resolved the flight for
                    // every coalesced waiter at once; all of them share one
                    // `Arc<FetchError>` (and each resolves its own
                    // stale-vs-error outcome below).
                    Poll::Ready(FlightOutcome::Failed(error)) => TryStep::Resolve {
                        error,
                        negative_hit: false,
                    },
                },
                TryLookupState::Backoff { flight, sleep } => match Pin::new(sleep).poll(cx) {
                    Poll::Pending => TryStep::Suspend,
                    // Backoff elapsed: resume leading the same flight with
                    // the next attempt.
                    Poll::Ready(()) => TryStep::Lead(Arc::clone(flight)),
                },
            };

            // Resolve a takeover into a hit or fresh leadership, exactly
            // like the infallible path.
            let step = match step {
                TryStep::TakeOver(flight) => {
                    let shard_index = this.shard.expect("set before waiting");
                    let cached = {
                        let mut state = this.engine.inner.shards[shard_index].lock();
                        state.cache.get(&this.key, this.now).map(Arc::clone)
                    };
                    match cached {
                        Some(value) => {
                            this.engine.abandon_flight(&this.key, shard_index, &flight);
                            TryStep::Return(Lookup {
                                value,
                                source: LookupSource::Hit,
                                outcome: None,
                            })
                        }
                        None => {
                            // Fresh leadership on the taken-over cell: this
                            // session's own retry budget starts from zero.
                            this.attempts = 0;
                            TryStep::Lead(flight)
                        }
                    }
                }
                other => other,
            };

            match step {
                TryStep::TakeOver(_) => unreachable!("resolved into Return or Lead above"),
                TryStep::Suspend => return Poll::Pending,
                TryStep::Return(lookup) => {
                    this.state = TryLookupState::Finished;
                    record_lookup_telemetry(this.started, lookup.source);
                    return Poll::Ready(Ok(lookup));
                }
                TryStep::Resolve {
                    error,
                    negative_hit,
                } => {
                    let shard_index = this.shard.expect("set before resolving");
                    this.state = TryLookupState::Finished;
                    let result = this.engine.resolve_failed_lookup(
                        &this.key,
                        shard_index,
                        this.now,
                        error,
                        negative_hit,
                    );
                    match &result {
                        Ok(lookup) => record_lookup_telemetry(this.started, lookup.source),
                        Err(_) => record_lookup_error_telemetry(this.started),
                    }
                    return Poll::Ready(result);
                }
                TryStep::BecomeWaiter(flight) => {
                    this.state = TryLookupState::Waiting {
                        flight,
                        slot: WaiterSlot::new(),
                        leading: None,
                    };
                }
                TryStep::LeaderFailed(payload) => {
                    this.state = TryLookupState::Finished;
                    match payload {
                        Some(payload) => std::panic::resume_unwind(payload),
                        None => panic!("single-flight leader fetch failed"),
                    }
                }
                TryStep::Lead(flight) => {
                    let shard_index = this.shard.expect("set before leading");
                    match &mut this.driver {
                        TryFetchDriver::Inline(fetch) => {
                            loop {
                                this.attempts += 1;
                                // Armed through the fetch and (on success)
                                // the completion stage: a panic anywhere
                                // before `complete` hands the flight to a
                                // waiter, mirroring the infallible path.
                                let guard = AbandonGuard {
                                    engine: &this.engine,
                                    key: &this.key,
                                    shard_index,
                                    flight: &flight,
                                };
                                let fetch_start = crate::telemetry::now();
                                let fetched = fetch();
                                crate::telemetry::global()
                                    .fetch_attempt_us
                                    .record(crate::telemetry::elapsed_us(fetch_start));
                                match fetched {
                                    Ok((value, cost)) => {
                                        let value = Arc::new(value);
                                        let outcome = this.engine.finish_leader_insert_with(
                                            &this.key,
                                            shard_index,
                                            &flight,
                                            Arc::clone(&value),
                                            cost,
                                            this.now,
                                            true,
                                        );
                                        flight.complete(Arc::clone(&value), cost);
                                        std::mem::forget(guard);
                                        this.state = TryLookupState::Finished;
                                        record_lookup_telemetry(
                                            this.started,
                                            LookupSource::Executed,
                                        );
                                        return Poll::Ready(Ok(Lookup {
                                            value,
                                            source: LookupSource::Executed,
                                            outcome: Some(outcome),
                                        }));
                                    }
                                    Err(error) => {
                                        // The error is handled explicitly —
                                        // the flight must NOT be abandoned.
                                        std::mem::forget(guard);
                                        let retry = &this.engine.inner.failure.retry;
                                        if error.is_retryable()
                                            && this.attempts < retry.max_attempts
                                        {
                                            this.engine
                                                .inner
                                                .fetch_retries
                                                .fetch_add(1, Ordering::Relaxed);
                                            let delay = retry.backoff(
                                                this.attempts,
                                                this.key.signature().value(),
                                            );
                                            let telemetry = crate::telemetry::global();
                                            telemetry.fetch_retries.incr();
                                            telemetry.recorder.record(
                                                TraceKind::FetchRetry,
                                                this.key.signature().value(),
                                                u64::from(this.attempts),
                                                delay.as_micros() as u64,
                                            );
                                            if delay.is_zero() {
                                                continue;
                                            }
                                            let sleep = this.engine.runtime().sleep(delay);
                                            this.state = TryLookupState::Backoff { flight, sleep };
                                            break;
                                        }
                                        let error = Arc::new(error);
                                        this.engine.fail_leader(
                                            &this.key,
                                            shard_index,
                                            &flight,
                                            &error,
                                            this.now,
                                        );
                                        flight.fail(Arc::clone(&error));
                                        this.state = TryLookupState::Finished;
                                        let result = this.engine.resolve_failed_lookup(
                                            &this.key,
                                            shard_index,
                                            this.now,
                                            error,
                                            false,
                                        );
                                        match &result {
                                            Ok(lookup) => {
                                                record_lookup_telemetry(this.started, lookup.source)
                                            }
                                            Err(_) => record_lookup_error_telemetry(this.started),
                                        }
                                        return Poll::Ready(result);
                                    }
                                }
                            }
                            // Fell out via `break`: poll the backoff sleep.
                        }
                        TryFetchDriver::Spawn { fetch, spawn } => {
                            let fetch = fetch.take().expect("leader consumes its fetch once");
                            let spawn = *spawn;
                            let epoch = flight.new_leader_epoch();
                            let cancel = Arc::new(AtomicBool::new(false));
                            this.leader_cancel = Some(Arc::clone(&cancel));
                            spawn(
                                &this.engine,
                                fetch,
                                this.key.clone(),
                                shard_index,
                                this.now,
                                Arc::clone(&flight),
                                epoch,
                                cancel,
                            );
                            this.state = TryLookupState::Waiting {
                                flight,
                                slot: WaiterSlot::new(),
                                leading: Some(epoch),
                            };
                        }
                    }
                }
            }
        }
    }
}

impl<V, F> Drop for TryLookupFuture<V, F> {
    fn drop(&mut self) {
        if let Some(cancel) = &self.leader_cancel {
            cancel.store(true, Ordering::Release);
        }
        match &mut self.state {
            // A cancelled waiter deregisters, passing along any takeover
            // claim (see LookupFuture's Drop).
            TryLookupState::Waiting {
                flight,
                slot,
                leading: None,
            } => {
                let shard_index = self.shard.expect("set before waiting");
                let mut state = self.engine.inner.shards[shard_index].lock();
                if flight.forget_waiter(slot)
                    && state
                        .inflight
                        .get(&self.key)
                        .is_some_and(|entry| Arc::ptr_eq(entry, flight))
                {
                    state.inflight.remove(&self.key);
                }
            }
            // An inline leader dropped mid-backoff still owns a pending
            // flight: abandon it so a waiter takes leadership over with its
            // own fetch (a waiterless cell is retired).  Open-coded (rather
            // than `abandon_flight`) because `Drop` carries no `V` bounds;
            // same locks, same order.
            TryLookupState::Backoff { flight, .. } => {
                let shard_index = self.shard.expect("set before leading");
                let mut state = self.engine.inner.shards[shard_index].lock();
                if flight.abandon() == 0
                    && state
                        .inflight
                        .get(&self.key)
                        .is_some_and(|entry| Arc::ptr_eq(entry, flight))
                {
                    state.inflight.remove(&self.key);
                }
            }
            _ => {}
        }
    }
}

/// The error a [`DeadlineLookup`] resolves to when its timeout elapses
/// before the lookup completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupTimedOut;

impl std::fmt::Display for LookupTimedOut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("lookup deadline elapsed before the query completed")
    }
}

impl std::error::Error for LookupTimedOut {}

/// The future returned by [`Watchman::get_or_execute_async_with_timeout`]:
/// a [`LookupFuture`] raced against a [`Sleep`] deadline.
///
/// Resolves to `Ok(`[`Lookup`]`)` if the lookup completes first, or
/// `Err(`[`LookupTimedOut`]`)` once the deadline fires — at which point the
/// inner lookup is dropped, which deregisters a waiter (handing along any
/// takeover claim) or cancels a leader whose fetch has not started yet.
pub struct DeadlineLookup<V, F> {
    /// `None` after the deadline fired (the drop *is* the cancellation).
    lookup: Option<LookupFuture<V, F>>,
    deadline: Sleep,
}

impl<V, F> std::fmt::Debug for DeadlineLookup<V, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeadlineLookup")
            .field("lookup", &self.lookup)
            .finish_non_exhaustive()
    }
}

impl<V, F> Future for DeadlineLookup<V, F>
where
    V: CachePayload + Send + Sync + 'static,
    F: FnOnce() -> (V, ExecutionCost) + Unpin,
{
    type Output = Result<Lookup<V>, LookupTimedOut>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let Some(lookup) = this.lookup.as_mut() else {
            panic!("DeadlineLookup polled after completion");
        };
        // Lookup first: a result that is ready when the deadline fires in
        // the same poll round still wins (the work was already done).
        if let Poll::Ready(lookup) = Pin::new(lookup).poll(cx) {
            this.lookup = None;
            return Poll::Ready(Ok(lookup));
        }
        match Pin::new(&mut this.deadline).poll(cx) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(()) => {
                // Dropping the lookup is the cancellation: waiter wakers
                // deregister, an unstarted leader fetch is skipped.
                this.lookup = None;
                Poll::Ready(Err(LookupTimedOut))
            }
        }
    }
}

/// The background task that runs rebalance passes every `period`.
///
/// Holds only weak references: it never keeps the engine alive, and exits
/// when the engine is dropped (the shutdown cell fires), when the runtime
/// goes away, or when the engine is gone at wake time.
struct RebalanceTask<V> {
    engine: Weak<Inner<V>>,
    shutdown: Arc<ShutdownCell>,
    runtime: Weak<crate::runtime::RuntimeInner>,
    sleep: Sleep,
    period: Duration,
}

impl<V> Future for RebalanceTask<V>
where
    V: CachePayload + Send + Sync + 'static,
{
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        loop {
            // Register before checking: a fire between check and suspend
            // must not be lost.
            this.shutdown.register(cx.waker());
            if this.shutdown.is_fired() {
                return Poll::Ready(());
            }
            match Pin::new(&mut this.sleep).poll(cx) {
                Poll::Pending => return Poll::Pending,
                Poll::Ready(()) => {
                    if this.shutdown.is_fired() {
                        return Poll::Ready(());
                    }
                    let Some(inner) = this.engine.upgrade() else {
                        return Poll::Ready(());
                    };
                    let engine = Watchman { inner };
                    let now =
                        Timestamp::from_micros(engine.inner.latest_now.load(Ordering::Relaxed));
                    engine.rebalance_pass(now);
                    drop(engine);
                    if this.runtime.upgrade().is_none() {
                        return Poll::Ready(());
                    }
                    this.sleep =
                        Sleep::until(this.runtime.clone(), crate::telemetry::now() + this.period);
                }
            }
        }
    }
}
