//! The concurrent WATCHMAN engine: the library's primary public API.
//!
//! The paper describes WATCHMAN as "a library of routines that may be linked
//! with an application" serving a multiuser warehouse front end (§3).  This
//! module is that library surface, designed for many concurrent sessions:
//!
//! * [`Watchman`] — a builder-configured facade that hash-partitions the
//!   keyspace by query signature across N per-shard policy instances and
//!   shares payloads as `Arc<V>`;
//! * [`Watchman::get_or_execute`] / [`Watchman::get_or_execute_async`] —
//!   the session entry points, with **single-flight** deduplication so
//!   concurrent misses on the same query execute the warehouse query exactly
//!   once.  Both front doors drive one poll-based implementation
//!   ([`LookupFuture`]): the async one suspends waiting sessions as futures
//!   on the engine's [`Runtime`](crate::runtime::Runtime) (a waiting session
//!   costs a waker, not a parked OS thread), the sync one is a
//!   [`block_on`](crate::runtime::block_on) shim over the same code;
//! * [`PolicyKind`] — the one construction path for every replacement /
//!   admission policy, shared by the engine, the simulator and the examples;
//! * [`CacheEvent`] / [`CacheObserver`] — the lifecycle event stream that
//!   the coherence [`DependencyIndex`](crate::coherence::DependencyIndex)
//!   and the buffer manager's p₀-redundancy hints subscribe to;
//! * [`RebalanceConfig`] — optional profit-aware capacity rebalancing that
//!   moves bytes from capacity-rich to capacity-starved shards on skewed
//!   keyspaces (the per-shard split is a static `total/N` otherwise).
//!   Passes run on a **background runtime task** every
//!   [`RebalanceConfig::period`] — never on a session's request path — and
//!   the task stops when the engine is dropped;
//! * [`StatsSnapshot`] — owned, aggregated statistics across shards.
//!
//! ## Failure handling
//!
//! If a single-flight leader's fetch panics, the flight is *abandoned*:
//! exactly one waiter is woken to take over leadership (no thundering herd,
//! no lost wakeup — a cancelled candidate passes the wake along), the other
//! waiters keep sleeping until the new leader completes the same flight
//! cell, and the panic is re-raised on the original leader's session.
//!
//! Expected failures — the warehouse itself erroring out — go through the
//! *fallible* front doors [`Watchman::try_get_or_execute`] /
//! [`Watchman::try_get_or_execute_async`], whose fetch closures return
//! `Result<(V, ExecutionCost), FetchError>`.  A terminal error (retry
//! budget from [`RetryPolicy`] exhausted, or a fatal error) resolves the
//! flight for **every** coalesced waiter with one shared
//! `Arc<FetchError>`, feeds a short-TTL per-key negative cache, and trips
//! the per-shard [`CircuitBreaker`] once the rolling failure rate crosses
//! its threshold.  When a [`StalenessPolicy`] is configured and its profit
//! gate passes, failed lookups are answered from the shard's last-known-good
//! store as [`LookupSource::Stale`] — accounted separately so degraded
//! answers never inflate the paper's CSR.
//!
//! ## Quick start
//!
//! ```
//! use watchman_core::engine::{LookupSource, PolicyKind, Watchman};
//! use watchman_core::prelude::*;
//!
//! let engine: Watchman<SizedPayload> = Watchman::builder()
//!     .shards(8)
//!     .policy(PolicyKind::LncRa { k: 4 })
//!     .capacity_bytes(16 << 20)
//!     .build();
//!
//! let key = QueryKey::from_raw_query("SELECT count(*) FROM orders");
//! let lookup = engine.get_or_execute(&key, Timestamp::from_secs(1), || {
//!     // Cache miss: execute against the warehouse and report the observed
//!     // cost. Under concurrency, only one session runs this closure per
//!     // distinct query.
//!     (SizedPayload::new(512), ExecutionCost::from_blocks(9_000))
//! });
//! assert_eq!(lookup.source, LookupSource::Executed);
//! assert!(engine.contains(&key));
//! ```

mod events;
mod failure;
mod policy_kind;
mod rebalance;
pub(crate) mod single_flight;
mod watchman;

pub use events::{CacheEvent, CacheObserver, EventCounters};
pub use failure::{
    splitmix64, BreakerConfig, BreakerState, CircuitBreaker, FailureConfig, FetchError,
    LookupError, NegativeCacheConfig, RetryPolicy, StalenessPolicy,
};
pub use policy_kind::PolicyKind;
pub use rebalance::{RebalanceConfig, RebalanceOutcome};
pub use watchman::{
    DeadlineLookup, KeyNormalizer, Lookup, LookupFuture, LookupSource, LookupTimedOut,
    StatsSnapshot, TryLookupFuture, Watchman, WatchmanBuilder,
};

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use super::*;
    use crate::clock::Timestamp;
    use crate::coherence::DependencyIndex;
    use crate::key::QueryKey;
    use crate::value::{CachePayload, ExecutionCost, SizedPayload};

    fn ts(us: u64) -> Timestamp {
        Timestamp::from_micros(us)
    }

    fn key(name: &str) -> QueryKey {
        QueryKey::new(name.to_owned())
    }

    fn engine(shards: usize, capacity: u64) -> Watchman<SizedPayload> {
        Watchman::builder()
            .shards(shards)
            .policy(PolicyKind::LNC_RA)
            .capacity_bytes(capacity)
            .build()
    }

    #[test]
    fn get_or_execute_round_trip() {
        let engine = engine(4, 1 << 20);
        let executed = Arc::new(AtomicU64::new(0));
        for i in 0..3 {
            let executed = Arc::clone(&executed);
            let lookup = engine.get_or_execute(&key("q"), ts(i + 1), move || {
                executed.fetch_add(1, Ordering::SeqCst);
                (SizedPayload::new(128), ExecutionCost::from_blocks(1_000))
            });
            assert_eq!(lookup.value.size_bytes(), 128);
        }
        assert_eq!(
            executed.load(Ordering::SeqCst),
            1,
            "repeat lookups must hit"
        );
        let stats = engine.stats();
        assert_eq!(stats.references, 3);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn shards_partition_the_keyspace() {
        let engine = engine(8, 64 << 20);
        for i in 0..200u32 {
            engine.insert(
                key(&format!("query-{i}")),
                SizedPayload::new(100),
                ExecutionCost::from_blocks(10),
                ts(u64::from(i) + 1),
            );
        }
        assert_eq!(engine.len(), 200);
        let snapshot = engine.stats_snapshot();
        assert_eq!(snapshot.per_shard.len(), 8);
        let populated = snapshot
            .per_shard
            .iter()
            .filter(|s| s.admissions > 0)
            .count();
        assert!(populated >= 6, "only {populated}/8 shards saw admissions");
        assert_eq!(snapshot.total.admissions, 200);
        assert_eq!(snapshot.entries, 200);
    }

    #[test]
    fn capacity_splits_exactly_across_shards() {
        for shards in [1, 3, 7, 8] {
            let engine = engine(shards, 1_000_003);
            assert_eq!(engine.capacity_bytes(), 1_000_003, "{shards} shards");
            assert_eq!(
                engine.shard_capacities().iter().sum::<u64>(),
                1_000_003,
                "{shards} shards"
            );
        }
    }

    #[test]
    fn tiny_capacity_never_creates_zero_byte_shards() {
        // capacity < shards: an even split would hand some shards 0 bytes,
        // silently voiding their slice of the keyspace.  The builder clamps
        // the shard count instead.
        let engine = engine(8, 3);
        assert_eq!(engine.shard_count(), 3);
        assert_eq!(engine.capacity_bytes(), 3);
        assert!(engine
            .shard_capacities()
            .iter()
            .all(|&capacity| capacity >= 1));
        // Every shard can now hold data: a 1-byte set may lose the admission
        // test, but it must never be turned away for lack of any capacity.
        for i in 0..20 {
            let outcome = engine.insert(
                key(&format!("tiny-{i}")),
                SizedPayload::new(1),
                ExecutionCost::from_blocks(10),
                ts(i + 1),
            );
            assert!(
                !matches!(
                    outcome,
                    crate::policy::InsertOutcome::Rejected(
                        crate::policy::RejectReason::ZeroCapacity
                    )
                ),
                "1-byte set must never see ZeroCapacity, got {outcome}"
            );
        }
        // A zero-capacity engine still keeps its configured shard count: the
        // whole cache is deliberately inert, not misconfigured.
        let zero = engine_with(4, 0);
        assert_eq!(zero.shard_count(), 4);
        assert_eq!(zero.capacity_bytes(), 0);
    }

    fn engine_with(shards: usize, capacity: u64) -> Watchman<SizedPayload> {
        Watchman::builder()
            .shards(shards)
            .policy(PolicyKind::LNC_RA)
            .capacity_bytes(capacity)
            .build()
    }

    #[test]
    fn refresh_that_grows_payload_reports_its_evictions() {
        // Regression: a re-insert of a cached key whose payload grew used to
        // report AlreadyCached with no eviction information, so observer
        // mirrors kept the displaced keys forever.
        let counters = Arc::new(EventCounters::new());
        let deps = Arc::new(crate::coherence::DependencyObserver::new(
            |key: &QueryKey| vec![format!("REL_{}", key.text())],
        ));
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(1)
            .policy(PolicyKind::Lru)
            .capacity_bytes(300)
            .observer(Arc::clone(&counters) as Arc<dyn CacheObserver>)
            .observer(Arc::clone(&deps) as Arc<dyn CacheObserver>)
            .build();
        let cost = ExecutionCost::from_blocks(100);
        engine.insert(key("a"), SizedPayload::new(100), cost, ts(1));
        engine.insert(key("b"), SizedPayload::new(100), cost, ts(2));
        assert_eq!(deps.affected_by("REL_b"), vec![key("b")]);

        // Refresh "a" with a payload so large that "b" must be evicted.
        let outcome = engine.insert(key("a"), SizedPayload::new(250), cost, ts(3));
        assert_eq!(outcome.evicted(), &[key("b")]);
        assert!(outcome.is_cached());
        assert!(!outcome.is_admitted(), "a refresh is not a new admission");
        assert!(!engine.contains(&key("b")));
        assert_eq!(counters.evicted(), 1, "the eviction must be published");
        assert_eq!(counters.admitted(), 2, "a refresh emits no Admitted event");
        assert!(
            deps.affected_by("REL_b").is_empty(),
            "the dependency mirror must drop the evicted key"
        );
        assert_eq!(deps.affected_by("REL_a"), vec![key("a")]);
    }

    #[test]
    fn observers_see_admissions_evictions_and_invalidations() {
        let counters = Arc::new(EventCounters::new());
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(1)
            .policy(PolicyKind::Lru)
            .capacity_bytes(250)
            .observer(Arc::clone(&counters) as Arc<dyn CacheObserver>)
            .build();
        // Two admissions fit; the third evicts the oldest.
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            engine.insert(
                key(name),
                SizedPayload::new(100),
                ExecutionCost::from_blocks(10),
                ts(i as u64 + 1),
            );
        }
        assert_eq!(counters.admitted(), 3);
        assert_eq!(counters.evicted(), 1);
        assert!(engine.invalidate(&key("c")));
        assert!(
            !engine.invalidate(&key("c")),
            "second invalidation is a no-op"
        );
        assert_eq!(counters.invalidated(), 1);
        // An oversized offer is rejected and reported.
        engine.insert(
            key("huge"),
            SizedPayload::new(10_000),
            ExecutionCost::from_blocks(10),
            ts(10),
        );
        assert_eq!(counters.rejected(), 1);
    }

    /// Classifies `count` generated keys by the shard they hash to, by
    /// probing a throwaway engine and watching per-shard occupancy grow.
    fn keys_by_shard(shards: usize, count: usize) -> Vec<Vec<QueryKey>> {
        let probe = engine_with(shards, 1 << 30);
        let mut buckets = vec![Vec::new(); shards];
        let mut previous = vec![0u64; shards];
        for i in 0..count {
            let k = key(&format!("classify-{i}"));
            probe.insert(
                k.clone(),
                SizedPayload::new(1),
                ExecutionCost::from_blocks(1),
                ts(i as u64 + 1),
            );
            let snapshot = probe.stats_snapshot();
            for (shard, bucket) in buckets.iter_mut().enumerate() {
                if snapshot.per_shard_used[shard] != previous[shard] {
                    bucket.push(k.clone());
                }
                previous[shard] = snapshot.per_shard_used[shard];
            }
        }
        buckets
    }

    #[test]
    fn rebalancer_moves_capacity_to_the_starved_shard() {
        const TOTAL: u64 = 20_000;
        let counters = Arc::new(EventCounters::new());
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(2)
            .policy(PolicyKind::LNC_RA)
            .capacity_bytes(TOTAL)
            .rebalance(
                RebalanceConfig::new()
                    .manual() // driven explicitly below
                    .with_min_shard_fraction(0.25)
                    .with_step_fraction(0.1),
            )
            .observer(Arc::clone(&counters) as Arc<dyn CacheObserver>)
            .build();
        let buckets = keys_by_shard(2, 120);
        // Shard 0 sees a hot working set of valuable summaries that does not
        // fit its static half; shard 1 sees only one-off junk.
        let hot: Vec<_> = buckets[0].iter().take(15).cloned().collect();
        let junk: Vec<_> = buckets[1].clone();
        assert!(
            hot.len() == 15 && junk.len() >= 20,
            "probe found too few keys"
        );

        let mut now = 0u64;
        let mut junk_round = 0usize;
        for round in 0..60u64 {
            for k in &hot {
                now += 1_000;
                engine.get_or_execute(&k.clone(), ts(now), || {
                    (
                        SizedPayload::new(1_000),
                        ExecutionCost::from_blocks(100_000),
                    )
                });
            }
            // A couple of never-repeating junk queries per round.
            for _ in 0..2 {
                let k = &junk[junk_round % junk.len()];
                junk_round += 1;
                now += 1_000;
                engine.get_or_execute(&k.clone(), ts(now), || {
                    (SizedPayload::new(2_000), ExecutionCost::from_blocks(1))
                });
            }
            if round % 3 == 2 {
                engine.rebalance_now(ts(now));
            }
            // The invariants hold at every step, not just at the end.
            let snapshot = engine.stats_snapshot();
            assert_eq!(
                snapshot.per_shard_capacity.iter().sum::<u64>(),
                TOTAL,
                "capacity must be conserved across rebalances"
            );
            for shard in 0..2 {
                assert!(
                    snapshot.per_shard_used[shard] <= snapshot.per_shard_capacity[shard],
                    "occupancy invariant violated on shard {shard}"
                );
            }
        }

        let capacities = engine.shard_capacities();
        let floor = (0.25 * (TOTAL / 2) as f64) as u64;
        assert!(
            engine.rebalance_count() > 0,
            "the starved shard must have attracted capacity"
        );
        assert!(
            capacities[0] > capacities[1],
            "capacity must flow toward the hot shard: {capacities:?}"
        );
        assert!(
            capacities.iter().all(|&c| c >= floor),
            "no shard may fall below the floor: {capacities:?}"
        );
        let snapshot = engine.stats_snapshot();
        assert_eq!(snapshot.rebalances, engine.rebalance_count());
        assert_eq!(snapshot.capacity_bytes, TOTAL);
        // The donor's shrink evictions were published to observers.
        assert!(counters.evicted() > 0);
    }

    #[test]
    fn rebalance_now_without_configuration_is_inert() {
        let engine = engine(4, 1 << 20);
        assert!(engine.rebalance_now(ts(1)).is_none());
        assert_eq!(engine.rebalance_count(), 0);
        assert_eq!(engine.stats_snapshot().rebalances, 0);
    }

    #[test]
    fn invalidate_relation_drives_the_dependency_index() {
        let engine = engine(4, 1 << 20);
        let mut index = DependencyIndex::new();
        engine.insert(
            key("orders-summary"),
            SizedPayload::new(64),
            ExecutionCost::from_blocks(100),
            ts(1),
        );
        engine.insert(
            key("parts-summary"),
            SizedPayload::new(64),
            ExecutionCost::from_blocks(100),
            ts(2),
        );
        index.register(key("orders-summary"), ["ORDERS"]);
        index.register(key("parts-summary"), ["PART"]);

        let report = engine.invalidate_relation(&mut index, "ORDERS");
        assert_eq!(report.invalidated, vec![key("orders-summary")]);
        assert!(!engine.contains(&key("orders-summary")));
        assert!(engine.contains(&key("parts-summary")));
    }

    #[test]
    fn canonical_sql_matching_merges_equivalent_queries() {
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(4)
            .policy(PolicyKind::LNC_RA)
            .capacity_bytes(1 << 20)
            .canonical_sql_matching()
            .build();
        let a = QueryKey::from_raw_query("SELECT sum(x) FROM t WHERE p = 1 AND q = 2");
        let b = QueryKey::from_raw_query("select SUM(x) from t where q = 2 and p = 1");
        engine.insert(
            a.clone(),
            SizedPayload::new(64),
            ExecutionCost::from_blocks(100),
            ts(1),
        );
        assert!(engine.contains(&b), "equivalent query must share the entry");
        assert!(engine.get(&b, ts(2)).is_some());
        assert_eq!(engine.len(), 1);
    }

    #[test]
    fn single_flight_coalesces_concurrent_misses() {
        let engine = engine(4, 4 << 20);
        let executions = Arc::new(AtomicU64::new(0));
        let sessions = 8;
        std::thread::scope(|scope| {
            for _ in 0..sessions {
                let engine = engine.clone();
                let executions = Arc::clone(&executions);
                scope.spawn(move || {
                    let lookup = engine.get_or_execute(&key("hot"), ts(1), || {
                        executions.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough for the other
                        // sessions to pile up behind it.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        (SizedPayload::new(256), ExecutionCost::from_blocks(50_000))
                    });
                    assert_eq!(lookup.value.size_bytes(), 256);
                });
            }
        });
        assert_eq!(
            executions.load(Ordering::SeqCst),
            1,
            "concurrent misses on one query must execute once"
        );
        let snapshot = engine.stats_snapshot();
        assert!(
            snapshot.coalesced_misses >= 1,
            "at least one session must have coalesced"
        );
    }

    #[test]
    fn leader_panic_hands_the_flight_to_a_waiter() {
        let engine = engine(1, 1 << 20);
        let attempts = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            {
                let engine = engine.clone();
                let attempts = Arc::clone(&attempts);
                scope.spawn(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        engine.get_or_execute(&key("fragile"), ts(1), || {
                            attempts.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            panic!("warehouse connection lost");
                        })
                    }));
                    assert!(result.is_err(), "leader must propagate its panic");
                });
            }
            {
                let engine = engine.clone();
                let attempts = Arc::clone(&attempts);
                scope.spawn(move || {
                    // Join only once the doomed leader has really claimed the
                    // flight (a fixed sleep is racy on a loaded box).
                    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
                    while attempts.load(Ordering::SeqCst) == 0 {
                        assert!(
                            std::time::Instant::now() < deadline,
                            "leader never started its fetch"
                        );
                        std::thread::yield_now();
                    }
                    let lookup = engine.get_or_execute(&key("fragile"), ts(2), || {
                        attempts.fetch_add(1, Ordering::SeqCst);
                        (SizedPayload::new(64), ExecutionCost::from_blocks(100))
                    });
                    assert_eq!(lookup.value.size_bytes(), 64);
                });
            }
        });
        assert_eq!(
            attempts.load(Ordering::SeqCst),
            2,
            "waiter must retry after abandonment"
        );
        assert!(engine.contains(&key("fragile")));
    }

    #[test]
    fn clear_and_utilization() {
        let engine = engine(2, 1_000);
        engine.insert(
            key("q"),
            SizedPayload::new(100),
            ExecutionCost::from_blocks(10),
            ts(1),
        );
        assert!(engine.utilization() > 0.0);
        assert_eq!(engine.cached_keys().len(), 1);
        engine.clear();
        assert!(engine.is_empty());
        assert_eq!(engine.used_bytes(), 0);
        // Statistics survive a clear.
        assert_eq!(engine.stats().references, 1);
    }

    #[test]
    fn async_lookup_round_trip() {
        use crate::runtime::block_on;
        let engine = engine(4, 1 << 20);
        let first = block_on(engine.get_or_execute_async(&key("q"), ts(1), || {
            (SizedPayload::new(128), ExecutionCost::from_blocks(1_000))
        }));
        assert_eq!(first.source, LookupSource::Executed);
        assert!(first.outcome.as_ref().is_some_and(|o| o.is_admitted()));
        let again = block_on(
            engine.get_or_execute_async(&key("q"), ts(2), || unreachable!("served from cache")),
        );
        assert_eq!(again.source, LookupSource::Hit);
        assert_eq!(engine.stats().hits, 1);
    }

    #[test]
    fn sync_and_async_paths_yield_identical_snapshots() {
        // One deterministic single-session op sequence, replayed through both
        // front doors on fresh engines: the poll-based implementation is
        // shared, so every counter must match exactly.
        use crate::runtime::block_on;
        let sync_engine = engine(4, 40_000);
        let async_engine = engine(4, 40_000);
        for i in 0..400u64 {
            let name = format!("q{}", i % 37);
            let k = key(&name);
            let now = ts(i * 1_000 + 1);
            let size = 100 + (i % 9) * 150;
            let cost = ExecutionCost::from_blocks(500 + (i % 13) * 900);
            sync_engine.get_or_execute(&k, now, || (SizedPayload::new(size), cost));
            block_on(
                async_engine.get_or_execute_async(&k, now, move || (SizedPayload::new(size), cost)),
            );
        }
        assert_eq!(sync_engine.stats_snapshot(), async_engine.stats_snapshot());
    }

    #[test]
    fn async_leader_panic_hands_the_flight_to_a_waiter() {
        // The async-path regression for the takeover protocol: the leader's
        // spawned fetch is killed mid-flight (panics), exactly one waiter
        // takes over the same flight cell, and the panic is re-raised on the
        // leader's session.
        use crate::runtime::block_on;
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(1)
            .policy(PolicyKind::LNC_RA)
            .capacity_bytes(1 << 20)
            .runtime_workers(2)
            .build();
        let attempts = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            {
                let engine = engine.clone();
                let attempts = Arc::clone(&attempts);
                scope.spawn(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        block_on(
                            engine.get_or_execute_async(&key("fragile"), ts(1), move || {
                                attempts.fetch_add(1, Ordering::SeqCst);
                                std::thread::sleep(std::time::Duration::from_millis(20));
                                panic!("warehouse connection lost");
                            }),
                        )
                    }));
                    assert!(result.is_err(), "leader session must re-raise the panic");
                });
            }
            {
                let engine = engine.clone();
                let attempts = Arc::clone(&attempts);
                scope.spawn(move || {
                    // Join only once the doomed leader has really claimed the
                    // flight (a fixed sleep is racy on a loaded box).
                    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
                    while attempts.load(Ordering::SeqCst) == 0 {
                        assert!(
                            std::time::Instant::now() < deadline,
                            "leader never started its fetch"
                        );
                        std::thread::yield_now();
                    }
                    let lookup =
                        block_on(
                            engine.get_or_execute_async(&key("fragile"), ts(2), move || {
                                attempts.fetch_add(1, Ordering::SeqCst);
                                (SizedPayload::new(64), ExecutionCost::from_blocks(100))
                            }),
                        );
                    assert_eq!(lookup.value.size_bytes(), 64);
                    assert_eq!(lookup.source, LookupSource::Executed);
                });
            }
        });
        assert_eq!(
            attempts.load(Ordering::SeqCst),
            2,
            "exactly one waiter must take over after abandonment"
        );
        assert!(engine.contains(&key("fragile")));
    }

    #[test]
    fn takeover_after_post_insert_panic_serves_the_cached_value() {
        // The leader's fetch succeeds and the insert lands, then a user
        // observer panics during the emit (still inside the leader's
        // completion).  The flight is abandoned — but the value IS cached,
        // so the woken waiter must be served a hit instead of re-running
        // the multi-second warehouse query.
        struct PanicOnAdmit;
        impl CacheObserver for PanicOnAdmit {
            fn on_cache_event(&self, event: &CacheEvent) {
                if matches!(event, CacheEvent::Admitted { .. }) {
                    panic!("observer failed");
                }
            }
        }
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(1)
            .policy(PolicyKind::LNC_RA)
            .capacity_bytes(1 << 20)
            .observer(Arc::new(PanicOnAdmit))
            .build();
        let fetches = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            {
                let engine = engine.clone();
                let fetches = Arc::clone(&fetches);
                scope.spawn(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        engine.get_or_execute(&key("observed"), ts(1), || {
                            fetches.fetch_add(1, Ordering::SeqCst);
                            // Keep the flight open so the waiter joins it.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            (SizedPayload::new(128), ExecutionCost::from_blocks(1_000))
                        })
                    }));
                    assert!(result.is_err(), "the observer panic must propagate");
                });
            }
            {
                let engine = engine.clone();
                let fetches = Arc::clone(&fetches);
                scope.spawn(move || {
                    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
                    while fetches.load(Ordering::SeqCst) == 0 {
                        assert!(
                            std::time::Instant::now() < deadline,
                            "leader never started its fetch"
                        );
                        std::thread::yield_now();
                    }
                    let lookup = engine.get_or_execute(&key("observed"), ts(2), || {
                        fetches.fetch_add(1, Ordering::SeqCst);
                        (SizedPayload::new(999), ExecutionCost::from_blocks(1))
                    });
                    assert_eq!(
                        lookup.source,
                        LookupSource::Hit,
                        "the waiter must be served the already-cached value"
                    );
                    assert_eq!(lookup.value.size_bytes(), 128);
                });
            }
        });
        assert_eq!(
            fetches.load(Ordering::SeqCst),
            1,
            "the cached value must not be re-fetched"
        );
        assert!(engine.contains(&key("observed")));
        assert_eq!(
            engine.inflight_entries(),
            0,
            "the abandoned cell is retired"
        );
    }

    #[test]
    fn abandoned_flight_with_no_waiters_is_retired() {
        // Regression: a panicking fetch on a key nobody else ever requests
        // used to leave its (dead) flight cell — and the boxed panic
        // payload — in the shard's in-flight table forever.
        use crate::runtime::block_on;
        let engine = engine(2, 1 << 20);

        // Sync path: the leader panics with no waiters registered.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.get_or_execute(&key("doomed-sync"), ts(1), || {
                panic!("warehouse connection lost")
            })
        }));
        assert!(result.is_err());
        assert_eq!(
            engine.inflight_entries(),
            0,
            "sync panic must not leak an in-flight cell"
        );

        // Async path: same, with the fetch on a runtime worker.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            block_on(
                engine.get_or_execute_async(&key("doomed-async"), ts(2), || {
                    panic!("warehouse connection lost")
                }),
            )
        }));
        assert!(result.is_err());
        // The leader session observes the panic the moment the payload is
        // set; the fetch task's retirement of the entry races a hair behind.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while engine.inflight_entries() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "async panic must not leak an in-flight cell"
            );
            std::thread::yield_now();
        }

        // The keys are usable again afterwards (fresh flights).
        let lookup = engine.get_or_execute(&key("doomed-sync"), ts(3), || {
            (SizedPayload::new(32), ExecutionCost::from_blocks(10))
        });
        assert_eq!(lookup.source, LookupSource::Executed);
        assert_eq!(engine.inflight_entries(), 0);
    }

    #[test]
    fn cancelled_leader_fetch_is_never_invoked() {
        // Regression for the abandoned-fetch work leak: a session that
        // claims single-flight leadership and is then dropped (connection
        // torn down, deadline elapsed) before its spawned fetch gets a
        // worker used to run the multi-second warehouse query to
        // completion anyway.  Now the fetch task observes the cancellation
        // flag, never invokes the closure, and retires the flight cell.
        use crate::runtime::Runtime;
        use std::future::Future;
        use std::pin::Pin;
        use std::sync::atomic::AtomicBool;
        use std::task::{Context, Waker};

        let runtime = Arc::new(Runtime::with_workers(1));
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(1)
            .policy(PolicyKind::LNC_RA)
            .capacity_bytes(1 << 20)
            .runtime(Arc::clone(&runtime))
            .build();

        // Occupy the only worker so the spawned fetch task stays queued.
        let gate_started = Arc::new(AtomicBool::new(false));
        let gate_release = Arc::new(AtomicBool::new(false));
        let gate = {
            let started = Arc::clone(&gate_started);
            let release = Arc::clone(&gate_release);
            runtime.spawn(async move {
                started.store(true, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            })
        };
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !gate_started.load(Ordering::SeqCst) {
            assert!(std::time::Instant::now() < deadline, "gate never ran");
            std::thread::yield_now();
        }

        // Claim leadership (one poll spawns the fetch task), then abandon
        // the session.  The closure would hang forever if it ever ran; the
        // counter proves it never does.
        let executed = Arc::new(AtomicU64::new(0));
        {
            let executed = Arc::clone(&executed);
            let mut lookup = engine.get_or_execute_async(&key("abandoned"), ts(1), move || {
                executed.fetch_add(1, Ordering::SeqCst);
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
            });
            let waker = Waker::noop();
            let mut cx = Context::from_waker(waker);
            assert!(
                Pin::new(&mut lookup).poll(&mut cx).is_pending(),
                "leader suspends on its spawned fetch"
            );
            assert_eq!(engine.inflight_entries(), 1, "leadership claimed");
            // Dropping the future here is the cancellation.
        }

        gate_release.store(true, Ordering::SeqCst);
        crate::runtime::block_on(gate).unwrap();
        // The fetch task (now scheduled) must observe the cancellation,
        // skip the closure and retire the cell.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while engine.inflight_entries() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "cancelled flight cell never retired"
            );
            std::thread::yield_now();
        }
        assert_eq!(
            executed.load(Ordering::SeqCst),
            0,
            "cancelled fetch must never be invoked"
        );

        // The key starts a fresh flight afterwards.
        let lookup = engine.get_or_execute(&key("abandoned"), ts(2), || {
            (SizedPayload::new(16), ExecutionCost::from_blocks(5))
        });
        assert_eq!(lookup.source, LookupSource::Executed);
    }

    #[test]
    fn timed_out_waiter_resolves_err_while_the_leader_completes() {
        // A coalescing session with a deadline gives up without disturbing
        // the leader: the lookup resolves Err(LookupTimedOut), the waiter
        // deregisters, and the leader's result still lands in the cache.
        use crate::runtime::block_on;
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(1)
            .policy(PolicyKind::LNC_RA)
            .capacity_bytes(1 << 20)
            .runtime_workers(2)
            .build();
        let started = Arc::new(AtomicU64::new(0));
        let finish = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            {
                let engine = engine.clone();
                let started = Arc::clone(&started);
                let finish = Arc::clone(&finish);
                scope.spawn(move || {
                    let lookup =
                        block_on(engine.get_or_execute_async(&key("slow"), ts(1), move || {
                            started.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open until the waiter timed out.
                            let deadline =
                                std::time::Instant::now() + std::time::Duration::from_secs(10);
                            while finish.load(Ordering::SeqCst) == 0 {
                                assert!(std::time::Instant::now() < deadline);
                                std::thread::sleep(std::time::Duration::from_millis(1));
                            }
                            (SizedPayload::new(64), ExecutionCost::from_blocks(100))
                        }));
                    assert_eq!(lookup.source, LookupSource::Executed);
                });
            }
            {
                let engine = engine.clone();
                let started = Arc::clone(&started);
                let finish = Arc::clone(&finish);
                scope.spawn(move || {
                    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
                    while started.load(Ordering::SeqCst) == 0 {
                        assert!(std::time::Instant::now() < deadline, "leader never started");
                        std::thread::yield_now();
                    }
                    let result = block_on(engine.get_or_execute_async_with_timeout(
                        &key("slow"),
                        ts(2),
                        std::time::Duration::from_millis(30),
                        || unreachable!("the waiter coalesces; its fetch never runs"),
                    ));
                    assert_eq!(result.unwrap_err(), LookupTimedOut);
                    // Only now let the leader's fetch finish.
                    finish.store(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(started.load(Ordering::SeqCst), 1, "exactly one execution");
        assert!(engine.contains(&key("slow")), "leader's result is cached");
        assert_eq!(engine.inflight_entries(), 0);
    }

    #[test]
    fn deadline_lookup_resolves_ok_when_the_fetch_beats_the_timeout() {
        use crate::runtime::block_on;
        let engine = engine(2, 1 << 20);
        let lookup = block_on(engine.get_or_execute_async_with_timeout(
            &key("fast"),
            ts(1),
            std::time::Duration::from_secs(30),
            || (SizedPayload::new(32), ExecutionCost::from_blocks(10)),
        ))
        .expect("well within the deadline");
        assert_eq!(lookup.source, LookupSource::Executed);
        let hit = block_on(engine.get_or_execute_async_with_timeout(
            &key("fast"),
            ts(2),
            std::time::Duration::from_secs(30),
            || unreachable!("cached"),
        ))
        .expect("hits resolve immediately");
        assert_eq!(hit.source, LookupSource::Hit);
    }

    #[test]
    fn rebalance_passes_never_run_on_a_session_thread() {
        use crate::runtime::Runtime;
        let runtime = Arc::new(Runtime::with_workers(1));
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(4)
            .policy(PolicyKind::LNC_RA)
            .capacity_bytes(10_000)
            .runtime(Arc::clone(&runtime))
            .rebalance(
                RebalanceConfig::new()
                    .with_period(std::time::Duration::from_millis(2))
                    .with_min_shard_fraction(0.25)
                    .with_step_fraction(0.1),
            )
            .build();
        // Hammer the request path from this (session) thread while the
        // background task runs passes on the runtime worker.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut i = 0u64;
        while engine.rebalance_passes() < 3 {
            assert!(
                std::time::Instant::now() < deadline,
                "background task never ran a pass"
            );
            i += 1;
            engine.get_or_execute(&key(&format!("q{}", i % 50)), ts(i + 1), || {
                (SizedPayload::new(400), ExecutionCost::from_blocks(1_000))
            });
        }
        let session_thread = std::thread::current().id();
        let pass_threads = engine.rebalance_pass_threads();
        assert!(!pass_threads.is_empty());
        assert!(
            pass_threads.iter().all(|&id| id != session_thread),
            "a rebalance pass ran on the session thread"
        );
    }

    #[test]
    fn manual_rebalancing_runs_no_passes_from_the_request_path() {
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(4)
            .policy(PolicyKind::LNC_RA)
            .capacity_bytes(10_000)
            .rebalance(RebalanceConfig::new().manual())
            .build();
        for i in 0..2_000u64 {
            engine.get_or_execute(&key(&format!("q{}", i % 60)), ts(i + 1), || {
                (SizedPayload::new(300), ExecutionCost::from_blocks(500))
            });
        }
        assert_eq!(
            engine.rebalance_passes(),
            0,
            "no request-path trigger may remain"
        );
        engine.rebalance_now(ts(3_000));
        assert_eq!(engine.rebalance_passes(), 1, "explicit passes still work");
    }

    #[test]
    fn background_rebalancer_stops_when_the_engine_drops() {
        use crate::runtime::Runtime;
        // A shared runtime that outlives the engine: the engine's background
        // task must exit promptly once the engine is dropped.
        let runtime = Arc::new(Runtime::with_workers(1));
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(2)
            .policy(PolicyKind::LNC_RA)
            .capacity_bytes(10_000)
            .runtime(Arc::clone(&runtime))
            .rebalance(RebalanceConfig::new().with_period(std::time::Duration::from_millis(5)))
            .build();
        assert_eq!(runtime.alive_tasks(), 1, "background task spawned");
        // Let it run at least one pass so we know it was really alive.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while engine.rebalance_passes() == 0 {
            assert!(std::time::Instant::now() < deadline, "task never ran");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        drop(engine);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while runtime.alive_tasks() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "background task survived the engine it belongs to"
            );
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    #[test]
    fn one_shard_engine_matches_a_raw_policy_replay() {
        let shard_engine = engine(1, 10_000);
        let mut raw = PolicyKind::LNC_RA.build::<Arc<SizedPayload>>(10_000);
        for i in 0..400u64 {
            let name = format!("q{}", i % 23);
            let k = key(&name);
            let now = ts(i * 1_000 + 1);
            let size = 100 + (i % 7) * 30;
            let cost = ExecutionCost::from_blocks(500 + (i % 11) * 100);
            if shard_engine.get(&k, now).is_none() {
                shard_engine.insert(k.clone(), SizedPayload::new(size), cost, now);
            }
            if raw.get(&k, now).is_none() {
                raw.insert(k, Arc::new(SizedPayload::new(size)), cost, now);
            }
        }
        assert_eq!(shard_engine.stats(), raw.stats_snapshot());
        assert_eq!(shard_engine.used_bytes(), raw.used_bytes());
        assert_eq!(shard_engine.len(), raw.len());
    }

    #[test]
    fn stats_snapshot_round_trips_through_json() {
        // The server's STATS opcode ships snapshots as JSON; every counter
        // (including the float cost accumulators, which print in shortest
        // round-trip form) must survive the trip bit-for-bit.
        let engine = engine(4, 4_000);
        for i in 0..300u64 {
            let k = key(&format!("q{}", i % 17));
            let now = ts(i * 1_000 + 1);
            if engine.get(&k, now).is_none() {
                engine.insert(
                    k,
                    SizedPayload::new(100 + (i % 5) * 37),
                    ExecutionCost::from_block_reads(250.5 + i as f64 * 0.875),
                    now,
                );
            }
        }
        let snapshot = engine.stats_snapshot();
        assert!(snapshot.total.total_cost > 0.0);
        let json = serde_json::to_string(&snapshot).expect("snapshot serializes");
        let back: StatsSnapshot = serde_json::from_str(&json).expect("snapshot parses");
        assert_eq!(snapshot, back, "JSON round trip must be exact");
    }

    #[test]
    fn peek_leaves_stats_and_policy_state_untouched() {
        // For every policy: peek returns the payload but records nothing —
        // the snapshot (references, hits, cost accumulators) stays
        // byte-identical no matter how often the admin path probes.
        for kind in [
            PolicyKind::LNC_RA,
            PolicyKind::LNC_R,
            PolicyKind::Lru,
            PolicyKind::LruK { k: 2 },
            PolicyKind::Lfu,
            PolicyKind::Lcs,
            PolicyKind::GreedyDualSize,
        ] {
            let engine: Watchman<SizedPayload> = Watchman::builder()
                .shards(2)
                .policy(kind)
                .capacity_bytes(1 << 20)
                .build();
            for i in 0..20u64 {
                engine.insert(
                    key(&format!("q{i}")),
                    SizedPayload::new(200),
                    ExecutionCost::from_blocks(1_000 + i),
                    ts(i + 1),
                );
            }
            let before = engine.stats_snapshot();
            for _ in 0..50 {
                assert!(engine.peek(&key("q3")).is_some(), "{kind}: q3 is cached");
                assert!(engine.peek(&key("absent")).is_none());
            }
            let mut after = engine.stats_snapshot();
            // Snapshots are deliberately not idempotent in one respect: each
            // call records one fragmentation sample.  Peek must leave the
            // occupancy itself untouched, so the *fractions* still match;
            // align the sample bookkeeping and compare everything else.
            assert_eq!(
                after.fragmentation.average_used_fraction(),
                before.fragmentation.average_used_fraction(),
                "{kind}: peek must not change occupancy"
            );
            after.fragmentation = before.fragmentation.clone();
            assert_eq!(after, before, "{kind}: peek must not mutate statistics");
        }
    }

    #[test]
    fn peek_does_not_refresh_recency() {
        // LRU with room for exactly two sets: A is older than B, so the next
        // admission must evict A — even after A was peeked many times.  A
        // `get` in peek's place would have bumped A and evicted B instead.
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(1)
            .policy(PolicyKind::Lru)
            .capacity_bytes(200)
            .build();
        engine.insert(
            key("a"),
            SizedPayload::new(100),
            ExecutionCost::from_blocks(10),
            ts(1),
        );
        engine.insert(
            key("b"),
            SizedPayload::new(100),
            ExecutionCost::from_blocks(10),
            ts(2),
        );
        for i in 0..25 {
            assert!(engine.peek(&key("a")).is_some());
            assert!(ts(i).as_micros() < u64::MAX);
        }
        let outcome = engine.insert(
            key("c"),
            SizedPayload::new(100),
            ExecutionCost::from_blocks(10),
            ts(3),
        );
        assert_eq!(outcome.evicted(), &[key("a")], "peeking must not protect a");
        assert!(engine.contains(&key("b")));
        assert!(engine.peek(&key("a")).is_none());
    }

    // ---- fallible fetch pipeline -------------------------------------------

    /// A failure config with no retries, breaker, or staleness: errors are
    /// terminal on the first attempt (negative caching still applies).
    fn no_retry() -> FailureConfig {
        FailureConfig {
            retry: RetryPolicy::none(),
            ..FailureConfig::default()
        }
    }

    fn payload_ok(size: u64, blocks: u64) -> Result<(SizedPayload, ExecutionCost), FetchError> {
        Ok((SizedPayload::new(size), ExecutionCost::from_blocks(blocks)))
    }

    #[test]
    fn try_path_success_is_stat_identical_to_infallible_path() {
        // The fallible front door with an always-Ok fetch must be
        // byte-identical to the infallible one: same counters, same
        // occupancy, same everything the snapshot can see.
        let plain = engine(4, 40_000);
        let fallible = engine(4, 40_000);
        for i in 0..300u64 {
            let k = key(&format!("q{}", i % 23));
            let now = ts(i * 1_000 + 1);
            let size = 100 + (i % 7) * 120;
            let cost = ExecutionCost::from_blocks(400 + (i % 11) * 800);
            plain.get_or_execute(&k, now, || (SizedPayload::new(size), cost));
            fallible
                .try_get_or_execute(&k, now, || Ok((SizedPayload::new(size), cost)))
                .expect("fetch never fails");
        }
        assert_eq!(plain.stats_snapshot(), fallible.stats_snapshot());
    }

    #[test]
    fn transient_errors_are_retried_within_the_budget() {
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(1)
            .policy(PolicyKind::LNC_RA)
            .capacity_bytes(1 << 20)
            .failure(FailureConfig {
                retry: RetryPolicy {
                    max_attempts: 3,
                    base_delay: std::time::Duration::ZERO,
                    max_delay: std::time::Duration::ZERO,
                    jitter_seed: 7,
                },
                ..FailureConfig::default()
            })
            .build();
        let attempts = AtomicU64::new(0);
        let lookup = engine
            .try_get_or_execute(&key("flaky"), ts(1), || {
                if attempts.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err(FetchError::transient("warehouse hiccup"))
                } else {
                    payload_ok(128, 1_000)
                }
            })
            .expect("third attempt succeeds");
        assert_eq!(lookup.source, LookupSource::Executed);
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
        assert_eq!(engine.fetch_retries(), 2);
        let stats = engine.stats();
        assert_eq!(
            stats.fetch_errors, 0,
            "a retried-to-success lookup is a plain miss"
        );
        assert_eq!(stats.references, 1);
    }

    #[test]
    fn fatal_errors_are_never_retried() {
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(1)
            .policy(PolicyKind::LNC_RA)
            .capacity_bytes(1 << 20)
            .build();
        let attempts = AtomicU64::new(0);
        let err = engine
            .try_get_or_execute(&key("doomed"), ts(1), || {
                attempts.fetch_add(1, Ordering::SeqCst);
                Err::<(SizedPayload, ExecutionCost), _>(FetchError::fatal("relation dropped"))
            })
            .expect_err("fatal error surfaces");
        assert_eq!(attempts.load(Ordering::SeqCst), 1, "fatal = no retry");
        assert!(!err.error.is_retryable());
        assert!(!err.negative_hit);
        assert_eq!(engine.fetch_retries(), 0);
        let stats = engine.stats();
        assert_eq!(stats.fetch_errors, 1);
        assert_eq!(stats.references, 1);
        assert_eq!(stats.misses(), 0, "an errored reference is not a miss");
    }

    #[test]
    fn negative_cache_memoizes_terminal_failures() {
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(1)
            .policy(PolicyKind::LNC_RA)
            .capacity_bytes(1 << 20)
            .failure(no_retry())
            .build();
        let invocations = AtomicU64::new(0);
        let fetch = || {
            invocations.fetch_add(1, Ordering::SeqCst);
            Err::<(SizedPayload, ExecutionCost), _>(FetchError::transient("down"))
        };
        let first = engine
            .try_get_or_execute(&key("q"), ts(1), fetch)
            .expect_err("fetch fails");
        assert!(!first.negative_hit);
        // Inside the TTL window: answered from the negative cache, fetch not
        // invoked, and the memoized error is the *same* Arc.
        let second = engine
            .try_get_or_execute(&key("q"), ts(2), fetch)
            .expect_err("memoized failure");
        assert!(second.negative_hit);
        assert!(Arc::ptr_eq(&first.error, &second.error));
        assert_eq!(invocations.load(Ordering::SeqCst), 1);
        assert_eq!(engine.negative_hits(), 1);
        // Past the TTL (default 50ms of logical time): the entry expired and
        // the fetch runs again.
        let third = engine
            .try_get_or_execute(&key("q"), ts(60_000), fetch)
            .expect_err("fresh failure");
        assert!(!third.negative_hit);
        assert_eq!(invocations.load(Ordering::SeqCst), 2);
        let stats = engine.stats();
        assert_eq!(stats.fetch_errors, 3, "all three references errored");
        assert_eq!(stats.references, 3);
    }

    #[test]
    fn stale_serving_pays_cost_but_never_saves_it() {
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(1)
            .policy(PolicyKind::LNC_RA)
            .capacity_bytes(1 << 20)
            .failure(FailureConfig {
                retry: RetryPolicy::none(),
                staleness: Some(StalenessPolicy::default()),
                ..FailureConfig::default()
            })
            .build();
        // Prime: a successful fallible fetch lands the value in the cache
        // AND the shard's last-known-good store.
        engine
            .try_get_or_execute(&key("report"), ts(1), || payload_ok(256, 5_000))
            .expect("priming fetch succeeds");
        let saved_after_prime = engine.stats().saved_cost;
        // Drop the cached copy (clear keeps statistics and the stale store).
        engine.clear();
        // The refetch fails: the engine degrades to the last-known-good copy.
        let lookup = engine
            .try_get_or_execute(&key("report"), ts(10), || {
                Err::<(SizedPayload, ExecutionCost), _>(FetchError::transient("down"))
            })
            .expect("stale serve");
        assert_eq!(lookup.source, LookupSource::Stale);
        assert_eq!(lookup.value.size_bytes(), 256);
        let stats = engine.stats();
        assert_eq!(stats.stale_serves, 1);
        assert_eq!(stats.fetch_errors, 0, "a stale serve is not an error");
        assert_eq!(
            stats.saved_cost, saved_after_prime,
            "stale serves must never inflate the cost-savings ratio"
        );
        assert!(
            stats.total_cost > saved_after_prime,
            "stale serves pay their cost"
        );
        // Invalidation kills the last-known-good copy: wrong data is worse
        // than no data.
        engine.invalidate(&key("report"));
        let err = engine
            .try_get_or_execute(&key("report"), ts(200_000), || {
                Err::<(SizedPayload, ExecutionCost), _>(FetchError::transient("still down"))
            })
            .expect_err("no stale copy after invalidation");
        assert!(!err.negative_hit);
    }

    #[test]
    fn breaker_opens_sheds_fetches_and_recovers_through_half_open() {
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(1)
            .policy(PolicyKind::LNC_RA)
            .capacity_bytes(1 << 20)
            .failure(FailureConfig {
                retry: RetryPolicy::none(),
                breaker: Some(BreakerConfig {
                    window: 8,
                    failure_threshold: 0.5,
                    min_samples: 2,
                    open_for_us: 1_000_000,
                    half_open_probes: 1,
                }),
                negative: NegativeCacheConfig {
                    ttl_us: 1, // effectively off: this test isolates the breaker
                    max_entries: 1,
                },
                ..FailureConfig::default()
            })
            .build();
        let invocations = AtomicU64::new(0);
        let failing = || {
            invocations.fetch_add(1, Ordering::SeqCst);
            Err::<(SizedPayload, ExecutionCost), _>(FetchError::transient("down"))
        };
        // Two terminal failures cross min_samples at 100% failure rate: the
        // breaker opens.
        engine
            .try_get_or_execute(&key("a"), ts(10), failing)
            .unwrap_err();
        engine
            .try_get_or_execute(&key("b"), ts(20), failing)
            .unwrap_err();
        assert_eq!(invocations.load(Ordering::SeqCst), 2);
        // Open: the next lookup is refused without invoking the fetch.
        let refused = engine
            .try_get_or_execute(&key("c"), ts(30), failing)
            .expect_err("breaker refuses");
        assert_eq!(invocations.load(Ordering::SeqCst), 2, "no fetch while open");
        assert!(refused.error.message().contains("circuit breaker open"));
        assert!(engine.stats_snapshot().breaker_transitions >= 1);
        // After open_for_us elapses, the admit IS the half-open probe; its
        // success closes the breaker again.
        let recovered = engine
            .try_get_or_execute(&key("c"), ts(1_100_000), || payload_ok(64, 500))
            .expect("half-open probe succeeds");
        assert_eq!(recovered.source, LookupSource::Executed);
        let snapshot = engine.stats_snapshot();
        // closed→open, open→half-open, half-open→closed.
        assert_eq!(snapshot.breaker_transitions, 3);
        // And the shard serves normally again.
        let hit = engine
            .try_get_or_execute(&key("c"), ts(1_200_000), || unreachable!("cached"))
            .expect("hit");
        assert_eq!(hit.source, LookupSource::Hit);
    }

    #[test]
    fn coalesced_waiters_share_one_error_arc() {
        use std::sync::mpsc;
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(1)
            .policy(PolicyKind::LNC_RA)
            .capacity_bytes(1 << 20)
            .failure(no_retry())
            .runtime_workers(2)
            .build();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let errors: Arc<crate::sync::Mutex<Vec<Arc<FetchError>>>> =
            Arc::new(crate::sync::Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            {
                let engine = engine.clone();
                let errors = Arc::clone(&errors);
                scope.spawn(move || {
                    let err = crate::runtime::block_on(engine.try_get_or_execute_async(
                        &key("shared"),
                        ts(1),
                        move || {
                            started_tx.send(()).unwrap();
                            release_rx.recv().unwrap();
                            Err::<(SizedPayload, ExecutionCost), _>(FetchError::fatal(
                                "warehouse gone",
                            ))
                        },
                    ))
                    .expect_err("leader observes the error");
                    errors.lock().push(err.error);
                });
            }
            // The leader's fetch has started: the flight is registered, so
            // every session below either coalesces onto it or (after the
            // failure) hits the negative cache — both share the same Arc.
            started_rx.recv().unwrap();
            for _ in 0..3 {
                let engine = engine.clone();
                let errors = Arc::clone(&errors);
                scope.spawn(move || {
                    let err = crate::runtime::block_on(engine.try_get_or_execute_async(
                        &key("shared"),
                        ts(2),
                        || unreachable!("waiters never execute"),
                    ))
                    .expect_err("waiters observe the shared error");
                    errors.lock().push(err.error);
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
            release_tx.send(()).unwrap();
        });
        let errors = errors.lock();
        assert_eq!(errors.len(), 4);
        assert!(
            errors.iter().all(|e| Arc::ptr_eq(e, &errors[0])),
            "one failure, one shared Arc for every session"
        );
        let stats = engine.stats();
        assert_eq!(stats.fetch_errors, 4);
        assert_eq!(stats.references, 4);
    }

    #[test]
    fn async_retries_sleep_on_the_runtime_timer() {
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(1)
            .policy(PolicyKind::LNC_RA)
            .capacity_bytes(1 << 20)
            .failure(FailureConfig {
                retry: RetryPolicy {
                    max_attempts: 3,
                    base_delay: std::time::Duration::from_millis(2),
                    max_delay: std::time::Duration::from_millis(10),
                    jitter_seed: 42,
                },
                ..FailureConfig::default()
            })
            .runtime_workers(2)
            .build();
        let attempts = Arc::new(AtomicU64::new(0));
        let fetch_attempts = Arc::clone(&attempts);
        let lookup = crate::runtime::block_on(engine.try_get_or_execute_async(
            &key("flaky-async"),
            ts(1),
            move || {
                if fetch_attempts.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err(FetchError::transient("transient"))
                } else {
                    payload_ok(64, 700)
                }
            },
        ))
        .expect("retried to success");
        assert_eq!(lookup.source, LookupSource::Executed);
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
        assert_eq!(engine.fetch_retries(), 2);
    }

    #[test]
    fn failure_counters_round_trip_through_json() {
        let engine: Watchman<SizedPayload> = Watchman::builder()
            .shards(2)
            .policy(PolicyKind::LNC_RA)
            .capacity_bytes(1 << 20)
            .failure(no_retry())
            .build();
        engine
            .try_get_or_execute(&key("ok"), ts(1), || payload_ok(100, 900))
            .expect("success");
        engine
            .try_get_or_execute(&key("bad"), ts(2), || {
                Err::<(SizedPayload, ExecutionCost), _>(FetchError::fatal("boom"))
            })
            .unwrap_err();
        engine
            .try_get_or_execute(&key("bad"), ts(3), || unreachable!("memoized"))
            .unwrap_err();
        let snapshot = engine.stats_snapshot();
        assert_eq!(snapshot.total.fetch_errors, 2);
        assert_eq!(snapshot.negative_hits, 1);
        assert_eq!(snapshot.sheds, 0, "the engine never sheds; servers do");
        let json = serde_json::to_string(&snapshot).expect("snapshot serializes");
        let back: StatsSnapshot = serde_json::from_str(&json).expect("snapshot parses");
        assert_eq!(snapshot, back, "JSON round trip must be exact");
    }
}
