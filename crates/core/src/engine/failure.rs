//! Failure-domain vocabulary for the fallible fetch pipeline.
//!
//! The paper prices a cached set by what refetching it would cost — which
//! presumes the warehouse answers.  This module is the engine's model of the
//! warehouse *not* answering: typed fetch errors, a bounded retry policy with
//! deterministic jitter (replay stays byte-identical), a per-shard circuit
//! breaker, the profit gate that decides when serving a stale last-known-good
//! value beats refetching, and the negative-cache sizing knobs.
//!
//! Everything here is pure state + logical time: the breaker takes an
//! explicit `now` [`Timestamp`] instead of reading a clock, so the checker
//! can drive it through interleavings and trace replay stays deterministic.

use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use crate::clock::Timestamp;
use crate::value::ExecutionCost;

/// Deterministic 64-bit mix (splitmix64 finalizer).  Shared by the retry
/// jitter here and the fault-injection schedules in the server crate: the
/// same seed always yields the same schedule, on any platform.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Why a fetch closure failed.
///
/// Unlike a panic (a bug in the fetch, which poisons only the leader and
/// hands the flight to a waiter), a `FetchError` is an *expected* outcome —
/// warehouse down, network partition, query killed — and resolves the
/// single-flight cell for every coalesced waiter with one shared
/// `Arc<FetchError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchError {
    message: String,
    retryable: bool,
}

impl FetchError {
    /// A transient failure: the retry policy may re-invoke the fetch.
    pub fn transient(message: impl Into<String>) -> Self {
        FetchError {
            message: message.into(),
            retryable: true,
        }
    }

    /// A fatal failure: retrying cannot help (malformed query, permission
    /// denied); the leader fails immediately regardless of retry budget.
    pub fn fatal(message: impl Into<String>) -> Self {
        FetchError {
            message: message.into(),
            retryable: false,
        }
    }

    /// The human-readable failure description.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Whether the retry policy is allowed to re-invoke the fetch.
    pub fn is_retryable(&self) -> bool {
        self.retryable
    }
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.retryable {
            write!(f, "fetch failed (transient): {}", self.message)
        } else {
            write!(f, "fetch failed (fatal): {}", self.message)
        }
    }
}

impl Error for FetchError {}

/// Bounded retry with exponential backoff and deterministic seeded jitter.
///
/// `max_attempts` counts every invocation including the first, so
/// `max_attempts == 1` means "never retry".  Backoff for retry *n* (1-based)
/// is `base_delay · 2ⁿ⁻¹` capped at `max_delay`, then scaled into
/// `[½·delay, delay)` by a jitter factor derived from
/// `splitmix64(jitter_seed ⊕ stream ⊕ n)` — two runs with the same seed and
/// the same per-key `stream` sleep for exactly the same durations, which is
/// what keeps chaos replays reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total fetch invocations allowed, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Ceiling on any single backoff.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// No retries: the first error is terminal.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// The backoff to sleep before retry `attempt` (1-based: 1 is the first
    /// retry) on jitter stream `stream` (callers pass a per-key value, e.g.
    /// the query signature, so concurrent keys don't sleep in lockstep).
    pub fn backoff(&self, attempt: u32, stream: u64) -> Duration {
        if self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let exp = attempt.saturating_sub(1).min(32);
        let raw = self
            .base_delay
            .saturating_mul(1u32.checked_shl(exp).unwrap_or(u32::MAX))
            .min(self.max_delay);
        // Jitter scales the capped delay into [½·raw, raw): full determinism,
        // no thundering herd.
        let mix = splitmix64(self.jitter_seed ^ stream.rotate_left(17) ^ u64::from(attempt));
        let fraction = 0.5 + (mix >> 11) as f64 / (1u64 << 53) as f64 * 0.5;
        raw.mul_f64(fraction)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
            jitter_seed: 0x5EED_F00D,
        }
    }
}

/// Tuning for the per-shard [`CircuitBreaker`].
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Rolling outcome window length (most recent fetch outcomes).
    pub window: usize,
    /// Failure fraction within the window that trips the breaker.
    pub failure_threshold: f64,
    /// Minimum outcomes in the window before the threshold is consulted —
    /// one early failure must not trip an empty breaker.
    pub min_samples: usize,
    /// How long (logical microseconds) the breaker stays open before
    /// half-opening.
    pub open_for_us: u64,
    /// Probe fetches admitted while half-open; all must succeed to close.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 16,
            failure_threshold: 0.5,
            min_samples: 4,
            open_for_us: 200_000,
            half_open_probes: 2,
        }
    }
}

/// The observable breaker state, for stats and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Fetches flow; outcomes feed the rolling window.
    Closed,
    /// Fetches are refused until the open interval elapses.
    Open,
    /// A bounded number of probe fetches decide reopen vs. close.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// A circuit breaker as a pure state machine on logical time.
///
/// The legal transitions are exactly `closed → open` (window trips),
/// `open → half-open` (open interval elapsed at an [`admit`] call),
/// `half-open → closed` (every probe succeeded) and `half-open → open`
/// (any probe failed).  Each transition increments [`transitions`].
///
/// The breaker holds no lock and reads no clock: the engine keeps one per
/// shard *inside* the shard mutex (no new lock class) and passes the
/// lookup's logical `now`, so the checker can exhaustively interleave it.
///
/// [`admit`]: CircuitBreaker::admit
/// [`transitions`]: CircuitBreaker::transitions
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: State,
    /// Rolling outcome ring: `true` = success.
    outcomes: Vec<bool>,
    /// Next ring slot to overwrite once the window is full.
    cursor: usize,
    transitions: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Closed,
    Open { until: Timestamp },
    HalfOpen { issued: u32, succeeded: u32 },
}

impl CircuitBreaker {
    /// A closed breaker with an empty window.
    pub fn new(config: BreakerConfig) -> Self {
        let window = config.window.max(1);
        CircuitBreaker {
            config,
            state: State::Closed,
            outcomes: Vec::with_capacity(window),
            cursor: 0,
            transitions: 0,
        }
    }

    /// Whether a fetch may proceed at logical time `now`.
    ///
    /// Open breakers half-open here once their interval elapses (the first
    /// admitted call *is* the first probe); half-open breakers admit at most
    /// `half_open_probes` concurrent probes.
    pub fn admit(&mut self, now: Timestamp) -> bool {
        match self.state {
            State::Closed => true,
            State::Open { until } => {
                if now >= until {
                    self.transition(State::HalfOpen {
                        issued: 1,
                        succeeded: 0,
                    });
                    true
                } else {
                    false
                }
            }
            State::HalfOpen { issued, succeeded } => {
                if issued < self.config.half_open_probes.max(1) {
                    self.state = State::HalfOpen {
                        issued: issued + 1,
                        succeeded,
                    };
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful fetch outcome.
    pub fn record_success(&mut self, _now: Timestamp) {
        match self.state {
            State::Closed => self.push_outcome(true),
            State::HalfOpen { issued, succeeded } => {
                let succeeded = succeeded + 1;
                if succeeded >= self.config.half_open_probes.max(1) {
                    self.outcomes.clear();
                    self.cursor = 0;
                    self.transition(State::Closed);
                } else {
                    self.state = State::HalfOpen { issued, succeeded };
                }
            }
            // A success completing while open (started before the trip) is
            // good news but not a probe; ignore it.
            State::Open { .. } => {}
        }
    }

    /// Records a failed fetch outcome, possibly tripping the breaker.
    pub fn record_failure(&mut self, now: Timestamp) {
        let reopen = Timestamp::from_micros(
            now.as_micros()
                .saturating_add(self.config.open_for_us.max(1)),
        );
        match self.state {
            State::Closed => {
                self.push_outcome(false);
                if self.outcomes.len() >= self.config.min_samples.max(1) {
                    let failures = self.outcomes.iter().filter(|ok| !**ok).count();
                    let rate = failures as f64 / self.outcomes.len() as f64;
                    if rate >= self.config.failure_threshold {
                        self.outcomes.clear();
                        self.cursor = 0;
                        self.transition(State::Open { until: reopen });
                    }
                }
            }
            State::HalfOpen { .. } => self.transition(State::Open { until: reopen }),
            // Stragglers from before the trip don't extend the open window.
            State::Open { .. } => {}
        }
    }

    /// The current observable state.
    pub fn state(&self) -> BreakerState {
        match self.state {
            State::Closed => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Total state transitions so far (the stats counter).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    fn transition(&mut self, next: State) {
        // The single choke point every legal transition passes through, so
        // the process-wide telemetry counters cover all breakers at once.
        let telemetry = crate::telemetry::global();
        telemetry.breaker_transitions.incr();
        if matches!(next, State::Open { .. }) {
            telemetry.breaker_trips.incr();
        }
        self.state = next;
        self.transitions += 1;
    }

    fn push_outcome(&mut self, ok: bool) {
        let window = self.config.window.max(1);
        if self.outcomes.len() < window {
            self.outcomes.push(ok);
        } else {
            self.outcomes[self.cursor] = ok;
            self.cursor = (self.cursor + 1) % window;
        }
    }
}

/// When a failed fetch may be answered with the last-known-good value.
///
/// The gate is the paper's own currency: a stale serve is only worth the
/// freshness risk when the *refetch* the client is being spared is expensive
/// per byte — `cost/size ≥ min_cost_per_byte`, the c/s factor of
/// `profit = λ·c/s`.  Cheap-to-recompute sets fail fast instead.
#[derive(Debug, Clone, PartialEq)]
pub struct StalenessPolicy {
    /// Last-known-good entries retained per shard.
    pub max_entries: usize,
    /// Minimum `cost/size` (blocks per byte) for a stale serve to be
    /// worth it; `0.0` serves stale whenever a value is available.
    pub min_cost_per_byte: f64,
    /// Oldest acceptable last-known-good age in logical microseconds;
    /// `None` = any age.
    pub max_age_us: Option<u64>,
}

impl StalenessPolicy {
    /// Whether a stale serve is profitable for a set of this cost and size,
    /// last refreshed at `stored` and requested at `now`.
    pub fn worth_serving(
        &self,
        cost: ExecutionCost,
        size_bytes: u64,
        stored: Timestamp,
        now: Timestamp,
    ) -> bool {
        if let Some(max_age) = self.max_age_us {
            if now.saturating_since(stored) > max_age {
                return false;
            }
        }
        let density = cost.value() / size_bytes.max(1) as f64;
        density >= self.min_cost_per_byte
    }
}

impl Default for StalenessPolicy {
    fn default() -> Self {
        StalenessPolicy {
            max_entries: 256,
            min_cost_per_byte: 0.0,
            max_age_us: None,
        }
    }
}

/// Sizing for the per-key negative cache (memoized fetch failures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NegativeCacheConfig {
    /// How long (logical microseconds) a memoized failure answers for its
    /// key before the next reference retries the warehouse.
    pub ttl_us: u64,
    /// Entries retained per shard.
    pub max_entries: usize,
}

impl Default for NegativeCacheConfig {
    fn default() -> Self {
        NegativeCacheConfig {
            ttl_us: 50_000,
            max_entries: 256,
        }
    }
}

/// Everything the fallible pipeline needs, bundled for the builder.
#[derive(Debug, Clone, Default)]
pub struct FailureConfig {
    /// Leader-side retry of transient fetch errors.
    pub retry: RetryPolicy,
    /// Per-shard circuit breaker; `None` disables breaking.
    pub breaker: Option<BreakerConfig>,
    /// Stale serving; `None` means errors always surface.
    pub staleness: Option<StalenessPolicy>,
    /// Per-key memoized failures.
    pub negative: NegativeCacheConfig,
}

/// A terminally failed lookup, as surfaced by `try_get_or_execute`.
#[derive(Debug, Clone)]
pub struct LookupError {
    /// The fetch failure, shared with every coalesced waiter.
    pub error: Arc<FetchError>,
    /// Whether this reference was answered from the negative cache (the
    /// warehouse was not re-consulted).
    pub negative_hit: bool,
}

impl fmt::Display for LookupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negative_hit {
            write!(f, "{} (memoized)", self.error)
        } else {
            self.error.fmt(f)
        }
    }
}

impl Error for LookupError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(self.error.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(us: u64) -> Timestamp {
        Timestamp::from_micros(us)
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(20),
            jitter_seed: 42,
        };
        for attempt in 1..=6u32 {
            let a = policy.backoff(attempt, 7);
            let b = policy.backoff(attempt, 7);
            assert_eq!(a, b, "same seed+stream+attempt must sleep identically");
            let cap = Duration::from_millis(20);
            assert!(a <= cap, "attempt {attempt}: {a:?} above cap");
            assert!(
                a >= cap / 4 || attempt < 4,
                "jitter floor is half the raw delay"
            );
        }
        // Different streams de-synchronize.
        assert_ne!(policy.backoff(1, 7), policy.backoff(1, 8));
        // Growth until the cap.
        assert!(policy.backoff(1, 7) < policy.backoff(3, 7));
    }

    #[test]
    fn backoff_with_zero_base_is_zero() {
        let policy = RetryPolicy::none();
        assert_eq!(policy.backoff(1, 0), Duration::ZERO);
        assert_eq!(policy.max_attempts, 1);
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers() {
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            window: 8,
            failure_threshold: 0.5,
            min_samples: 4,
            open_for_us: 1_000,
            half_open_probes: 2,
        });
        assert_eq!(breaker.state(), BreakerState::Closed);
        // Two failures among four samples: exactly at threshold → trip.
        breaker.record_success(ts(1));
        breaker.record_failure(ts(2));
        breaker.record_success(ts(3));
        assert_eq!(breaker.state(), BreakerState::Closed);
        breaker.record_failure(ts(4));
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.transitions(), 1);

        // Open: refuse until the interval elapses.
        assert!(!breaker.admit(ts(5)));
        assert!(breaker.admit(ts(1_004)), "interval elapsed → first probe");
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(breaker.admit(ts(1_005)), "second probe");
        assert!(!breaker.admit(ts(1_006)), "probe cap respected");

        // Both probes succeed → closed, window reset.
        breaker.record_success(ts(1_010));
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        breaker.record_success(ts(1_011));
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(breaker.transitions(), 3);
        // The cleared window needs min_samples fresh failures to re-trip.
        breaker.record_failure(ts(1_012));
        breaker.record_failure(ts(1_013));
        breaker.record_failure(ts(1_014));
        assert_eq!(breaker.state(), BreakerState::Closed);
        breaker.record_failure(ts(1_015));
        assert_eq!(breaker.state(), BreakerState::Open);
    }

    #[test]
    fn half_open_failure_reopens() {
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            window: 4,
            failure_threshold: 0.5,
            min_samples: 2,
            open_for_us: 100,
            half_open_probes: 3,
        });
        breaker.record_failure(ts(1));
        breaker.record_failure(ts(2));
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(breaker.admit(ts(200)));
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        breaker.record_failure(ts(201));
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(!breaker.admit(ts(250)), "reopened from the failure time");
        assert!(breaker.admit(ts(302)));
    }

    #[test]
    fn breaker_window_rolls() {
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            window: 4,
            failure_threshold: 0.75,
            min_samples: 4,
            open_for_us: 100,
            half_open_probes: 1,
        });
        // Two early failures scroll out of the window before it could trip.
        breaker.record_failure(ts(1));
        breaker.record_failure(ts(2));
        for t in 3..9 {
            breaker.record_success(ts(t));
        }
        assert_eq!(breaker.state(), BreakerState::Closed);
        // Now three fresh failures in the 4-window trip it.
        breaker.record_failure(ts(10));
        breaker.record_failure(ts(11));
        breaker.record_failure(ts(12));
        assert_eq!(breaker.state(), BreakerState::Open);
    }

    #[test]
    fn staleness_gate_uses_cost_density_and_age() {
        let policy = StalenessPolicy {
            max_entries: 8,
            min_cost_per_byte: 0.5,
            max_age_us: Some(1_000),
        };
        let expensive = ExecutionCost::from_blocks(1_000);
        let cheap = ExecutionCost::from_blocks(10);
        assert!(policy.worth_serving(expensive, 1_000, ts(0), ts(500)));
        assert!(
            !policy.worth_serving(cheap, 1_000, ts(0), ts(500)),
            "cheap refetch: fail fast"
        );
        assert!(
            !policy.worth_serving(expensive, 1_000, ts(0), ts(2_000)),
            "too old"
        );
        let anything = StalenessPolicy::default();
        assert!(anything.worth_serving(cheap, 1_000_000, ts(0), ts(u64::MAX >> 1)));
    }

    #[test]
    fn fetch_error_display_and_retryability() {
        let transient = FetchError::transient("warehouse timeout");
        let fatal = FetchError::fatal("relation dropped");
        assert!(transient.is_retryable());
        assert!(!fatal.is_retryable());
        assert_eq!(
            transient.to_string(),
            "fetch failed (transient): warehouse timeout"
        );
        assert_eq!(fatal.to_string(), "fetch failed (fatal): relation dropped");
        let lookup = LookupError {
            error: Arc::new(transient),
            negative_hit: true,
        };
        assert!(lookup.to_string().ends_with("(memoized)"));
    }

    #[test]
    fn splitmix_is_stable() {
        // Pinned values: fault schedules and jitter streams must never
        // change out from under recorded benchmarks.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }
}
