//! Profit-aware capacity rebalancing between shards.
//!
//! The engine hash-partitions the keyspace across N shards and, by default,
//! splits the configured capacity statically `total/N`.  On a skewed keyspace
//! that starves hot shards: the shards holding the frequently re-referenced
//! retrieved sets run out of room (rejecting and evicting profitable sets)
//! while cold shards idle with free or low-value bytes.
//!
//! WATCHMAN's own premise (paper §2) says cache space should follow *profit*
//! `λ·c/s`, so the engine can be configured to apply the same idea one level
//! up: on every pass of its **background rebalance task** (scheduled every
//! [`RebalanceConfig::period`] on the engine's runtime — never on a session's
//! request path) it prices, for every shard, what donating one step of
//! capacity would cost
//! ([`QueryCache::shrink_loss`]: the aggregate Eq. 5 profit of the victims
//! the shard's own policy would pick) and what receiving one step could win
//! back ([`QueryCache::grow_gain`]: the aggregate profit of the densest
//! packing of sets the shard denied residency, reconstructed from §2.4
//! retained reference information).  A step then moves from the
//! cheapest-to-shrink shard to the most starved one whenever the gain
//! clearly exceeds the loss, shrinking the donor through the policy's own
//! victim selection so the displaced sets are its lowest-profit residents
//! and real eviction events are emitted.
//!
//! Two invariants hold at every observable point (enforced by holding both
//! shard locks for the transfer, and checked by the engine's property tests):
//!
//! * **conservation** — Σ per-shard capacity == configured total;
//! * **occupancy** — every shard's `used_bytes <= capacity_bytes`.
//!
//! [`RebalanceConfig::min_shard_fraction`] bounds how far a shard can shrink
//! so a temporarily idle shard is never starved to zero and can win capacity
//! back when its keys heat up.

use crate::policy::QueryCache;
use crate::profit::Profit;

/// Configures profit-aware capacity rebalancing between the shards of a
/// [`Watchman`](crate::engine::Watchman) engine.
///
/// The **profit signal** driving each pass has three components:
///
/// * *gain* — the shard's [`grow_gain`] over one step: the aggregate Eq. 5
///   profit of the most valuable sets it denied residency (evicted or
///   rejected) that would fit into the received step, reconstructed from
///   §2.4 retained reference information.
/// * *loss* — the shard's [`shrink_loss`] over one step: the aggregate
///   profit of the victims its own replacement policy would evict to donate
///   the step.
/// * *pressure* — rejections + evictions accumulated since the last pass.
///   Pressure gates eligibility to *receive* (a shard that sheds nothing
///   cannot benefit from growing) and is the fallback ranking for policies
///   that retain no reference information.
///
/// Each pass grows the highest-gain pressured shard at the expense of the
/// lowest-loss shard, and only when the gain clearly exceeds the loss — the
/// across-shard analogue of the paper's admission test (Eq. 4): admit more
/// capacity into a shard only if the sets it will keep are worth more than
/// the sets the donor must give up.  Gains and losses are exponentially
/// smoothed across passes, so transient profit spikes do not move capacity;
/// a balanced engine sits at a fixed point instead of oscillating.
///
/// [`shrink_loss`]: crate::policy::QueryCache::shrink_loss
/// [`grow_gain`]: crate::policy::QueryCache::grow_gain
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceConfig {
    /// How often the engine's background task runs a rebalance pass.
    /// Clamped to at least one millisecond.  `None` disables the background
    /// task entirely: passes then run only when a driver explicitly calls
    /// [`rebalance_now`](crate::engine::Watchman::rebalance_now) — the mode
    /// deterministic replays (the simulator's shard sweep) use.  Passes
    /// never run on a session's request path in either mode.
    pub period: Option<std::time::Duration>,
    /// The fraction of a shard's fair share (`total/N`) below which its
    /// capacity never drops.  Clamped to `0.0..=1.0`.  A floor of 1.0
    /// disables rebalancing entirely; 0.0 allows a shard to shrink to zero.
    pub min_shard_fraction: f64,
    /// The fraction of a shard's *fair share* (`total/N`) moved per pass.
    /// Clamped to `0.0..=1.0`.  Steps must stay small relative to one
    /// shard's capacity: the gain-vs-loss comparison driving each move is a
    /// *marginal* argument (it prices the single next victim), so a pass
    /// that moved a large slice of a shard would evict far past the sets the
    /// signal priced.  Small steps also let misjudged moves be corrected
    /// cheaply on later passes.
    pub step_fraction: f64,
}

impl RebalanceConfig {
    /// The default: a background pass every 50 ms, floor at 50% of the fair
    /// share, move 5% of one fair share per step.
    pub fn new() -> Self {
        RebalanceConfig {
            period: Some(std::time::Duration::from_millis(50)),
            min_shard_fraction: 0.5,
            step_fraction: 0.05,
        }
    }

    /// Returns the configuration with a different background-pass period.
    pub fn with_period(mut self, period: std::time::Duration) -> Self {
        self.period = Some(period);
        self
    }

    /// Disables the background task: passes run only when the driver calls
    /// [`rebalance_now`](crate::engine::Watchman::rebalance_now) explicitly.
    /// Deterministic replays (the simulator) schedule passes this way.
    pub fn manual(mut self) -> Self {
        self.period = None;
        self
    }

    /// Returns the configuration with a different per-shard floor fraction.
    pub fn with_min_shard_fraction(mut self, fraction: f64) -> Self {
        self.min_shard_fraction = fraction;
        self
    }

    /// Returns the configuration with a different per-pass step fraction.
    pub fn with_step_fraction(mut self, fraction: f64) -> Self {
        self.step_fraction = fraction;
        self
    }

    /// The configuration with out-of-range values clamped into their
    /// documented domains (applied once at engine build time).
    pub(crate) fn sanitized(mut self) -> Self {
        self.period = self
            .period
            .map(|period| period.max(std::time::Duration::from_millis(1)));
        self.min_shard_fraction = if self.min_shard_fraction.is_finite() {
            self.min_shard_fraction.clamp(0.0, 1.0)
        } else {
            0.5
        };
        self.step_fraction = if self.step_fraction.is_finite() {
            self.step_fraction.clamp(0.0, 1.0)
        } else {
            0.05
        };
        self
    }

    /// The smallest capacity any shard may hold, given the configured total
    /// and shard count.
    pub(crate) fn floor_bytes(&self, total_capacity: u64, shards: usize) -> u64 {
        let fair_share = total_capacity as f64 / shards.max(1) as f64;
        (self.min_shard_fraction * fair_share).floor() as u64
    }

    /// The number of bytes one pass moves (zero when `step_fraction` is 0).
    pub(crate) fn step_bytes(&self, total_capacity: u64, shards: usize) -> u64 {
        if self.step_fraction <= 0.0 {
            return 0;
        }
        let fair_share = total_capacity as f64 / shards.max(1) as f64;
        ((self.step_fraction * fair_share).round() as u64).max(1)
    }
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// The per-shard signal a rebalance pass compares (see [`RebalanceConfig`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ShardSignal {
    /// Rejections + evictions accumulated since the previous pass.
    pub pressure: u64,
    /// The shard's *loss*: the aggregate profit (Eq. 5) of the sets it would
    /// evict to donate one step of capacity.  [`Profit::ZERO`] when the
    /// shard is empty or the step fits in free space.
    pub loss: Profit,
    /// The shard's *gain*: the aggregate profit of the densest packing of
    /// denied-residency sets (§2.4 retained information) that would fit into
    /// one received step of capacity.  `None` when the policy retains no
    /// such information — the planner then falls back to pressure.
    pub gain: Option<Profit>,
    /// Current capacity in bytes.
    pub capacity_bytes: u64,
}

impl ShardSignal {
    /// Reads the signal from a locked shard cache, pricing a transfer of
    /// `step_bytes`.
    pub fn observe<V>(
        cache: &mut dyn QueryCache<V>,
        last_pressure: u64,
        step_bytes: u64,
        now: crate::clock::Timestamp,
    ) -> Self
    where
        V: crate::value::CachePayload,
    {
        let stats = cache.stats();
        let cumulative = stats.rejections + stats.evictions;
        let loss = cache
            .shrink_loss(step_bytes, now)
            .or_else(|| cache.min_cached_profit(now))
            .unwrap_or(Profit::ZERO);
        ShardSignal {
            pressure: cumulative.saturating_sub(last_pressure),
            loss,
            gain: cache.grow_gain(step_bytes, now),
            capacity_bytes: cache.capacity_bytes(),
        }
    }
}

/// The outcome of one rebalance pass, for diagnostics and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceOutcome {
    /// The shard that gave up capacity.
    pub donor: usize,
    /// The shard that received it.
    pub recipient: usize,
    /// Bytes moved.
    pub moved_bytes: u64,
    /// Keys the donor evicted to shrink into its new capacity.
    pub evicted: Vec<crate::key::QueryKey>,
}

/// Picks the (donor, recipient, amount) for one pass, or `None` when the
/// signals do not justify a move.
///
/// `signals[i]` is shard *i*'s observation; `floor` the minimum capacity any
/// shard may keep; `step` the most bytes one pass may move.
///
/// The recipient is the shard whose received step would win the most: the
/// aggregate profit of the densest packing of sets it denied residency
/// ([`gain`](ShardSignal::gain), from §2.4 retained information), falling
/// back to raw pressure for policies that retain nothing.  The donor is the
/// shard whose donated step costs the least ([`loss`](ShardSignal::loss):
/// the aggregate profit of the victims its own replacement policy would
/// pick).  Capacity moves only when the recipient's gain strictly exceeds
/// the donor's loss with a hysteresis margin — the across-shard analogue of
/// the paper's admission rule Eq. 4: admit a capacity step into a shard only
/// if the sets it will keep are worth more than the sets the donor must give
/// up.  A shard with no pressure never receives (more capacity cannot help a
/// shard that is not shedding anything), so a balanced engine sits at a
/// fixed point.
pub(crate) fn plan_transfer(
    signals: &[ShardSignal],
    floor: u64,
    step: u64,
) -> Option<(usize, usize, u64)> {
    if signals.len() < 2 || step == 0 {
        return None;
    }
    let supported = signals.iter().any(|s| s.gain.is_some());
    let recipient = if supported {
        signals
            .iter()
            .enumerate()
            .filter(|(_, s)| s.pressure > 0)
            .max_by(|a, b| {
                (a.1.gain.unwrap_or(Profit::ZERO))
                    .cmp(&b.1.gain.unwrap_or(Profit::ZERO))
                    .then(a.1.pressure.cmp(&b.1.pressure))
                    .then(b.0.cmp(&a.0))
            })?
            .0
    } else {
        signals
            .iter()
            .enumerate()
            .filter(|(_, s)| s.pressure > 0)
            .max_by(|a, b| a.1.pressure.cmp(&b.1.pressure).then(b.0.cmp(&a.0)))?
            .0
    };
    // The donor is the cheapest-to-shrink shard still above the floor.
    let donor = signals
        .iter()
        .enumerate()
        .filter(|(i, s)| *i != recipient && s.capacity_bytes > floor)
        .min_by(|a, b| {
            (a.1.loss)
                .cmp(&b.1.loss)
                .then(a.1.pressure.cmp(&b.1.pressure))
                .then(a.0.cmp(&b.0))
        })?
        .0;
    if supported {
        // Eq. 4 across shards, with a hysteresis margin: profits are noisy
        // estimates, and paying real evictions for a move that prices as a
        // wash is how a rebalancer starts thrashing.
        const HYSTERESIS: f64 = 1.25;
        let gain = signals[recipient].gain.unwrap_or(Profit::ZERO);
        if gain.value() <= signals[donor].loss.value() * HYSTERESIS || gain == Profit::ZERO {
            return None;
        }
        // The move must not be symmetric: when the donor's own denied sets
        // are worth about as much as the recipient's, the reverse transfer
        // would price as a win too, and executing both directions in
        // alternation just pays evictions to stand still.
        const ASYMMETRY: f64 = 4.0;
        let donor_gain = signals[donor].gain.unwrap_or(Profit::ZERO);
        if gain.value() <= donor_gain.value() * ASYMMETRY {
            return None;
        }
    } else if signals[recipient].pressure <= signals[donor].pressure {
        // No retained-information signal anywhere (non-LNC policies): fall
        // back to pure pressure comparison.
        return None;
    }
    let amount = step.min(signals[donor].capacity_bytes - floor);
    if amount == 0 {
        return None;
    }
    Some((donor, recipient, amount))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(pressure: u64, loss: f64, gain: f64, capacity: u64) -> ShardSignal {
        ShardSignal {
            pressure,
            loss: Profit::new(loss),
            gain: Some(Profit::new(gain)),
            capacity_bytes: capacity,
        }
    }

    fn unpriced(pressure: u64, capacity: u64) -> ShardSignal {
        ShardSignal {
            pressure,
            loss: Profit::ZERO,
            gain: None,
            capacity_bytes: capacity,
        }
    }

    #[test]
    fn config_sanitization_clamps_domains() {
        let config = RebalanceConfig {
            period: Some(std::time::Duration::ZERO),
            min_shard_fraction: -3.0,
            step_fraction: 42.0,
        }
        .sanitized();
        assert_eq!(config.period, Some(std::time::Duration::from_millis(1)));
        assert_eq!(config.min_shard_fraction, 0.0);
        assert_eq!(config.step_fraction, 1.0);
        let nan = RebalanceConfig {
            period: None,
            min_shard_fraction: f64::NAN,
            step_fraction: f64::NAN,
        }
        .sanitized();
        assert_eq!(nan.period, None, "manual mode survives sanitization");
        assert_eq!(nan.min_shard_fraction, 0.5);
        assert_eq!(nan.step_fraction, 0.05);
    }

    #[test]
    fn floor_scales_with_fair_share() {
        let config = RebalanceConfig::new().with_min_shard_fraction(0.5);
        assert_eq!(config.floor_bytes(1_000, 4), 125);
        assert_eq!(config.floor_bytes(1_000, 1), 500);
        assert_eq!(RebalanceConfig::new().floor_bytes(0, 4), 0);
    }

    #[test]
    fn transfer_moves_from_cheap_victims_to_valuable_denials() {
        // Shard 1 keeps turning away a high-profit set (denied 5.0); shard 0's
        // next victim is nearly worthless (marginal 0.1): grow 1 at 0's cost.
        let signals = [
            signal(0, 0.1, 0.0, 250),
            signal(9, 2.0, 5.0, 250),
            signal(2, 1.0, 0.5, 250),
        ];
        let (donor, recipient, amount) = plan_transfer(&signals, 50, 100).unwrap();
        assert_eq!(donor, 0);
        assert_eq!(recipient, 1);
        assert_eq!(amount, 100);
    }

    #[test]
    fn pressureless_shards_never_receive() {
        // Shard 0 denies the most valuable sets but sheds nothing this
        // period: only shard 1 is eligible to receive, and its gain (1.0)
        // does not beat shard 0's marginal loss (9.0).  No move either way.
        let signals = [signal(0, 9.0, 20.0, 250), signal(5, 1.0, 1.0, 250)];
        assert_eq!(plan_transfer(&signals, 0, 100), None);
    }

    #[test]
    fn transfer_respects_the_floor() {
        let signals = [signal(0, 0.1, 0.0, 60), signal(9, 2.0, 5.0, 440)];
        // Donor has only 10 bytes above the floor: the step is truncated.
        let (donor, _, amount) = plan_transfer(&signals, 50, 100).unwrap();
        assert_eq!(donor, 0);
        assert_eq!(amount, 10);
        // At the floor exactly, no donor qualifies.
        let at_floor = [signal(0, 0.1, 0.0, 50), signal(9, 2.0, 5.0, 450)];
        assert_eq!(plan_transfer(&at_floor, 50, 100), None);
    }

    #[test]
    fn balanced_signals_reach_a_fixed_point() {
        // Gains equal losses everywhere: growing any shard would displace
        // sets worth exactly as much as it would admit.
        let signals = [signal(3, 1.0, 1.0, 250), signal(3, 1.0, 1.0, 250)];
        assert_eq!(plan_transfer(&signals, 0, 100), None);
    }

    #[test]
    fn gain_must_exceed_the_donors_loss() {
        // Shard 1's best denied set (0.5) is worth less than shard 0's next
        // victim (1.0): shrinking 0 to grow 1 would lose saved cost.
        let signals = [signal(2, 1.0, 0.2, 250), signal(8, 0.8, 0.5, 250)];
        assert_eq!(plan_transfer(&signals, 0, 100), None);
    }

    #[test]
    fn pressure_fallback_when_nothing_is_priced() {
        // Policies without retained information (gain unavailable
        // everywhere): capacity follows raw rejection/eviction pressure.
        let signals = [unpriced(0, 250), unpriced(7, 250)];
        let (donor, recipient, _) = plan_transfer(&signals, 0, 50).unwrap();
        assert_eq!(donor, 0);
        assert_eq!(recipient, 1);
        // Equal pressure: no move.
        let balanced = [unpriced(4, 250), unpriced(4, 250)];
        assert_eq!(plan_transfer(&balanced, 0, 50), None);
    }

    #[test]
    fn comparable_gain_and_loss_do_not_move() {
        // Gain 1.1 vs loss 1.0 is within the hysteresis margin: pricing a
        // wash as a win is how thrashing starts.
        let signals = [signal(2, 1.0, 0.9, 250), signal(8, 1.2, 1.1, 250)];
        assert_eq!(plan_transfer(&signals, 0, 100), None);
    }

    #[test]
    fn single_shard_never_transfers() {
        assert_eq!(plan_transfer(&[signal(9, 1.0, 1.0, 500)], 0, 100), None);
    }
}
