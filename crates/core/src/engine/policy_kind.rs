//! Named cache-policy configurations.
//!
//! [`PolicyKind`] is a small, serializable description of a policy (and its
//! parameters) that can be instantiated into a boxed [`QueryCache`] of any
//! capacity and payload type.  It is the single construction path shared by
//! the concurrent [`Watchman`](crate::engine::Watchman) engine, the
//! simulation harness and the examples, so every layer builds policies the
//! same way.

use serde::{Deserialize, Serialize};

use crate::policy::gds::GreedyDualSizeCache;
use crate::policy::lcs::LcsCache;
use crate::policy::lfu::LfuCache;
use crate::policy::lnc::{LncCache, LncConfig};
use crate::policy::lru::LruCache;
use crate::policy::lru_k::LruKCache;
use crate::policy::QueryCache;
use crate::value::CachePayload;

/// A named, parameterized cache policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// LNC-RA (replacement + admission) with reference window `k`.
    LncRa {
        /// The reference window `K`.
        k: usize,
    },
    /// LNC-R (replacement only) with reference window `k`.
    LncR {
        /// The reference window `K`.
        k: usize,
    },
    /// Vanilla LRU (the paper's primary baseline).
    Lru,
    /// LRU-K with reference window `k`.
    LruK {
        /// The reference window `K`.
        k: usize,
    },
    /// Least frequently used.
    Lfu,
    /// Largest cache space (evict the biggest set first).
    Lcs,
    /// GreedyDual-Size.
    GreedyDualSize,
}

impl PolicyKind {
    /// The paper's default LNC-RA configuration (`K = 4`).
    pub const LNC_RA: PolicyKind = PolicyKind::LncRa { k: 4 };
    /// The paper's default LNC-R configuration (`K = 4`).
    pub const LNC_R: PolicyKind = PolicyKind::LncR { k: 4 };

    /// The three policies compared in Figures 4–6.
    pub fn paper_trio() -> Vec<PolicyKind> {
        vec![Self::LNC_RA, Self::LNC_R, PolicyKind::Lru]
    }

    /// The full policy zoo used by the extension ablation.
    pub fn all() -> Vec<PolicyKind> {
        vec![
            Self::LNC_RA,
            Self::LNC_R,
            PolicyKind::Lru,
            PolicyKind::LruK { k: 4 },
            PolicyKind::Lfu,
            PolicyKind::Lcs,
            PolicyKind::GreedyDualSize,
        ]
    }

    /// A stable display label.
    pub fn label(&self) -> String {
        match self {
            PolicyKind::LncRa { k } if *k == 4 => "LNC-RA".to_owned(),
            PolicyKind::LncRa { k } => format!("LNC-RA(K={k})"),
            PolicyKind::LncR { k } if *k == 4 => "LNC-R".to_owned(),
            PolicyKind::LncR { k } => format!("LNC-R(K={k})"),
            PolicyKind::Lru => "LRU".to_owned(),
            PolicyKind::LruK { k } => format!("LRU-{k}"),
            PolicyKind::Lfu => "LFU".to_owned(),
            PolicyKind::Lcs => "LCS".to_owned(),
            PolicyKind::GreedyDualSize => "GreedyDual-Size".to_owned(),
        }
    }

    /// Instantiates the policy with the given capacity in bytes.
    ///
    /// The returned cache is `Send` so it can live inside one shard of the
    /// concurrent engine; plain single-threaded use works the same way.
    pub fn build<V>(&self, capacity_bytes: u64) -> Box<dyn QueryCache<V> + Send>
    where
        V: CachePayload + Send + 'static,
    {
        match *self {
            PolicyKind::LncRa { k } => {
                Box::new(LncCache::new(LncConfig::lnc_ra(capacity_bytes).with_k(k)))
            }
            PolicyKind::LncR { k } => {
                Box::new(LncCache::new(LncConfig::lnc_r(capacity_bytes).with_k(k)))
            }
            PolicyKind::Lru => Box::new(LruCache::new(capacity_bytes)),
            PolicyKind::LruK { k } => Box::new(LruKCache::with_capacity(capacity_bytes, k)),
            PolicyKind::Lfu => Box::new(LfuCache::new(capacity_bytes)),
            PolicyKind::Lcs => Box::new(LcsCache::new(capacity_bytes)),
            PolicyKind::GreedyDualSize => Box::new(GreedyDualSizeCache::new(capacity_bytes)),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Timestamp;
    use crate::key::QueryKey;
    use crate::value::{ExecutionCost, SizedPayload};

    #[test]
    fn labels_are_stable() {
        assert_eq!(PolicyKind::LNC_RA.label(), "LNC-RA");
        assert_eq!(PolicyKind::LncRa { k: 2 }.label(), "LNC-RA(K=2)");
        assert_eq!(PolicyKind::Lru.label(), "LRU");
        assert_eq!(PolicyKind::LruK { k: 3 }.label(), "LRU-3");
        assert_eq!(PolicyKind::GreedyDualSize.to_string(), "GreedyDual-Size");
    }

    #[test]
    fn paper_trio_and_zoo_composition() {
        assert_eq!(PolicyKind::paper_trio().len(), 3);
        assert_eq!(PolicyKind::all().len(), 7);
    }

    #[test]
    fn every_kind_builds_a_working_cache() {
        for kind in PolicyKind::all() {
            let mut cache = kind.build::<SizedPayload>(10_000);
            assert_eq!(cache.capacity_bytes(), 10_000);
            let key = QueryKey::new("q");
            assert!(cache.get(&key, Timestamp::from_micros(1)).is_none());
            let outcome = cache.insert(
                key.clone(),
                SizedPayload::new(100),
                ExecutionCost::from_blocks(50),
                Timestamp::from_micros(1),
            );
            assert!(outcome.is_cached(), "{kind}: first insert must be cached");
            assert!(cache.get(&key, Timestamp::from_micros(2)).is_some());
            assert!(cache.remove(&key), "{kind}: remove must report residency");
            assert!(!cache.contains(&key), "{kind}: removed key must be gone");
            assert_eq!(cache.used_bytes(), 0, "{kind}: removal must release bytes");
        }
    }

    #[test]
    fn round_trips_through_json() {
        for kind in PolicyKind::all() {
            let json = serde_json::to_string(&kind).expect("serialize");
            let back: PolicyKind = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(kind, back);
        }
    }
}
