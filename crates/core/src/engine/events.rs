//! Cache lifecycle events and the observer hook.
//!
//! The [`Watchman`](crate::engine::Watchman) engine emits one [`CacheEvent`]
//! for every admission, rejection, eviction and invalidation.  Subsystems
//! that need to mirror the cache's contents subscribe a [`CacheObserver`] at
//! build time instead of polling: the coherence layer keeps its
//! [`DependencyIndex`](crate::coherence::DependencyIndex) in sync this way,
//! and the buffer manager derives its p₀-redundancy hints from the same
//! stream.
//!
//! Events are emitted *while the owning shard's lock is held*, so observers
//! see each shard's events in exactly the order the cache applied them — a
//! key's `Evicted` always arrives after its `Admitted`, and mirrors built
//! from the stream (dependency indexes, cached-signature sets) never go
//! stale.  The flip side: an observer must **not** call back into the same
//! engine from [`CacheObserver::on_cache_event`] (the shard's lock is not
//! reentrant); do engine work outside the handler, as
//! [`DependencyObserver::apply_update`](crate::coherence::DependencyObserver::apply_update)
//! does.  Events from different shards may still interleave.

use crate::key::QueryKey;
use crate::policy::RejectReason;
use crate::value::ExecutionCost;

/// A cache lifecycle notification.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheEvent {
    /// A retrieved set was admitted into the cache.
    Admitted {
        /// The admitted query.
        key: QueryKey,
        /// The size of the admitted retrieved set.
        size_bytes: u64,
        /// The execution cost of the query that produced it.
        cost: ExecutionCost,
        /// The shard that now holds the set.
        shard: usize,
    },
    /// A freshly retrieved set was offered but not admitted.
    Rejected {
        /// The rejected query.
        key: QueryKey,
        /// Why admission was denied.
        reason: RejectReason,
        /// The shard that made the decision.
        shard: usize,
    },
    /// A cached set was evicted to make room for another.
    Evicted {
        /// The evicted query.
        key: QueryKey,
        /// The shard it was evicted from.
        shard: usize,
    },
    /// A cached set was removed because a warehouse update made it stale.
    Invalidated {
        /// The invalidated query.
        key: QueryKey,
        /// The shard it was removed from.
        shard: usize,
    },
}

impl CacheEvent {
    /// The query key the event concerns.
    pub fn key(&self) -> &QueryKey {
        match self {
            CacheEvent::Admitted { key, .. }
            | CacheEvent::Rejected { key, .. }
            | CacheEvent::Evicted { key, .. }
            | CacheEvent::Invalidated { key, .. } => key,
        }
    }

    /// The shard the event originated from.
    pub fn shard(&self) -> usize {
        match self {
            CacheEvent::Admitted { shard, .. }
            | CacheEvent::Rejected { shard, .. }
            | CacheEvent::Evicted { shard, .. }
            | CacheEvent::Invalidated { shard, .. } => *shard,
        }
    }

    /// Whether the event removes the key from the cache (eviction or
    /// invalidation).
    pub fn is_removal(&self) -> bool {
        matches!(
            self,
            CacheEvent::Evicted { .. } | CacheEvent::Invalidated { .. }
        )
    }
}

/// A subscriber to the engine's event stream.
///
/// Observers are shared across shards and sessions, so implementations must
/// be `Send + Sync` and should keep their handlers short: events are
/// delivered synchronously, under the emitting shard's lock, on the session
/// thread that triggered them.  Handlers must not call back into the same
/// engine (see the module docs).
pub trait CacheObserver: Send + Sync {
    /// Called once per cache lifecycle event.
    fn on_cache_event(&self, event: &CacheEvent);
}

/// A simple observer that counts events, useful in tests and diagnostics.
#[derive(Debug, Default)]
pub struct EventCounters {
    admitted: std::sync::atomic::AtomicU64,
    rejected: std::sync::atomic::AtomicU64,
    evicted: std::sync::atomic::AtomicU64,
    invalidated: std::sync::atomic::AtomicU64,
}

impl EventCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of admissions observed.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of rejections observed.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of evictions observed.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of invalidations observed.
    pub fn invalidated(&self) -> u64 {
        self.invalidated.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl CacheObserver for EventCounters {
    fn on_cache_event(&self, event: &CacheEvent) {
        use std::sync::atomic::Ordering::Relaxed;
        match event {
            CacheEvent::Admitted { .. } => self.admitted.fetch_add(1, Relaxed),
            CacheEvent::Rejected { .. } => self.rejected.fetch_add(1, Relaxed),
            CacheEvent::Evicted { .. } => self.evicted.fetch_add(1, Relaxed),
            CacheEvent::Invalidated { .. } => self.invalidated.fetch_add(1, Relaxed),
        };
    }
}
