//! The IO reactor: an epoll-based readiness layer for the runtime.
//!
//! Sessions in the networked front end used to park one OS thread each in
//! blocking reads with a 25 ms poll tick.  The reactor replaces that with
//! the classic readiness design (mio-shaped, hand-rolled because this build
//! environment has no crates.io): sockets are registered **edge-triggered**
//! with one epoll instance owned by a dedicated reactor thread, and each
//! registration carries a [`ReadyCell`] — a small waker cell the IO futures
//! in [`super::net`] park on.
//!
//! ## Wakeup protocol
//!
//! Edge-triggered epoll reports a file descriptor once per readiness
//! *transition*, so consuming code must drain until `WouldBlock` or record
//! that it did not.  The cell makes that race-free with a **tick** per
//! direction:
//!
//! 1. The IO future calls [`ReadyCell::poll_ready`].  If the direction is
//!    marked ready it gets the current tick; otherwise its waker is parked
//!    and it suspends.
//! 2. It attempts the non-blocking syscall.  Anything but `WouldBlock`
//!    resolves the future.
//! 3. On `WouldBlock` it calls [`ReadyCell::clear_ready`] *with the tick it
//!    observed*.  If the reactor delivered a new event in the window between
//!    the syscall and the clear, the tick no longer matches, the clear is a
//!    no-op, and the loop retries the syscall instead of losing the edge.
//!
//! The reactor thread's side is the mirror image: on an epoll event it
//! bumps the tick, marks the direction ready, and wakes the parked waker
//! **after** releasing the cell lock.  New registrations start ready in
//! both directions (the first syscall attempt discovers the true state),
//! which is what makes edge-triggered registration sound: no event can be
//! missed between `epoll_ctl(ADD)` and the first poll.
//!
//! ## Locks
//!
//! Two lock classes, both leaves of the documented hierarchy
//! (`CONCURRENCY.md`):
//!
//! * the **registration table** (`Reactor::registrations`), held only to
//!   insert/remove/clone-out a registration — never while a cell lock or
//!   any scheduler/engine lock is held, and dropped before the cell is
//!   touched on the event path;
//! * each **readiness cell** (`ReadyCell::state`), held only to flip
//!   ready bits and swap wakers; wakers are invoked after the guard drops,
//!   so the cell never nests into the scheduler lock.
//!
//! ## Shutdown and the deregistration race
//!
//! [`Registration::drop`] removes the token from the table *first*, then
//! issues `EPOLL_CTL_DEL`.  The reactor thread may already have pulled an
//! event for that token and cloned the cell `Arc`: it will set readiness on
//! a cell whose registration is gone and wake a stale waker, which is
//! harmless by construction (waking a completed task is a no-op).  The
//! checker's deregister-while-ready model enumerates exactly this window.
//!
//! Reactor shutdown (runtime drop) sets a flag and writes one byte into a
//! wake pipe registered as token 0; the reactor thread observes the flag
//! after `epoll_wait` returns and exits.  The epoll fd itself closes when
//! the last registration drops its `Arc<Reactor>`.

use std::collections::HashMap;
use std::io::{self, PipeWriter};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use crate::sync::Mutex;

/// The epoll FFI surface — the one place in the crate allowed to contain
/// unsafe code (`lib.rs` denies it everywhere else).  Bindings are declared
/// by hand against glibc symbols the standard library already links; the
/// wrappers below expose a fully safe API and every invariant the syscalls
/// need (valid fd, correctly sized event buffer) is enforced by the types.
#[allow(unsafe_code)]
mod sys {
    use std::ffi::c_int;
    use std::io;

    pub(super) const EPOLLIN: u32 = 0x001;
    pub(super) const EPOLLOUT: u32 = 0x004;
    pub(super) const EPOLLERR: u32 = 0x008;
    pub(super) const EPOLLHUP: u32 = 0x010;
    pub(super) const EPOLLRDHUP: u32 = 0x2000;
    pub(super) const EPOLLET: u32 = 1 << 31;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;

    /// `struct epoll_event`; packed on x86-64 (the kernel ABI carries the
    /// 64-bit payload unaligned there).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub(super) struct EpollEvent {
        pub(super) events: u32,
        pub(super) data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// An owned epoll instance; closed on drop.
    pub(super) struct EpollFd(c_int);

    impl EpollFd {
        pub(super) fn create() -> io::Result<EpollFd> {
            // SAFETY: epoll_create1 takes no pointers; any flag value is
            // merely accepted or rejected by the kernel.
            cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) }).map(EpollFd)
        }

        pub(super) fn add(&self, fd: c_int, token: u64, interest: u32) -> io::Result<()> {
            let mut event = EpollEvent {
                events: interest,
                data: token,
            };
            // SAFETY: `event` is a live, correctly laid out epoll_event for
            // the duration of the call; the kernel copies it out.
            cvt(unsafe { epoll_ctl(self.0, EPOLL_CTL_ADD, fd, &mut event) }).map(|_| ())
        }

        pub(super) fn del(&self, fd: c_int) -> io::Result<()> {
            let mut event = EpollEvent { events: 0, data: 0 };
            // SAFETY: as in `add`; the event argument is ignored for DEL on
            // modern kernels but must still be a valid pointer for old ones.
            cvt(unsafe { epoll_ctl(self.0, EPOLL_CTL_DEL, fd, &mut event) }).map(|_| ())
        }

        /// Blocks until at least one event arrives; returns how many of
        /// `events` were filled.
        pub(super) fn wait(&self, events: &mut [EpollEvent]) -> io::Result<usize> {
            let capacity = c_int::try_from(events.len()).unwrap_or(c_int::MAX);
            // SAFETY: `events` is a live buffer of exactly `capacity`
            // epoll_event slots; the kernel writes at most that many.
            let filled = cvt(unsafe { epoll_wait(self.0, events.as_mut_ptr(), capacity, -1) })?;
            Ok(filled as usize)
        }
    }

    impl Drop for EpollFd {
        fn drop(&mut self) {
            // SAFETY: the fd is owned by this value and closed exactly once.
            unsafe {
                close(self.0);
            }
        }
    }
}

/// The readiness interest mask sockets are registered with: both directions
/// plus peer-shutdown, edge-triggered.
const INTEREST: u32 = sys::EPOLLIN | sys::EPOLLOUT | sys::EPOLLRDHUP | sys::EPOLLET;

/// The wake pipe's reserved token.
const WAKE_TOKEN: u64 = 0;

/// Which direction of a [`ReadyCell`] an IO future is waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Dir {
    /// Readable (also accept-ready for listeners).
    Read,
    /// Writable.
    Write,
}

/// One direction's readiness state.
#[derive(Default)]
struct Direction {
    /// Whether the fd is believed ready (true until a syscall proves
    /// otherwise — see the module docs on edge-triggered soundness).
    ready: bool,
    /// Bumped by every reactor-delivered event; [`ReadyCell::clear_ready`]
    /// only clears when the caller's observed tick still matches.
    tick: u64,
    /// The parked waker, if a future is suspended on this direction.
    waker: Option<Waker>,
}

struct ReadyState {
    read: Direction,
    write: Direction,
}

impl ReadyState {
    fn dir_mut(&mut self, dir: Dir) -> &mut Direction {
        match dir {
            Dir::Read => &mut self.read,
            Dir::Write => &mut self.write,
        }
    }
}

/// Per-registration readiness: ready bits, event ticks and parked wakers for
/// both directions.  A pure state machine over one internal mutex — no file
/// descriptors — so the checker can drive the registration-vs-deregistration
/// race against the real type.
pub(crate) struct ReadyCell {
    state: Mutex<ReadyState>,
}

impl ReadyCell {
    /// A fresh cell: both directions optimistically ready (the first
    /// syscall attempt discovers the true state).
    pub(crate) fn new() -> Self {
        ReadyCell {
            state: Mutex::new(ReadyState {
                read: Direction {
                    ready: true,
                    ..Direction::default()
                },
                write: Direction {
                    ready: true,
                    ..Direction::default()
                },
            }),
        }
    }

    /// Resolves with the direction's current tick when it is marked ready;
    /// parks the task's waker otherwise.
    pub(crate) fn poll_ready(&self, dir: Dir, cx: &mut Context<'_>) -> Poll<u64> {
        let mut state = self.state.lock();
        let direction = state.dir_mut(dir);
        if direction.ready {
            Poll::Ready(direction.tick)
        } else {
            direction.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }

    /// Marks the direction not-ready after a `WouldBlock`, unless a newer
    /// event arrived since `tick` was observed (then the clear is a no-op
    /// and the caller's retry loop re-attempts the syscall).
    pub(crate) fn clear_ready(&self, dir: Dir, tick: u64) {
        let mut state = self.state.lock();
        let direction = state.dir_mut(dir);
        if direction.tick == tick {
            direction.ready = false;
        }
    }

    /// The reactor's event delivery: bump ticks, set ready bits, and wake
    /// any parked wakers (strictly after the cell lock is released).
    pub(crate) fn set_ready(&self, readable: bool, writable: bool) {
        let mut woken = (None, None);
        {
            let mut state = self.state.lock();
            if readable {
                state.read.tick = state.read.tick.wrapping_add(1);
                state.read.ready = true;
                woken.0 = state.read.waker.take();
            }
            if writable {
                state.write.tick = state.write.tick.wrapping_add(1);
                state.write.ready = true;
                woken.1 = state.write.waker.take();
            }
        }
        if let Some(waker) = woken.0 {
            waker.wake();
        }
        if let Some(waker) = woken.1 {
            waker.wake();
        }
    }
}

/// The reactor: one epoll instance, a registration table, and a wake pipe.
/// Owned via `Arc` by the runtime, the reactor thread, and every live
/// [`Registration`].
pub(crate) struct Reactor {
    epoll: sys::EpollFd,
    /// token → readiness cell.  See the module docs for the lock discipline.
    registrations: Mutex<HashMap<u64, Arc<ReadyCell>>>,
    /// Monotonic token source (token 0 is the wake pipe's).
    next_token: AtomicU64,
    /// Writing one byte wakes the reactor thread out of `epoll_wait`.
    wake: PipeWriter,
    /// Set by [`Reactor::initiate_shutdown`]; the thread exits on its next
    /// pass through the event loop.
    shutdown: AtomicBool,
}

impl Reactor {
    /// Creates the reactor and starts its dedicated thread.
    pub(crate) fn start() -> io::Result<(Arc<Reactor>, std::thread::JoinHandle<()>)> {
        let epoll = sys::EpollFd::create()?;
        let (wake_rx, wake_tx) = io::pipe()?;
        epoll.add(raw_fd(&wake_rx), WAKE_TOKEN, sys::EPOLLIN | sys::EPOLLET)?;
        let reactor = Arc::new(Reactor {
            epoll,
            registrations: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(WAKE_TOKEN + 1),
            wake: wake_tx,
            shutdown: AtomicBool::new(false),
        });
        let thread = {
            let reactor = Arc::clone(&reactor);
            std::thread::Builder::new()
                .name("watchman-reactor".to_owned())
                .spawn(move || reactor.run(wake_rx))
                .map_err(io::Error::other)?
        };
        Ok((reactor, thread))
    }

    /// Registers `fd` (which must already be non-blocking) for
    /// edge-triggered readiness in both directions.
    pub(crate) fn register(self: &Arc<Self>, fd: i32) -> io::Result<Registration> {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let cell = Arc::new(ReadyCell::new());
        self.registrations.lock().insert(token, Arc::clone(&cell));
        if let Err(error) = self.epoll.add(fd, token, INTEREST) {
            self.registrations.lock().remove(&token);
            return Err(error);
        }
        Ok(Registration {
            reactor: Arc::clone(self),
            token,
            fd,
            cell,
        })
    }

    /// Requests the reactor thread to exit (the runtime joins it after).
    pub(crate) fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        let _ = io::Write::write(&mut (&self.wake), &[1]);
    }

    fn run(self: Arc<Self>, wake_rx: io::PipeReader) {
        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 64];
        loop {
            let filled = match self.epoll.wait(&mut events) {
                Ok(filled) => filled,
                Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
                // The epoll fd went bad: nothing to serve events from.
                Err(_) => return,
            };
            if filled > 0 {
                // One wakeup per epoll_wait return with events: the metric
                // distinguishes event-coalescing efficiency (few wakeups,
                // many events) from wakeup churn.
                crate::telemetry::global().reactor_wakeups.incr();
            }
            for event in &events[..filled] {
                // Copy out of the (possibly packed) struct before use.
                let bits = event.events;
                let token = event.data;
                if token == WAKE_TOKEN {
                    // Drain a batch of wake bytes; partial drains are fine
                    // (edge-triggered delivery re-fires on every new write,
                    // and one wake serves any number of coalesced requests).
                    let mut buf = [0u8; 64];
                    let _ = io::Read::read(&mut (&wake_rx), &mut buf);
                    continue;
                }
                // Clone out under the table lock, deliver after dropping it:
                // the cell lock and the table lock never nest.
                let cell = self.registrations.lock().get(&token).cloned();
                if let Some(cell) = cell {
                    let closed = bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
                    let readable = closed || bits & sys::EPOLLIN != 0;
                    let writable = closed || bits & sys::EPOLLOUT != 0;
                    cell.set_ready(readable, writable);
                }
            }
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
        }
    }
}

fn raw_fd(pipe: &io::PipeReader) -> i32 {
    use std::os::fd::AsRawFd;
    pipe.as_raw_fd()
}

/// A socket's registration with the reactor.  Dropping it deregisters the
/// fd: the table entry is removed first (so the reactor stops delivering),
/// then the epoll interest.  Must be dropped while the registered fd is
/// still open, which the `net` wrappers guarantee by field order.
pub(crate) struct Registration {
    reactor: Arc<Reactor>,
    token: u64,
    fd: i32,
    cell: Arc<ReadyCell>,
}

impl Registration {
    /// The readiness cell IO futures poll and clear.
    pub(crate) fn cell(&self) -> &ReadyCell {
        &self.cell
    }

    /// The reactor this registration belongs to (accepted sockets register
    /// with their listener's reactor).
    pub(crate) fn reactor(&self) -> &Arc<Reactor> {
        &self.reactor
    }
}

impl Drop for Registration {
    fn drop(&mut self) {
        self.reactor.registrations.lock().remove(&self.token);
        // EPOLL_CTL_DEL can fail benignly (fd already closed elsewhere);
        // the kernel drops closed fds from interest lists on its own.
        let _ = self.epoll_del();
    }
}

impl Registration {
    fn epoll_del(&self) -> io::Result<()> {
        self.reactor.epoll.del(self.fd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn count_waker(count: Arc<AtomicUsize>) -> Waker {
        struct CountWaker(Arc<AtomicUsize>);
        impl std::task::Wake for CountWaker {
            fn wake(self: Arc<Self>) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        Waker::from(Arc::new(CountWaker(count)))
    }

    #[test]
    fn ready_cell_tick_protocol_never_loses_an_edge() {
        let cell = ReadyCell::new();
        let wakes = Arc::new(AtomicUsize::new(0));
        let waker = count_waker(Arc::clone(&wakes));
        let mut cx = Context::from_waker(&waker);

        // Fresh cells are optimistically ready.
        let Poll::Ready(tick) = cell.poll_ready(Dir::Read, &mut cx) else {
            panic!("fresh cell must be ready");
        };
        // Syscall returned WouldBlock; no event since: the clear sticks.
        cell.clear_ready(Dir::Read, tick);
        assert!(cell.poll_ready(Dir::Read, &mut cx).is_pending());

        // Event delivery marks ready and wakes the parked waker.
        cell.set_ready(true, false);
        assert_eq!(wakes.load(Ordering::SeqCst), 1);
        let Poll::Ready(tick) = cell.poll_ready(Dir::Read, &mut cx) else {
            panic!("cell must be ready after event");
        };

        // The race: an event lands between the syscall and the clear.  The
        // tick no longer matches, so the clear must NOT un-ready the cell.
        cell.set_ready(true, false);
        cell.clear_ready(Dir::Read, tick);
        assert!(
            cell.poll_ready(Dir::Read, &mut cx).is_ready(),
            "a stale clear must not cancel a newer event"
        );
    }

    #[test]
    fn ready_cell_directions_are_independent() {
        let cell = ReadyCell::new();
        let wakes = Arc::new(AtomicUsize::new(0));
        let waker = count_waker(Arc::clone(&wakes));
        let mut cx = Context::from_waker(&waker);

        let Poll::Ready(read_tick) = cell.poll_ready(Dir::Read, &mut cx) else {
            panic!("ready");
        };
        let Poll::Ready(write_tick) = cell.poll_ready(Dir::Write, &mut cx) else {
            panic!("ready");
        };
        cell.clear_ready(Dir::Read, read_tick);
        cell.clear_ready(Dir::Write, write_tick);
        assert!(cell.poll_ready(Dir::Read, &mut cx).is_pending());
        assert!(cell.poll_ready(Dir::Write, &mut cx).is_pending());

        // A write-only event wakes only the writer.
        cell.set_ready(false, true);
        assert_eq!(wakes.load(Ordering::SeqCst), 1);
        assert!(cell.poll_ready(Dir::Read, &mut cx).is_pending());
        assert!(cell.poll_ready(Dir::Write, &mut cx).is_ready());
    }

    #[test]
    fn reactor_starts_registers_and_shuts_down() {
        let (reactor, thread) = Reactor::start().expect("reactor starts");
        // Register a real fd (a pipe read end) and drop the registration.
        let (rx, _tx) = io::pipe().expect("pipe");
        let registration = reactor.register(raw_fd(&rx)).expect("register");
        assert!(registration.cell().state.lock().read.ready);
        drop(registration);
        assert!(reactor.registrations.lock().is_empty());
        reactor.initiate_shutdown();
        thread.join().expect("reactor thread exits");
    }
}
