//! Non-blocking TCP wrappers over the runtime's IO [reactor](super::reactor).
//!
//! [`TcpListener`] and [`TcpStream`] wrap their `std::net` counterparts in
//! non-blocking mode, registered edge-triggered with the owning runtime's
//! reactor.  Their `poll_*` methods follow the reactor's tick protocol
//! (attempt the syscall while the readiness cell says ready; on
//! `WouldBlock`, clear the observed tick and suspend), and the `async`
//! convenience methods wrap those polls so protocol code can be written as
//! plain `async fn` state machines.
//!
//! A stream is driven by **one task at a time** per direction — the wrapper
//! stores a single waker per direction, exactly like the rest of this
//! runtime's primitives.  The networked front end's sessions are strictly
//! sequential (read a frame, serve it, write the response), so this is all
//! they need.
//!
//! Accepted sockets register with the listener's reactor; a stream created
//! from an arbitrary `std::net::TcpStream` (a client side, a test harness)
//! registers via [`TcpStream::from_std`] with any [`Runtime`].

use std::future::poll_fn;
use std::io::{self, Read, Write};
use std::net::SocketAddr;
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{ready, Context, Poll};

use super::reactor::{Dir, Registration};
use super::Runtime;

/// What a [`FaultInjector`] wants done to one IO attempt on a stream.
///
/// Faults are applied at the `poll_read`/`poll_write` seam — below the
/// framing layer, above the socket — so an injected fault is
/// indistinguishable from the network actually misbehaving: a clamped read
/// delivers a torn frame, a reset surfaces as `ECONNRESET`, a stall parks
/// the task exactly like a peer that stopped sending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Perform the IO normally.
    Pass,
    /// Let at most this many bytes through on this attempt (minimum 1), so
    /// frames arrive torn across multiple reads/writes.
    Clamp(usize),
    /// Fail the attempt with [`io::ErrorKind::ConnectionReset`] and shut the
    /// socket down, as if the peer sent an RST.
    Reset,
    /// Park the attempt forever: return `Poll::Pending` without arming a
    /// waker.  The task only runs again if something else wakes it (e.g. a
    /// server-side read deadline evicting the session, or shutdown
    /// cancelling the task).
    Stall,
}

/// A deterministic fault source consulted on every IO attempt of a stream
/// it is installed on (via [`TcpStream::install_fault_injector`]).
///
/// `op` counts *completed* operations in that direction on that stream so
/// far, so a plan keyed on (connection, operation index) replays the same
/// fault schedule on every run regardless of poll spuriousness.
pub trait FaultInjector: Send + Sync {
    /// Consulted before each read attempt.
    fn on_read(&self, conn: u64, op: u64) -> FaultAction;
    /// Consulted before each write attempt.
    fn on_write(&self, conn: u64, op: u64) -> FaultAction;
}

/// Per-stream fault-injection state: the installed injector, the stream's
/// connection id under the injector's schedule, and completed-op counters
/// per direction.
struct FaultState {
    injector: Arc<dyn FaultInjector>,
    conn: u64,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl FaultState {
    fn action(&self, dir: Dir) -> FaultAction {
        let op = match dir {
            Dir::Read => self.reads.load(Ordering::Relaxed),
            Dir::Write => self.writes.load(Ordering::Relaxed),
        };
        match dir {
            Dir::Read => self.injector.on_read(self.conn, op),
            Dir::Write => self.injector.on_write(self.conn, op),
        }
    }

    fn note_completed(&self, dir: Dir) {
        match dir {
            Dir::Read => self.reads.fetch_add(1, Ordering::Relaxed),
            Dir::Write => self.writes.fetch_add(1, Ordering::Relaxed),
        };
    }
}

/// A fault that preempts the IO attempt entirely (as opposed to a clamp,
/// which merely narrows it).
enum FaultVerdict {
    Reset,
    Stall,
}

/// The error an injected [`FaultAction::Reset`] surfaces as.
fn injected_reset() -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionReset, "injected connection reset")
}

/// Process-wide counters of the read/write syscalls issued through
/// [`TcpStream`], kept so benches can report *syscalls per frame* — the
/// number the buffered wire path exists to shrink.  Counts every attempt
/// (including ones that return `WouldBlock`), because each attempt is a real
/// kernel crossing.  Relaxed atomics: the counters are observational only.
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    static READ_SYSCALLS: AtomicU64 = AtomicU64::new(0);
    static WRITE_SYSCALLS: AtomicU64 = AtomicU64::new(0);

    pub(super) fn note_read() {
        READ_SYSCALLS.fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn note_write() {
        WRITE_SYSCALLS.fetch_add(1, Ordering::Relaxed);
    }

    /// Total read (`recv`) syscalls attempted on any [`super::TcpStream`].
    pub fn read_syscalls() -> u64 {
        READ_SYSCALLS.load(Ordering::Relaxed)
    }

    /// Total write (`send`/`writev`) syscalls attempted on any
    /// [`super::TcpStream`].
    pub fn write_syscalls() -> u64 {
        WRITE_SYSCALLS.load(Ordering::Relaxed)
    }
}

/// A TCP listener whose `accept` is readiness-driven instead of blocking a
/// thread.
pub struct TcpListener {
    // Declared before the socket so deregistration runs while the fd is
    // still open (fields drop in declaration order).
    registration: Registration,
    std: std::net::TcpListener,
}

impl TcpListener {
    /// Binds a listener and registers it with `runtime`'s reactor (starting
    /// the reactor thread on first use).
    pub fn bind(runtime: &Runtime, addr: &str) -> io::Result<TcpListener> {
        let std = std::net::TcpListener::bind(addr)?;
        std.set_nonblocking(true)?;
        let registration = runtime.reactor()?.register(std.as_raw_fd())?;
        Ok(TcpListener { registration, std })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.std.local_addr()
    }

    /// Polls for an inbound connection; the accepted stream is registered
    /// with the same reactor.
    pub fn poll_accept(&self, cx: &mut Context<'_>) -> Poll<io::Result<(TcpStream, SocketAddr)>> {
        loop {
            let tick = ready!(self.registration.cell().poll_ready(Dir::Read, cx));
            match self.std.accept() {
                Ok((stream, peer)) => {
                    let stream = TcpStream::register(self.registration.reactor(), stream)?;
                    return Poll::Ready(Ok((stream, peer)));
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                    self.registration.cell().clear_ready(Dir::Read, tick);
                }
                Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
                Err(error) => return Poll::Ready(Err(error)),
            }
        }
    }

    /// Accepts one inbound connection.
    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        poll_fn(|cx| self.poll_accept(cx)).await
    }
}

/// A non-blocking TCP stream driven by the reactor.
pub struct TcpStream {
    // Field order matters: deregister before the fd closes.
    registration: Registration,
    std: std::net::TcpStream,
    /// Installed fault injector, if any.  `None` (the default) leaves the
    /// hot path a single branch.
    fault: Option<FaultState>,
}

impl TcpStream {
    /// Converts a connected `std` stream (e.g. from a blocking
    /// `connect`) into a reactor-driven one.
    pub fn from_std(runtime: &Runtime, std: std::net::TcpStream) -> io::Result<TcpStream> {
        let reactor = runtime.reactor()?;
        Self::register(&reactor, std)
    }

    fn register(
        reactor: &std::sync::Arc<super::reactor::Reactor>,
        std: std::net::TcpStream,
    ) -> io::Result<TcpStream> {
        std.set_nonblocking(true)?;
        let registration = reactor.register(std.as_raw_fd())?;
        Ok(TcpStream {
            registration,
            std,
            fault: None,
        })
    }

    /// Installs a [`FaultInjector`] on this stream under connection id
    /// `conn`.  Every subsequent read/write attempt consults the injector
    /// first; see [`FaultAction`] for the menu.
    pub fn install_fault_injector(&mut self, injector: Arc<dyn FaultInjector>, conn: u64) {
        self.fault = Some(FaultState {
            injector,
            conn,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        });
    }

    /// Resolves the injected action for one attempt in `dir`, translating
    /// `Reset` into the socket shutdown + error it stands for.  Returns
    /// `None` when the attempt should proceed (possibly clamped to the
    /// returned byte budget).
    fn fault_gate(&self, dir: Dir) -> Result<Option<usize>, FaultVerdict> {
        let Some(state) = &self.fault else {
            return Ok(None);
        };
        match state.action(dir) {
            FaultAction::Pass => Ok(None),
            FaultAction::Clamp(limit) => Ok(Some(limit.max(1))),
            FaultAction::Reset => {
                let _ = self.std.shutdown(std::net::Shutdown::Both);
                Err(FaultVerdict::Reset)
            }
            FaultAction::Stall => Err(FaultVerdict::Stall),
        }
    }

    /// The peer's address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.std.peer_addr()
    }

    /// Disables (or re-enables) Nagle's algorithm.
    pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
        self.std.set_nodelay(nodelay)
    }

    /// Polls one non-blocking read into `buf`; `Ok(0)` is end-of-stream.
    pub fn poll_read(&self, cx: &mut Context<'_>, buf: &mut [u8]) -> Poll<io::Result<usize>> {
        let buf = match self.fault_gate(Dir::Read) {
            Ok(None) => buf,
            Ok(Some(limit)) => {
                let take = limit.min(buf.len());
                &mut buf[..take]
            }
            Err(FaultVerdict::Reset) => return Poll::Ready(Err(injected_reset())),
            Err(FaultVerdict::Stall) => return Poll::Pending,
        };
        loop {
            let tick = ready!(self.registration.cell().poll_ready(Dir::Read, cx));
            stats::note_read();
            match (&self.std).read(buf) {
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                    self.registration.cell().clear_ready(Dir::Read, tick);
                }
                Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
                result => {
                    if result.is_ok() {
                        if let Some(state) = &self.fault {
                            state.note_completed(Dir::Read);
                        }
                    }
                    return Poll::Ready(result);
                }
            }
        }
    }

    /// Polls one non-blocking write of `buf`.
    pub fn poll_write(&self, cx: &mut Context<'_>, buf: &[u8]) -> Poll<io::Result<usize>> {
        let buf = match self.fault_gate(Dir::Write) {
            Ok(None) => buf,
            Ok(Some(limit)) => &buf[..limit.min(buf.len())],
            Err(FaultVerdict::Reset) => return Poll::Ready(Err(injected_reset())),
            Err(FaultVerdict::Stall) => return Poll::Pending,
        };
        loop {
            let tick = ready!(self.registration.cell().poll_ready(Dir::Write, cx));
            stats::note_write();
            match (&self.std).write(buf) {
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                    self.registration.cell().clear_ready(Dir::Write, tick);
                }
                Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
                result => {
                    if result.is_ok() {
                        if let Some(state) = &self.fault {
                            state.note_completed(Dir::Write);
                        }
                    }
                    return Poll::Ready(result);
                }
            }
        }
    }

    /// Polls one non-blocking vectored write of `bufs` (a single `writev`
    /// syscall covering every slice the kernel accepts in one go).
    pub fn poll_write_vectored(
        &self,
        cx: &mut Context<'_>,
        bufs: &[io::IoSlice<'_>],
    ) -> Poll<io::Result<usize>> {
        // A clamped vectored write degrades to a plain clamped write of the
        // first non-empty slice — a short `writev` is already legal, so the
        // framing layer resumes from the torn byte exactly as it would after
        // a partial kernel write.
        let clamp = match self.fault_gate(Dir::Write) {
            Ok(clamp) => clamp,
            Err(FaultVerdict::Reset) => return Poll::Ready(Err(injected_reset())),
            Err(FaultVerdict::Stall) => return Poll::Pending,
        };
        if let Some(limit) = clamp {
            let first = bufs.iter().find(|buf| !buf.is_empty());
            return match first {
                Some(first) => self.poll_write_clamped(cx, &first[..limit.min(first.len())]),
                None => self.poll_write_clamped(cx, &[]),
            };
        }
        loop {
            let tick = ready!(self.registration.cell().poll_ready(Dir::Write, cx));
            stats::note_write();
            match (&self.std).write_vectored(bufs) {
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                    self.registration.cell().clear_ready(Dir::Write, tick);
                }
                Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
                result => {
                    if result.is_ok() {
                        if let Some(state) = &self.fault {
                            state.note_completed(Dir::Write);
                        }
                    }
                    return Poll::Ready(result);
                }
            }
        }
    }

    /// The syscall half of a fault-clamped write: the gate has already run,
    /// so this must not consult it again (it would double-count the op).
    fn poll_write_clamped(&self, cx: &mut Context<'_>, buf: &[u8]) -> Poll<io::Result<usize>> {
        loop {
            let tick = ready!(self.registration.cell().poll_ready(Dir::Write, cx));
            stats::note_write();
            match (&self.std).write(buf) {
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                    self.registration.cell().clear_ready(Dir::Write, tick);
                }
                Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
                result => {
                    if result.is_ok() {
                        if let Some(state) = &self.fault {
                            state.note_completed(Dir::Write);
                        }
                    }
                    return Poll::Ready(result);
                }
            }
        }
    }

    /// Writes some bytes from `bufs` with one `writev`; returns the count
    /// accepted (which may stop mid-slice).
    pub async fn write_vectored(&self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
        poll_fn(|cx| self.poll_write_vectored(cx, bufs)).await
    }

    /// Reads some bytes into `buf`; resolves with 0 at end-of-stream.
    pub async fn read(&self, buf: &mut [u8]) -> io::Result<usize> {
        poll_fn(|cx| self.poll_read(cx, buf)).await
    }

    /// Fills `buf` completely, failing with [`io::ErrorKind::UnexpectedEof`]
    /// if the stream ends first.
    pub async fn read_exact(&self, buf: &mut [u8]) -> io::Result<()> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.read(&mut buf[filled..]).await? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "stream closed mid-read",
                    ))
                }
                n => filled += n,
            }
        }
        Ok(())
    }

    /// Writes all of `buf`.
    pub async fn write_all(&self, buf: &[u8]) -> io::Result<()> {
        let mut written = 0;
        while written < buf.len() {
            match poll_fn(|cx| self.poll_write(cx, &buf[written..])).await? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "stream refused further bytes",
                    ))
                }
                n => written += n,
            }
        }
        Ok(())
    }

    /// Writes all of `bufs`, coalescing as many slices per `writev` as the
    /// kernel will take.  Short writes resume from the first unwritten byte.
    pub async fn write_all_vectored(&self, bufs: &[&[u8]]) -> io::Result<()> {
        let total: usize = bufs.iter().map(|buf| buf.len()).sum();
        let mut written = 0usize;
        while written < total {
            // Rebuild the slice list from the first unwritten byte: a short
            // writev may have stopped mid-slice.
            let mut skip = written;
            let mut slices = Vec::with_capacity(bufs.len());
            for buf in bufs {
                if skip >= buf.len() {
                    skip -= buf.len();
                    continue;
                }
                slices.push(io::IoSlice::new(&buf[skip..]));
                skip = 0;
            }
            match self.write_vectored(&slices).await? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "stream refused further bytes",
                    ))
                }
                n => written += n,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::block_on;
    use std::sync::Arc;

    #[test]
    fn async_accept_read_write_round_trip() {
        let runtime = Runtime::with_workers(2);
        let listener = TcpListener::bind(&runtime, "127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");

        // Server task: accept one connection, echo 4 bytes doubled.
        let server = runtime.spawn(async move {
            let (stream, _peer) = listener.accept().await.expect("accept");
            let mut buf = [0u8; 4];
            stream.read_exact(&mut buf).await.expect("read");
            let doubled: Vec<u8> = buf.iter().map(|b| b * 2).collect();
            stream.write_all(&doubled).await.expect("write");
        });

        // Client side: a *blocking* std stream is enough to drive it.
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        client.write_all(&[1, 2, 3, 4]).expect("send");
        let mut echoed = [0u8; 4];
        client.read_exact(&mut echoed).expect("recv");
        assert_eq!(echoed, [2, 4, 6, 8]);
        block_on(server).expect("server task");
    }

    #[test]
    fn vectored_write_delivers_every_slice_in_order() {
        let runtime = Runtime::with_workers(1);
        let listener = TcpListener::bind(&runtime, "127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        // Three uneven slices, including an empty one, pushed with a single
        // write_all_vectored call; the blocking client must see the exact
        // concatenation.
        let server = runtime.spawn(async move {
            let (stream, _peer) = listener.accept().await.expect("accept");
            let big = vec![7u8; 9000];
            let slices: [&[u8]; 4] = [b"head", &[], &big, b"tail"];
            stream.write_all_vectored(&slices).await.expect("writev");
        });
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        let mut received = Vec::new();
        client.read_to_end(&mut received).expect("recv");
        let mut expected = b"head".to_vec();
        expected.extend(std::iter::repeat_n(7u8, 9000));
        expected.extend_from_slice(b"tail");
        assert_eq!(received, expected);
        block_on(server).expect("server task");
    }

    #[test]
    fn syscall_counters_advance_with_traffic() {
        let reads_before = stats::read_syscalls();
        let writes_before = stats::write_syscalls();
        let runtime = Runtime::with_workers(1);
        let listener = TcpListener::bind(&runtime, "127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = runtime.spawn(async move {
            let (stream, _peer) = listener.accept().await.expect("accept");
            let mut buf = [0u8; 4];
            stream.read_exact(&mut buf).await.expect("read");
            stream.write_all(&buf).await.expect("write");
        });
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        client.write_all(&[9, 9, 9, 9]).expect("send");
        let mut echoed = [0u8; 4];
        client.read_exact(&mut echoed).expect("recv");
        block_on(server).expect("server task");
        assert!(stats::read_syscalls() > reads_before);
        assert!(stats::write_syscalls() > writes_before);
    }

    #[test]
    fn read_resolves_zero_on_peer_close() {
        let runtime = Runtime::with_workers(1);
        let listener = TcpListener::bind(&runtime, "127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = runtime.spawn(async move {
            let (stream, _) = listener.accept().await.expect("accept");
            let mut buf = [0u8; 16];
            stream.read(&mut buf).await.expect("read")
        });
        let client = std::net::TcpStream::connect(addr).expect("connect");
        drop(client); // immediate close: the async read must observe EOF
        assert_eq!(block_on(server).expect("server task"), 0);
    }

    #[test]
    fn fault_injector_clamps_and_resets_deterministically() {
        use std::io::Write as _;

        /// Clamps the first `clamp_ops` reads to one byte, then resets.
        struct Plan {
            clamp_ops: u64,
        }
        impl FaultInjector for Plan {
            fn on_read(&self, _conn: u64, op: u64) -> FaultAction {
                if op < self.clamp_ops {
                    FaultAction::Clamp(1)
                } else {
                    FaultAction::Reset
                }
            }
            fn on_write(&self, _conn: u64, _op: u64) -> FaultAction {
                FaultAction::Pass
            }
        }

        let runtime = Runtime::with_workers(1);
        let listener = TcpListener::bind(&runtime, "127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = runtime.spawn(async move {
            let (mut stream, _) = listener.accept().await.expect("accept");
            stream.install_fault_injector(Arc::new(Plan { clamp_ops: 4 }), 0);
            // Four 1-byte reads deliver the payload torn but intact...
            let mut buf = [0u8; 4];
            stream.read_exact(&mut buf).await.expect("clamped reads");
            // ...and the fifth attempt observes the injected reset.
            let err = stream.read(&mut [0u8; 4]).await.expect_err("reset");
            (buf, err.kind())
        });
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        client.write_all(&[10, 20, 30, 40]).expect("send");
        let (buf, kind) = block_on(server).expect("server task");
        assert_eq!(buf, [10, 20, 30, 40]);
        assert_eq!(kind, io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn many_concurrent_sessions_on_two_workers() {
        // 32 echo sessions over 2 workers: sessions are tasks, not threads.
        let runtime = Arc::new(Runtime::with_workers(2));
        let listener = TcpListener::bind(&runtime, "127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let accept_runtime = Arc::clone(&runtime);
        let acceptor = runtime.spawn(async move {
            let mut sessions = Vec::new();
            for _ in 0..32 {
                let (stream, _) = listener.accept().await.expect("accept");
                sessions.push(accept_runtime.spawn(async move {
                    let mut buf = [0u8; 8];
                    stream.read_exact(&mut buf).await.expect("read");
                    stream.write_all(&buf).await.expect("write");
                }));
            }
            for session in sessions {
                session.await.expect("session");
            }
        });
        let clients: Vec<_> = (0..32u8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut client = std::net::TcpStream::connect(addr).expect("connect");
                    let payload = [i; 8];
                    client.write_all(&payload).expect("send");
                    let mut echoed = [0u8; 8];
                    client.read_exact(&mut echoed).expect("recv");
                    assert_eq!(echoed, payload);
                })
            })
            .collect();
        for client in clients {
            client.join().expect("client thread");
        }
        block_on(acceptor).expect("acceptor");
    }
}
