//! Task plumbing: the schedulable unit, its waker, and [`JoinHandle`].
//!
//! A spawned future is boxed into a [`TaskFuture`] (which routes its output —
//! or its panic — into the [`JoinHandle`]'s shared slot) and wrapped in a
//! [`RunnableTask`], the `Arc` the scheduler queues and wakers point at.

use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::task::{Context, Poll, Wake, Waker};

use crate::sync::Mutex;

use super::queue::NO_WORKER;
use super::RuntimeInner;

/// Why a [`JoinHandle`] resolved without its task's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinError {
    /// The task panicked; the worker caught the panic.
    Panicked,
    /// The runtime shut down (or the task was otherwise dropped) before the
    /// task completed.
    Cancelled,
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::Panicked => f.write_str("task panicked"),
            JoinError::Cancelled => f.write_str("task cancelled before completion"),
        }
    }
}

impl std::error::Error for JoinError {}

/// The slot a task's output travels through to its [`JoinHandle`].
struct JoinSlot<T> {
    result: Mutex<JoinSlotState<T>>,
}

enum JoinSlotState<T> {
    Pending(Option<Waker>),
    Ready(Result<T, JoinError>),
    Taken,
}

impl<T> JoinSlot<T> {
    /// Stores the task's result, unless one is already stored: completion
    /// wins over the `Drop`-reported cancellation that follows it.
    fn finish(&self, result: Result<T, JoinError>) {
        let mut slot = self.result.lock();
        if !matches!(&*slot, JoinSlotState::Pending(_)) {
            return;
        }
        let JoinSlotState::Pending(waker) =
            std::mem::replace(&mut *slot, JoinSlotState::Ready(result))
        else {
            unreachable!("checked Pending above");
        };
        drop(slot);
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

/// A future resolving to the output of a task spawned on a
/// [`Runtime`](super::Runtime).
///
/// Dropping the handle detaches the task (it keeps running).  Awaiting it
/// yields `Ok(output)`, or a [`JoinError`] if the task panicked or the
/// runtime shut down first.
pub struct JoinHandle<T> {
    slot: Arc<JoinSlot<T>>,
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle").finish_non_exhaustive()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut slot = self.slot.result.lock();
        match &mut *slot {
            JoinSlotState::Pending(waker) => {
                *waker = Some(cx.waker().clone());
                Poll::Pending
            }
            state @ JoinSlotState::Ready(_) => {
                let JoinSlotState::Ready(result) = std::mem::replace(state, JoinSlotState::Taken)
                else {
                    unreachable!("matched Ready above");
                };
                Poll::Ready(result)
            }
            JoinSlotState::Taken => panic!("JoinHandle polled after completion"),
        }
    }
}

/// Wraps a spawned future: runs it under `catch_unwind`, routes the output
/// into the [`JoinSlot`], and — via its `Drop` — reports cancellation and
/// decrements the runtime's alive-task counter exactly once no matter how
/// the task ends.
pub(crate) struct TaskFuture<F: Future> {
    // Boxed so the wrapper is `Unpin` and polling needs no unsafe pin
    // projection (the crate forbids unsafe code).
    future: Pin<Box<F>>,
    slot: Arc<JoinSlot<F::Output>>,
    runtime: Weak<RuntimeInner>,
    /// Whether this task has already settled (result delivered, alive
    /// counter decremented).  Guards against the `Drop` that follows a
    /// completed poll double-decrementing.
    settled: bool,
}

impl<F: Future> TaskFuture<F> {
    /// Delivers the task's result exactly once.  The alive counter is
    /// decremented *before* the join slot resolves: a thread that returns
    /// from joining this task must never observe it still counted alive.
    fn settle(&mut self, result: Result<F::Output, JoinError>) {
        if self.settled {
            return;
        }
        self.settled = true;
        if let Some(runtime) = self.runtime.upgrade() {
            runtime.alive.fetch_sub(1, Ordering::AcqRel);
        }
        self.slot.finish(result);
    }
}

impl<F: Future> TaskFuture<F> {
    /// Boxes `future` into a schedulable task plus the join handle for its
    /// output.
    pub(crate) fn package(
        future: F,
        runtime: Weak<RuntimeInner>,
    ) -> (Arc<RunnableTask>, JoinHandle<F::Output>)
    where
        F: Send + 'static,
        F::Output: Send + 'static,
    {
        let slot = Arc::new(JoinSlot {
            result: Mutex::new(JoinSlotState::Pending(None)),
        });
        let task = TaskFuture {
            future: Box::pin(future),
            slot: Arc::clone(&slot),
            runtime: runtime.clone(),
            settled: false,
        };
        let runnable = Arc::new(RunnableTask {
            future: Mutex::new(Some(Box::pin(task))),
            queued: AtomicBool::new(true),
            last_worker: AtomicUsize::new(NO_WORKER),
            runtime,
        });
        (runnable, JoinHandle { slot })
    }
}

impl<F: Future> Future for TaskFuture<F> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        // `Pin<Box<F>>` makes the wrapper `Unpin`, so plain projection works.
        let this = self.get_mut();
        let future = this.future.as_mut();
        match catch_unwind(AssertUnwindSafe(|| future.poll(cx))) {
            Ok(Poll::Pending) => Poll::Pending,
            Ok(Poll::Ready(output)) => {
                this.settle(Ok(output));
                Poll::Ready(())
            }
            Err(_panic) => {
                this.settle(Err(JoinError::Panicked));
                Poll::Ready(())
            }
        }
    }
}

impl<F: Future> Drop for TaskFuture<F> {
    fn drop(&mut self) {
        // If the task never settled it never completed: the runtime shut
        // down with the task queued or suspended.  `settle` is a no-op after
        // a completed poll already delivered the real result.
        self.settle(Err(JoinError::Cancelled));
    }
}

/// The unit the scheduler queues: a slot holding the boxed task future, plus
/// the wake bookkeeping.
pub(crate) struct RunnableTask {
    /// `None` once the task has completed (its future is dropped in place).
    future: Mutex<Option<Pin<Box<dyn Future<Output = ()> + Send>>>>,
    /// Whether the task currently sits in the ready queue; wakes while it is
    /// being polled re-queue it exactly once.
    queued: AtomicBool,
    /// The worker that last polled this task ([`NO_WORKER`] before the first
    /// poll).  Wakes from outside the pool (the reactor, external threads)
    /// use it as a placement hint, so a session task keeps returning to the
    /// worker whose cache holds its state.
    last_worker: AtomicUsize,
    runtime: Weak<RuntimeInner>,
}

impl RunnableTask {
    /// Records the worker about to poll this task (placement hint).
    pub(crate) fn set_last_worker(&self, worker: usize) {
        self.last_worker.store(worker, Ordering::Relaxed);
    }

    /// The worker that last polled this task, or [`NO_WORKER`].
    pub(crate) fn last_worker(&self) -> usize {
        self.last_worker.load(Ordering::Relaxed)
    }
    /// Polls the task once.  Called by workers with no scheduler lock held.
    pub(crate) fn run(self: Arc<Self>) {
        // Clear the queued flag *before* polling: a wake arriving during the
        // poll must re-queue the task or its readiness would be lost.
        self.queued.store(false, Ordering::Release);
        let waker = Waker::from(Arc::clone(&self));
        let mut cx = Context::from_waker(&waker);
        let mut slot = self.future.lock();
        let Some(future) = slot.as_mut() else {
            return; // completed earlier; a stale waker re-queued it
        };
        // Lock-held-across-poll check: the worker may hold the task's own
        // future-slot mutex (taken just above, hence the one exemption) but
        // nothing else — an engine lock pinned across a suspension point
        // would serialize every session sharing it behind this task.
        #[cfg(feature = "lock-graph")]
        crate::sync::note_task_poll(1);
        // TaskFuture::poll never unwinds (it catches user panics), so the
        // worker thread survives any task.  The poll is timed into the
        // per-task poll-duration histogram; polls that exceed the
        // cooperative budget also bump the long-poll counter (a task that
        // hogs its worker starves every peer behind it).
        let poll_start = crate::telemetry::now();
        let ready = future.as_mut().poll(&mut cx).is_ready();
        let poll_us = crate::telemetry::elapsed_us(poll_start);
        let telemetry = crate::telemetry::global();
        telemetry.task_poll_us.record(poll_us);
        if poll_us >= crate::telemetry::LONG_POLL_THRESHOLD_US {
            telemetry.long_polls.incr();
        }
        if ready {
            *slot = None;
        } else if self
            .runtime
            .upgrade()
            .is_none_or(|runtime| runtime.is_shutting_down())
        {
            // Shutdown began while this poll ran: the cancel sweep in
            // Runtime::drop could not take our future mutex (we hold it), so
            // drop the future here — its Drop reports Cancelled.
            *slot = None;
        }
    }

    /// Drops the task's future in place (runtime shutdown): its `Drop`
    /// reports [`JoinError::Cancelled`](super::JoinError::Cancelled) through
    /// the join handle.  Never blocks — if the future mutex is held, the
    /// task is being polled right now and that poll's epilogue performs the
    /// cleanup itself (see [`RunnableTask::run`]); a no-op if the task
    /// already completed.
    pub(crate) fn try_cancel(&self) {
        if let Some(mut slot) = self.future.try_lock() {
            *slot = None;
        }
    }
}

impl Wake for RunnableTask {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        if self.queued.swap(true, Ordering::AcqRel) {
            return; // already queued
        }
        if let Some(runtime) = self.runtime.upgrade() {
            runtime.schedule(Arc::clone(self));
        }
    }
}
