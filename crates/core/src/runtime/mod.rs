//! A small hand-rolled async runtime for the engine's execution layer.
//!
//! Warehouse queries take seconds, so the cache manager must never serialize
//! sessions behind one another's executions (paper §3).  The poll-based
//! engine ([`Watchman::get_or_execute_async`]) suspends waiting sessions as
//! futures instead of parking OS threads; *something* has to poll those
//! futures, and the build environment is offline (no tokio), so this module
//! provides the minimal executor the engine needs:
//!
//! * [`Runtime`] — a configurable pool of worker threads sharing one injector
//!   queue of tasks, plus a timer heap for [`Runtime::sleep`];
//! * [`Runtime::spawn`] — submits any `Future` and returns a [`JoinHandle`]
//!   (itself a future) for its output;
//! * [`block_on`] — drives any future to completion on the calling thread,
//!   parking between polls.  This is the bridge the synchronous engine entry
//!   points use: `get_or_execute` is literally `block_on(get_or_execute_async
//!   (..))`.
//!
//! ## Scheduling model
//!
//! The ready set is **sharded**: each worker owns a local run queue (a FIFO
//! plus a one-slot LIFO) behind its own mutex, with a global injector for
//! submissions that carry no placement hint and randomized work stealing to
//! rebalance load (the data plane lives in `queue.rs`):
//!
//! * **Placement follows the wake.**  A wake performed *by* a worker lands
//!   in that worker's queue — in the LIFO slot when it wakes another task
//!   (a single-flight leader waking a follower hands it off while its state
//!   is cache-hot, subject to a streak cap so hand-off chains cannot starve
//!   the FIFO), or at the FIFO back when a task re-queues itself
//!   ([`yield_now`] keeps its everything-else-first meaning).  Wakes from
//!   outside the pool — the IO reactor, external threads — go to the queue
//!   of the worker that *last polled* the task, so a session keeps
//!   returning to the same core; fresh spawns with no history go to the
//!   injector.  With one worker this degenerates to the strict FIFO
//!   executor the deterministic tests rely on.
//! * **Stealing bounds imbalance.**  A worker with an empty local queue
//!   sweeps its siblings in xorshift-randomized order and takes half of the
//!   first non-empty FIFO it finds, then falls back to the injector; every
//!   61st pop services the injector first so remote submissions cannot
//!   starve behind local wake traffic.  An idle worker parks on its own
//!   permit (no shared condvar, no thundering herd); the
//!   register-idle → re-scan → park protocol that makes parking race-free
//!   is documented in `queue.rs`, asserted leaf-level in the lock-order
//!   graph, and model-checked by the checker's work-stealing model
//!   (`CONCURRENCY.md`).
//! * **IO readiness comes from a reactor thread.**  The first
//!   [`net::TcpListener`]/[`net::TcpStream`] registration lazily starts one
//!   dedicated reactor thread parked in `epoll_wait`; sockets are
//!   registered edge-triggered and IO futures park per-direction wakers in
//!   a readiness cell the reactor flips on events (the full wakeup
//!   protocol, including the tick scheme that makes edge-triggered clears
//!   race-free, is documented in `reactor.rs` and `CONCURRENCY.md`).
//!   Runtimes that never touch the network never pay for the thread.
//!   Waking a task from the reactor is a push onto its last worker's queue:
//!   IO-bound sessions are ordinary tasks, so thousands of idle connections
//!   cost two parked wakers each — not threads.
//! * **Blocking closures occupy a worker.**  The engine's fetch closures are
//!   *blocking* by design (they model multi-second warehouse scans), and each
//!   one occupies a worker thread for its duration.  Size the pool to the
//!   number of concurrent executions you want to allow, exactly like the
//!   paper sizes its multiprogramming level; waiting *sessions* cost nothing
//!   either way because they suspend instead of holding threads.  Tasks
//!   queued behind a blocked worker do not wait for it — a sibling steals
//!   them.
//! * **Timers are best-effort.**  [`Sleep`] deadlines live in one global
//!   heap guarded by an atomic earliest-deadline mirror, so the per-pop
//!   check is a single load; workers fire due timers between tasks and park
//!   against the earliest deadline.  A pool whose every worker is stuck in
//!   a long blocking fetch fires timers late.  Fine for the engine's
//!   background maintenance (rebalance passes), unsuitable for
//!   high-resolution timing.
//! * **Shutdown is prompt, not graceful-drain.**  Dropping the [`Runtime`]
//!   (or calling [`Runtime::shutdown`] on a shared handle) stops the
//!   reactor, grants every worker's park permit, stops polling, drops all
//!   pending tasks (their [`JoinHandle`]s resolve to
//!   [`JoinError::Cancelled`]) and joins the workers.  In-flight polls
//!   finish; suspended tasks never run again.  Callers that want a graceful
//!   drain (the networked server) signal their tasks first and call
//!   `shutdown` only after a grace period.
//!
//! [`Runtime::scheduler_stats`] exports steal/park counters so load tests
//! can assert the stealing actually engages.
//!
//! [`Watchman::get_or_execute_async`]: crate::engine::Watchman::get_or_execute_async

pub mod net;
pub(crate) mod queue;
pub(crate) mod reactor;
mod task;
mod timer;

pub use queue::QueueStats;
pub use task::{JoinError, JoinHandle};
pub use timer::Sleep;

use std::cell::Cell;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

use crate::sync::{Condvar, Mutex};

use queue::RunQueue;
use task::{RunnableTask, TaskFuture};
use timer::TimerEntry;

thread_local! {
    /// Set on worker threads: this thread's worker index plus the address
    /// of the runtime it belongs to.  `schedule` uses it to route
    /// worker-origin wakes into the waking worker's own queue.
    static WORKER_CONTEXT: Cell<Option<(usize, *const ())>> = const { Cell::new(None) };
    /// The task this thread is polling right now (null between polls), so
    /// `schedule` can tell a self-wake (requeue at the FIFO back — yield
    /// semantics) from a wake of another task (LIFO hand-off).
    static POLLING_TASK: Cell<*const ()> = const { Cell::new(std::ptr::null()) };
}

/// The shared core of a [`Runtime`]; workers and task wakers hold it via
/// `Arc`/`Weak` so dropping the `Runtime` handle is what initiates shutdown.
pub(crate) struct RuntimeInner {
    /// The sharded, work-stealing ready set (see `queue.rs`).
    queue: RunQueue<Arc<RunnableTask>>,
    /// Pending [`Sleep`] registrations, earliest deadline first.  Guarded by
    /// its own mutex — never held together with any queue lock.
    timers: Mutex<BinaryHeap<TimerEntry>>,
    /// The earliest timer deadline, as nanoseconds since `epoch`
    /// (`u64::MAX` = no timers), so the worker loop's per-iteration timer
    /// check is one atomic load instead of a heap lock.
    next_timer: AtomicU64,
    /// The runtime's birth instant; anchors the nanosecond timestamps in
    /// `next_timer`.
    epoch: Instant,
    /// Every task ever spawned and possibly still alive (pruned lazily on
    /// spawn).  Shutdown must reach tasks that are suspended with their
    /// waker held *outside* the scheduler — neither the run queues nor the
    /// timer heap references those — so their `JoinHandle`s still resolve
    /// to [`JoinError::Cancelled`] instead of hanging forever.
    tasks: Mutex<Vec<Weak<RunnableTask>>>,
    /// Tasks spawned and not yet finished (completed, panicked or dropped).
    alive: AtomicUsize,
    /// Monotonic tie-breaker for timer-heap entries.
    timer_seq: AtomicUsize,
    /// Set first by [`Runtime::shutdown`], readable everywhere lock-free: a
    /// task polled *during* shutdown drops its future itself (poll
    /// epilogue), closing the race with the cancel sweep; workers exit once
    /// they observe it.
    shutdown: AtomicBool,
}

impl RuntimeInner {
    /// Whether shutdown has begun (lock-free; see the field docs).
    pub(crate) fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Nanoseconds from the runtime's epoch to `instant`, saturating and
    /// reserving `u64::MAX` as the "no deadline" sentinel.
    fn nanos_since_epoch(&self, instant: Instant) -> u64 {
        let nanos = instant.saturating_duration_since(self.epoch).as_nanos();
        nanos.min(u128::from(u64::MAX - 1)) as u64
    }

    /// Enqueues a task for polling.  Called from task wakers; placement
    /// follows the wake (see the [module docs](self)).
    pub(crate) fn schedule(&self, task: Arc<RunnableTask>) {
        if self.is_shutting_down() {
            // Dropping the task here settles its JoinHandle to Cancelled via
            // TaskFuture's Drop if this was the last reference; otherwise
            // the shutdown cancel sweep reaches it through the registry.
            return;
        }
        let me = std::ptr::from_ref(self).cast::<()>();
        let worker = WORKER_CONTEXT
            .with(Cell::get)
            .and_then(|(index, owner)| (owner == me).then_some(index));
        match worker {
            Some(index) => {
                let self_wake = POLLING_TASK.with(Cell::get) == Arc::as_ptr(&task).cast::<()>();
                task.set_last_worker(index);
                if self_wake {
                    self.queue.push_local_fifo(index, task);
                } else {
                    self.queue.push_local_lifo(index, task);
                }
            }
            None => self.queue.push_remote(task.last_worker(), task),
        }
    }

    /// Registers a timer; the waker fires at (or shortly after) `deadline`.
    pub(crate) fn register_timer(&self, deadline: Instant, waker: Waker) {
        let seq = self.timer_seq.fetch_add(1, Ordering::Relaxed);
        let is_earliest = {
            let mut timers = self.timers.lock();
            if self.is_shutting_down() {
                // Resolve immediately rather than strand the sleeper: the
                // waker re-polls the task, which observes the shutdown.
                // (Checked under the timer lock so the entry cannot slip in
                // behind the shutdown sweep's heap clear.)
                drop(timers);
                waker.wake();
                return;
            }
            let is_earliest = timers
                .peek()
                .is_none_or(|earliest| deadline < earliest.deadline);
            timers.push(TimerEntry {
                deadline,
                seq,
                waker,
            });
            if is_earliest {
                self.next_timer
                    .store(self.nanos_since_epoch(deadline), Ordering::Release);
            }
            is_earliest
        };
        if is_earliest {
            // An idle worker may be parked against a later (or no) deadline;
            // wake one so it recomputes its park timeout.
            self.queue.unpark_one();
        }
    }

    /// Pops due timers and fires their wakers (outside the heap lock —
    /// waking re-enters `schedule`).  One atomic load when nothing is due.
    fn fire_due_timers(&self) {
        if self.nanos_since_epoch(Instant::now()) < self.next_timer.load(Ordering::Acquire) {
            return;
        }
        let due = {
            let mut timers = self.timers.lock();
            let now = Instant::now();
            let mut due = Vec::new();
            while timers.peek().is_some_and(|entry| entry.deadline <= now) {
                let entry = timers.pop().expect("peeked entry");
                // Timer-heap lag: how far past its deadline the timer fires.
                crate::telemetry::global()
                    .timer_lag_us
                    .record(now.saturating_duration_since(entry.deadline).as_micros() as u64);
                due.push(entry.waker);
            }
            let next = timers
                .peek()
                .map_or(u64::MAX, |entry| self.nanos_since_epoch(entry.deadline));
            self.next_timer.store(next, Ordering::Release);
            due
        };
        for waker in due {
            waker.wake();
        }
    }

    /// How long a parking worker may sleep before the earliest timer is due.
    fn park_timeout(&self) -> Option<Duration> {
        match self.next_timer.load(Ordering::Acquire) {
            u64::MAX => None,
            next => {
                let now = self.nanos_since_epoch(Instant::now());
                Some(Duration::from_nanos(next.saturating_sub(now)))
            }
        }
    }

    /// Polls `task` with this worker recorded as its placement hint and as
    /// the thread's current poll (self-wake detection).
    fn run_task(&self, index: usize, task: Arc<RunnableTask>) {
        task.set_last_worker(index);
        POLLING_TASK.with(|current| current.set(Arc::as_ptr(&task).cast::<()>()));
        task.run();
        POLLING_TASK.with(|current| current.set(std::ptr::null()));
    }

    fn worker_loop(self: &Arc<Self>, index: usize) {
        WORKER_CONTEXT.with(|context| {
            context.set(Some((index, Arc::as_ptr(self).cast::<()>())));
        });
        loop {
            if self.is_shutting_down() {
                return;
            }
            // Fire due timers first so a busy run queue cannot starve the
            // timer heap indefinitely (one atomic load when nothing is due).
            self.fire_due_timers();
            if let Some(task) = self.queue.pop(index).or_else(|| self.queue.steal(index)) {
                self.run_task(index, task);
                continue;
            }
            // Going idle: register as a parking candidate FIRST, re-scan
            // SECOND — the order that makes the park race-free (a push that
            // missed the registration is seen by this re-scan; a push that
            // saw it grants the permit; see queue.rs).
            self.queue.prepare_park(index);
            if let Some(task) = self.queue.pop(index).or_else(|| self.queue.steal(index)) {
                self.queue.cancel_park(index);
                self.run_task(index, task);
                continue;
            }
            if self.is_shutting_down() {
                self.queue.cancel_park(index);
                return;
            }
            self.queue.park_wait(index, self.park_timeout());
        }
    }
}

/// A hand-rolled multi-threaded executor (see the [module docs](self)).
///
/// Dropping the runtime shuts it down: workers are woken, pending tasks are
/// dropped (their [`JoinHandle`]s resolve to [`JoinError::Cancelled`]) and
/// the worker threads are joined.
///
/// ```
/// use watchman_core::runtime::{block_on, Runtime};
///
/// let runtime = Runtime::with_workers(2);
/// let handle = runtime.spawn(async { 6 * 7 });
/// assert_eq!(block_on(handle).unwrap(), 42);
/// ```
pub struct Runtime {
    inner: Arc<RuntimeInner>,
    /// Behind a mutex so [`Runtime::shutdown`] can join through `&self`
    /// (the runtime is shared via `Arc` between the engine and the server).
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// The configured pool size ([`Runtime::worker_count`] must stay
    /// meaningful after shutdown drains the join handles).
    worker_total: usize,
    /// The IO reactor, started lazily by the first socket registration.
    reactor: Mutex<Option<ReactorHandle>>,
}

struct ReactorHandle {
    reactor: Arc<reactor::Reactor>,
    thread: std::thread::JoinHandle<()>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.worker_total)
            .field("alive_tasks", &self.alive_tasks())
            .finish()
    }
}

impl Runtime {
    /// Creates a runtime with one worker per available CPU core (clamped to
    /// at most 8 — the engine's fetches are disk-bound, not CPU-bound).
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get().min(8));
        Self::with_workers(workers)
    }

    /// Creates a runtime with exactly `workers` worker threads (at least 1).
    ///
    /// One worker yields a deterministic, strictly FIFO executor — useful for
    /// reproducible tests.  Each blocking fetch occupies a worker for its
    /// duration, so size the pool like a multiprogramming level.
    pub fn with_workers(workers: usize) -> Self {
        let worker_total = workers.max(1);
        let inner = Arc::new(RuntimeInner {
            queue: RunQueue::new(worker_total),
            timers: Mutex::new(BinaryHeap::new()),
            next_timer: AtomicU64::new(u64::MAX),
            epoch: Instant::now(),
            tasks: Mutex::new(Vec::new()),
            alive: AtomicUsize::new(0),
            timer_seq: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..worker_total)
            .map(|index| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("watchman-runtime-{index}"))
                    .spawn(move || inner.worker_loop(index))
                    .expect("spawn runtime worker")
            })
            .collect();
        Runtime {
            inner,
            workers: Mutex::new(workers),
            worker_total,
            reactor: Mutex::new(None),
        }
    }

    /// Submits a future for execution and returns a [`JoinHandle`] (itself a
    /// future) for its output.
    ///
    /// Dropping the handle detaches the task; it keeps running.  If the task
    /// panics, the panic is caught by the worker and surfaced through the
    /// handle as [`JoinError::Panicked`].
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let (task, handle) = TaskFuture::package(future, Arc::downgrade(&self.inner));
        self.inner.alive.fetch_add(1, Ordering::AcqRel);
        {
            let mut tasks = self.inner.tasks.lock();
            // Checked under the registry lock: either this registration
            // lands before shutdown's registry take (and the cancel sweep
            // reaches it), or the flag — stored before that take — is
            // visible here and the task is dropped instead of queued.
            if self.inner.is_shutting_down() {
                // Spawning after shutdown: drop the task instead of queueing
                // it into a scheduler that will never poll it.  TaskFuture's
                // drop settles the handle to Cancelled and decrements alive.
                drop(tasks);
                drop(task);
                return handle;
            }
            // Lazy pruning keeps the registry proportional to live tasks.
            if tasks.len() >= 32 && tasks.len() >= 2 * self.alive_tasks() {
                tasks.retain(|task| task.strong_count() > 0);
            }
            tasks.push(Arc::downgrade(&task));
        }
        self.inner.schedule(task);
        handle
    }

    /// Returns a future that resolves once `duration` has elapsed.
    ///
    /// Timers are checked by workers between tasks, so resolution is
    /// best-effort (see the module docs).  If the runtime shuts down first,
    /// the sleep resolves immediately so the sleeping task can observe the
    /// shutdown instead of being stranded.
    pub fn sleep(&self, duration: Duration) -> Sleep {
        Sleep::until(Arc::downgrade(&self.inner), Instant::now() + duration)
    }

    /// The number of spawned tasks that have not yet finished (completed,
    /// panicked, or been dropped at shutdown).  Suspended tasks count.
    pub fn alive_tasks(&self) -> usize {
        self.inner.alive.load(Ordering::Acquire)
    }

    /// The number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.worker_total
    }

    /// Scheduler counters: steals and parks since the runtime started.
    /// Load tests use this to assert work stealing actually engages.
    pub fn scheduler_stats(&self) -> QueueStats {
        self.inner.queue.stats()
    }

    /// Ready tasks currently queued across every worker queue and the
    /// injector (the scheduler backlog).  Sampled for the METRICS
    /// exposition; each queue lock is taken one at a time, so the value is
    /// a consistent-enough gauge, not an atomic snapshot.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.depth()
    }

    pub(crate) fn inner_handle(&self) -> Weak<RuntimeInner> {
        Arc::downgrade(&self.inner)
    }

    /// The runtime's IO reactor, starting its thread on first use.
    pub(crate) fn reactor(&self) -> std::io::Result<Arc<reactor::Reactor>> {
        let mut slot = self.reactor.lock();
        if let Some(handle) = slot.as_ref() {
            return Ok(Arc::clone(&handle.reactor));
        }
        let (reactor, thread) = reactor::Reactor::start()?;
        *slot = Some(ReactorHandle {
            reactor: Arc::clone(&reactor),
            thread,
        });
        Ok(reactor)
    }

    /// Shuts the runtime down through a shared handle: stops the reactor,
    /// wakes every worker, drops all pending tasks (their [`JoinHandle`]s
    /// resolve to [`JoinError::Cancelled`]) and joins the worker threads.
    ///
    /// Idempotent — later calls (including the one from `Drop`) are no-ops.
    /// This exists for callers that share the runtime via `Arc` (the server
    /// shares it with the engine) and need to force-cancel outstanding tasks
    /// without being the last owner.
    pub fn shutdown(&self) {
        // Atomic flag first: a task whose poll is in progress right now
        // observes it in its poll epilogue and drops its own future.
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Drop every queued task and pending timer now: JoinHandles observe
        // Cancelled (via the registry sweep below), and task futures release
        // whatever they captured.
        let drained = self.inner.queue.drain();
        let cleared_timers = std::mem::take(&mut *self.inner.timers.lock());
        self.inner.next_timer.store(u64::MAX, Ordering::Release);
        let tasks = std::mem::take(&mut *self.inner.tasks.lock());
        drop(drained);
        drop(cleared_timers);
        // Grant every park permit — parked or mid-park, no worker sleeps
        // through the flag.
        self.inner.queue.unpark_all();
        // Stop the reactor before cancelling tasks: no new readiness events
        // will arrive while IO futures are being dropped.
        let reactor = self.reactor.lock().take();
        if let Some(handle) = reactor {
            handle.reactor.initiate_shutdown();
            let _ = handle.thread.join();
        }
        // Cancel tasks suspended on *external* wakers too (the clears above
        // cannot reach them).  try_cancel never blocks: a task whose future
        // mutex is held is being polled at this instant — possibly by THIS
        // very thread, when the runtime's last reference is released inside
        // a task — and that poll's epilogue sees the shutdown flag and drops
        // the future itself.
        for task in &tasks {
            if let Some(task) = task.upgrade() {
                task.try_cancel();
            }
        }
        let current = std::thread::current().id();
        let workers = std::mem::take(&mut *self.workers.lock());
        for worker in workers {
            // If the last external reference to an engine (and with it this
            // runtime) is dropped *inside* a task, this drop runs on a worker
            // thread; joining it would deadlock on itself, so detach it.
            if worker.thread().id() != current {
                let _ = worker.join();
            }
        }
        // Second sweep, after the join: the first one may have lost a race
        // with a poll that started before the flag was set.  Every other
        // worker has exited now, so the only mutex try_cancel can still miss
        // is one held by a poll below us on this very stack — and that
        // poll's epilogue (same thread, flag already stored) cleans up.
        for task in tasks {
            if let Some(task) = task.upgrade() {
                task.try_cancel();
            }
        }
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Drives `future` to completion on the calling thread, parking between
/// polls.
///
/// This is the bridge between the synchronous world and the poll-based
/// engine: it needs no runtime of its own (any inner `spawn`s use whatever
/// runtime created them), so it works for futures that are neither `Send`
/// nor `'static`.
///
/// ```
/// use watchman_core::runtime::block_on;
///
/// assert_eq!(block_on(async { 2 + 2 }), 4);
/// ```
pub fn block_on<F: Future>(future: F) -> F::Output {
    struct Parker {
        notified: Mutex<bool>,
        wakeup: Condvar,
    }
    impl std::task::Wake for Parker {
        fn wake(self: Arc<Self>) {
            self.wake_by_ref();
        }
        fn wake_by_ref(self: &Arc<Self>) {
            *self.notified.lock() = true;
            self.wakeup.notify_one();
        }
    }
    thread_local! {
        // One parker per thread, reused across calls: the synchronous engine
        // entry points block_on every lookup, and allocating a fresh waker
        // per hit would show up on the hot path.  Stale wakes from a
        // previous call at worst cause one spurious re-poll, which the loop
        // tolerates.
        static PARKER: Arc<Parker> = Arc::new(Parker {
            notified: Mutex::new(false),
            wakeup: Condvar::new(),
        });
    }
    PARKER.with(|parker| {
        let waker = Waker::from(Arc::clone(parker));
        let mut cx = Context::from_waker(&waker);
        let mut future = std::pin::pin!(future);
        loop {
            if let Poll::Ready(output) = future.as_mut().poll(&mut cx) {
                return output;
            }
            let mut notified = parker.notified.lock();
            while !*notified {
                notified = parker.wakeup.wait(notified);
            }
            *notified = false;
        }
    })
}

/// Yields once: returns `Pending` on the first poll (re-waking immediately)
/// and `Ready` on the second.  Lets cooperative tasks give the FIFO queue a
/// turn; also exercises re-scheduling in tests.
pub fn yield_now() -> impl Future<Output = ()> {
    struct YieldNow {
        yielded: bool,
    }
    impl Future for YieldNow {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.yielded {
                Poll::Ready(())
            } else {
                self.yielded = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }
    YieldNow { yielded: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn block_on_drives_plain_futures() {
        assert_eq!(block_on(async { 1 + 2 }), 3);
        assert_eq!(block_on(yield_now()), ());
    }

    #[test]
    fn spawned_tasks_complete_and_join() {
        let runtime = Runtime::with_workers(2);
        let handles: Vec<_> = (0..16u64)
            .map(|i| runtime.spawn(async move { i * i }))
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            assert_eq!(block_on(handle).unwrap(), (i * i) as u64);
        }
        assert_eq!(runtime.alive_tasks(), 0);
    }

    #[test]
    fn tasks_wake_across_threads() {
        // A task suspends on a hand-rolled one-shot signal completed from a
        // plain OS thread: the waker must carry across threads.
        struct Signal {
            fired: Mutex<Option<u64>>,
            waker: Mutex<Option<Waker>>,
        }
        struct WaitFor(Arc<Signal>);
        impl Future for WaitFor {
            type Output = u64;
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u64> {
                *self.0.waker.lock() = Some(cx.waker().clone());
                match *self.0.fired.lock() {
                    Some(value) => Poll::Ready(value),
                    None => Poll::Pending,
                }
            }
        }
        let runtime = Runtime::with_workers(1);
        let signal = Arc::new(Signal {
            fired: Mutex::new(None),
            waker: Mutex::new(None),
        });
        let handle = runtime.spawn(WaitFor(Arc::clone(&signal)));
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            *signal.fired.lock() = Some(7);
            if let Some(waker) = signal.waker.lock().take() {
                waker.wake();
            }
        });
        assert_eq!(block_on(handle).unwrap(), 7);
    }

    #[test]
    fn panicking_task_reports_through_its_handle_and_spares_the_worker() {
        let runtime = Runtime::with_workers(1);
        let doomed = runtime.spawn(async { panic!("fetch failed") });
        assert_eq!(block_on(doomed).unwrap_err(), JoinError::Panicked);
        // The single worker survived the panic and still runs tasks.
        let ok = runtime.spawn(async { "alive" });
        assert_eq!(block_on(ok).unwrap(), "alive");
    }

    #[test]
    fn an_idle_worker_steals_from_a_blocked_workers_queue() {
        const FOLLOWERS: usize = 8;
        let runtime = Arc::new(Runtime::with_workers(2));
        let runtime_for_task = Arc::clone(&runtime);
        // The flooder spawns followers from inside its own poll — they land
        // in its worker's local queue, not the injector — then wedges that
        // worker in a synchronous sleep.  The followers can only run before
        // the sleep ends if the other worker raids the blocked one's queue,
        // so joining them all proves the steal path and the stats pin it.
        let flooder = runtime.spawn(async move {
            let followers: Vec<_> = (0..FOLLOWERS)
                .map(|i| runtime_for_task.spawn(async move { i }))
                .collect();
            std::thread::sleep(Duration::from_millis(200));
            followers
        });
        let followers = block_on(flooder).unwrap();
        for (i, follower) in followers.into_iter().enumerate() {
            assert_eq!(block_on(follower).unwrap(), i);
        }
        let stats = runtime.scheduler_stats();
        assert!(
            stats.steals > 0,
            "the idle worker never stole from the blocked one: {stats:?}"
        );
    }

    #[test]
    fn sleep_orders_by_deadline() {
        let runtime = Arc::new(Runtime::with_workers(2));
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for (label, millis) in [("slow", 40u64), ("fast", 5), ("mid", 20)] {
            let order = Arc::clone(&order);
            let sleep = runtime.sleep(Duration::from_millis(millis));
            handles.push(runtime.spawn(async move {
                sleep.await;
                order.lock().push(label);
            }));
        }
        for handle in handles {
            block_on(handle).unwrap();
        }
        assert_eq!(*order.lock(), vec!["fast", "mid", "slow"]);
    }

    #[test]
    fn dropping_the_runtime_cancels_pending_tasks() {
        let runtime = Runtime::with_workers(1);
        // A task that sleeps far longer than the test: it must be cancelled,
        // not waited for.
        let sleep = runtime.sleep(Duration::from_secs(3600));
        let parked = runtime.spawn(async move {
            sleep.await;
            42
        });
        // Give the worker a moment to suspend the task on its timer.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(runtime.alive_tasks(), 1);
        drop(runtime);
        assert_eq!(block_on(parked).unwrap_err(), JoinError::Cancelled);
    }

    #[test]
    fn dropping_the_runtime_cancels_tasks_suspended_on_external_wakers() {
        // A task parked on a waker the scheduler does not own (no ready-queue
        // or timer-heap reference): shutdown must still cancel it, or its
        // JoinHandle would hang forever.
        struct Never(Arc<Mutex<Option<Waker>>>);
        impl Future for Never {
            type Output = u64;
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u64> {
                *self.0.lock() = Some(cx.waker().clone());
                Poll::Pending
            }
        }
        let runtime = Runtime::with_workers(1);
        let external = Arc::new(Mutex::new(None));
        let handle = runtime.spawn(Never(Arc::clone(&external)));
        // Wait until the task has suspended (its waker is parked outside).
        let deadline = Instant::now() + Duration::from_secs(5);
        while external.lock().is_none() {
            assert!(Instant::now() < deadline, "task never suspended");
            std::thread::yield_now();
        }
        drop(runtime);
        assert_eq!(block_on(handle).unwrap_err(), JoinError::Cancelled);
        // The externally held waker is now stale; waking it is harmless.
        external.lock().take().unwrap().wake();
    }

    #[test]
    fn dropping_a_join_handle_detaches_the_task() {
        let runtime = Runtime::with_workers(1);
        let ran = Arc::new(AtomicU64::new(0));
        {
            let ran = Arc::clone(&ran);
            drop(runtime.spawn(async move {
                ran.fetch_add(1, Ordering::SeqCst);
            }));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while ran.load(Ordering::SeqCst) == 0 {
            assert!(Instant::now() < deadline, "detached task never ran");
            std::thread::yield_now();
        }
        assert_eq!(runtime.alive_tasks(), 0);
    }

    #[test]
    fn single_worker_runs_tasks_fifo() {
        let runtime = Runtime::with_workers(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..8 {
            let order = Arc::clone(&order);
            handles.push(runtime.spawn(async move {
                order.lock().push(i);
            }));
        }
        for handle in handles {
            block_on(handle).unwrap();
        }
        assert_eq!(*order.lock(), (0..8).collect::<Vec<_>>());
    }
}
