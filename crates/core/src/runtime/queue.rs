//! Sharded run queues with work stealing — the scheduler's data plane.
//!
//! One global injector queue under one mutex (the previous design) makes
//! every spawn, wake and pop serialize on the same cache line; at the
//! connection counts the server targets, workers spend more time queueing
//! than polling.  This module shards the ready set:
//!
//! * **One local queue per worker** — a FIFO [`VecDeque`] plus a one-slot
//!   LIFO — each behind its *own* mutex.  Wakes performed by a worker land
//!   in that worker's queue (the task's state is hot in that core's cache);
//!   the LIFO slot runs the most recently woken task next, which turns a
//!   leader-wakes-follower chain into a cache-friendly hand-off.  A streak
//!   cap bounds LIFO hand-offs so a ping-ponging pair cannot starve the
//!   FIFO behind it.
//! * **A global injector** for submissions with no usable worker hint
//!   (fresh spawns from non-worker threads).  Workers poll it when their
//!   local queue is empty and every [`INJECTOR_INTERVAL`]-th pop regardless,
//!   so remote submissions cannot starve behind a busy local queue.
//! * **Randomized stealing** — a worker that finds nothing locally sweeps
//!   the other workers' queues in xorshift-randomized order and takes half
//!   of a victim's FIFO in one lock hold (one victim lock at a time; queue
//!   locks stay leaves of the lock-order graph, see `CONCURRENCY.md`).
//! * **Permit parkers** — an idle worker parks on its own condvar, not a
//!   shared one, so a wake targets exactly one sleeper (no thundering
//!   herd).  The park protocol is the lost-wakeup-sensitive part and is
//!   verified by the checker's `WorkStealingQueueModel`; the invariant is
//!   documented on [`RunQueue::prepare_park`].
//!
//! The queue is generic over the item type so the checker can drive the
//! exact production code with plain integers (`RunQueue<u32>`) under its
//! controlled scheduler.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::sync::{Condvar, Mutex};

/// Consecutive LIFO-slot hand-offs a worker may take before it must service
/// its FIFO (starvation bound for wake chains).
const LIFO_STREAK_CAP: u8 = 16;

/// Every this-many pops, a worker services the injector *before* its local
/// queue, so remote submissions cannot starve behind local wake traffic.
const INJECTOR_INTERVAL: u32 = 61;

/// The worker-hint value meaning "no usable worker" (submit to the
/// injector).
pub(crate) const NO_WORKER: usize = usize::MAX;

/// One worker's private ready set.
struct LocalSlot<T> {
    /// The most recently woken task; runs next (subject to the streak cap).
    lifo: Option<T>,
    /// Ready tasks in wake order.
    fifo: VecDeque<T>,
    /// Consecutive pops served from the LIFO slot.
    lifo_streak: u8,
    /// Pop counter driving the injector-interval check.
    pops: u32,
}

impl<T> LocalSlot<T> {
    fn take(&mut self) -> Option<T> {
        if self.lifo.is_some() && self.lifo_streak < LIFO_STREAK_CAP {
            self.lifo_streak += 1;
            return self.lifo.take();
        }
        if let Some(item) = self.fifo.pop_front() {
            self.lifo_streak = 0;
            return Some(item);
        }
        self.lifo_streak = 0;
        self.lifo.take()
    }
}

/// One worker's parking place: a permit the unparker grants and the parker
/// consumes.  A permit granted before the park makes the park return
/// immediately — wakes are never lost to the gap between "decided to park"
/// and "parked".
struct Parker {
    permit: Mutex<bool>,
    wakeup: Condvar,
}

/// Counters the scheduler exports ([`super::Runtime::scheduler_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Successful steals (one per victim raid, not per task moved).
    pub steals: u64,
    /// Times a worker parked with nothing to run.
    pub parks: u64,
}

/// The sharded, work-stealing ready set (see the [module docs](self)).
pub(crate) struct RunQueue<T> {
    locals: Vec<Mutex<LocalSlot<T>>>,
    injector: Mutex<VecDeque<T>>,
    /// Workers currently parked (or about to park), in park order.  The
    /// park protocol's ordering hinges on this lock — see
    /// [`RunQueue::prepare_park`].
    idle: Mutex<Vec<usize>>,
    parkers: Vec<Parker>,
    /// Per-worker xorshift state for randomized steal sweeps (atomics, so
    /// stealing needs no lock on the thief's own queue).
    rng: Vec<AtomicU64>,
    steals: AtomicU64,
    parks: AtomicU64,
}

impl<T> RunQueue<T> {
    pub(crate) fn new(workers: usize) -> Self {
        RunQueue {
            locals: (0..workers)
                .map(|_| {
                    Mutex::new(LocalSlot {
                        lifo: None,
                        fifo: VecDeque::new(),
                        lifo_streak: 0,
                        pops: 0,
                    })
                })
                .collect(),
            injector: Mutex::new(VecDeque::new()),
            idle: Mutex::new(Vec::with_capacity(workers)),
            parkers: (0..workers)
                .map(|_| Parker {
                    permit: Mutex::new(false),
                    wakeup: Condvar::new(),
                })
                .collect(),
            rng: (0..workers)
                .map(|index| AtomicU64::new(0x9E37_79B9_7F4A_7C15 ^ (index as u64 + 1)))
                .collect(),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
        }
    }

    pub(crate) fn stats(&self) -> QueueStats {
        QueueStats {
            steals: self.steals.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
        }
    }

    /// Submits to the back of `worker`'s FIFO (a worker re-queueing the task
    /// it is currently polling — yield semantics: everything already queued
    /// runs first).
    pub(crate) fn push_local_fifo(&self, worker: usize, item: T) {
        self.locals[worker].lock().fifo.push_back(item);
        self.unpark_one();
    }

    /// Submits to `worker`'s LIFO slot (a worker waking *another* task: run
    /// it next, its state is hot).  A task already in the slot is demoted to
    /// the FIFO back.
    pub(crate) fn push_local_lifo(&self, worker: usize, item: T) {
        {
            let mut local = self.locals[worker].lock();
            if let Some(displaced) = local.lifo.replace(item) {
                local.fifo.push_back(displaced);
            }
        }
        self.unpark_one();
    }

    /// Submits from outside the worker pool (reactor, external threads,
    /// spawns): to `hint`'s FIFO when the task has run on a worker before
    /// ([`NO_WORKER`] otherwise → the injector), preferring to wake that
    /// same worker.
    pub(crate) fn push_remote(&self, hint: usize, item: T) {
        if hint < self.locals.len() {
            self.locals[hint].lock().fifo.push_back(item);
            self.unpark_preferring(hint);
        } else {
            self.injector.lock().push_back(item);
            self.unpark_one();
        }
    }

    /// Pops the next item for `worker`: LIFO slot (streak-capped), then
    /// FIFO, then the injector — except every [`INJECTOR_INTERVAL`]-th pop,
    /// when the injector is serviced first.
    pub(crate) fn pop(&self, worker: usize) -> Option<T> {
        let injector_first = {
            let mut local = self.locals[worker].lock();
            local.pops = local.pops.wrapping_add(1);
            let injector_first = local.pops.is_multiple_of(INJECTOR_INTERVAL);
            if !injector_first {
                if let Some(item) = local.take() {
                    return Some(item);
                }
            }
            injector_first
        };
        if let Some(item) = self.injector.lock().pop_front() {
            return Some(item);
        }
        if injector_first {
            return self.locals[worker].lock().take();
        }
        None
    }

    /// Raids the other workers' queues in xorshift-randomized order, taking
    /// half of the first non-empty victim's FIFO (and its LIFO slot if the
    /// FIFO is empty — a task must not strand behind a victim stuck in a
    /// blocking poll).  One victim lock at a time; the surplus is re-homed
    /// into the thief's own queue under a *separate*, later lock hold, so
    /// queue locks never nest.
    pub(crate) fn steal(&self, worker: usize) -> Option<T> {
        let n = self.locals.len();
        if n > 1 {
            let start = (self.next_random(worker) % n as u64) as usize;
            for sweep in 0..n {
                let victim = (start + sweep) % n;
                if victim == worker {
                    continue;
                }
                let mut loot: VecDeque<T> = {
                    let mut local = self.locals[victim].lock();
                    if local.fifo.is_empty() {
                        local.lifo.take().into_iter().collect()
                    } else {
                        let keep = local.fifo.len() / 2;
                        local.fifo.split_off(keep)
                    }
                };
                if let Some(first) = loot.pop_front() {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    if !loot.is_empty() {
                        self.locals[worker].lock().fifo.extend(loot);
                    }
                    return Some(first);
                }
            }
        }
        self.injector.lock().pop_front()
    }

    fn next_random(&self, worker: usize) -> u64 {
        // Per-worker xorshift64; single-threaded per slot, so a plain
        // load/store pair is enough.
        let mut x = self.rng[worker].load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng[worker].store(x, Ordering::Relaxed);
        x
    }

    /// Registers `worker` as idle.  **Protocol** (verified by the checker's
    /// `WorkStealingQueueModel`): a worker must `prepare_park`, then re-scan
    /// ([`pop`](Self::pop)/[`steal`](Self::steal)), and only then
    /// [`park_wait`](Self::park_wait); a producer pushes first and takes a
    /// worker off the idle list second.  The idle-list mutex orders the two
    /// sides: either the producer sees the worker idle (and grants its
    /// permit, so the park returns immediately), or the worker registered
    /// *after* the producer's push completed — and its re-scan, which
    /// happens after registration, observes the pushed item.  Either way
    /// the wake cannot be lost.
    pub(crate) fn prepare_park(&self, worker: usize) {
        let mut idle = self.idle.lock();
        if !idle.contains(&worker) {
            idle.push(worker);
        }
    }

    /// Deregisters `worker` after its post-registration re-scan found work.
    /// A permit granted in the meantime is left pending; it costs one
    /// spurious re-scan on the next park, never a lost wake.
    pub(crate) fn cancel_park(&self, worker: usize) {
        self.idle.lock().retain(|idle| *idle != worker);
    }

    /// Consumes `worker`'s pending permit without blocking, if one was
    /// granted.  The checker's model uses this in place of the blocking
    /// [`park_wait`](Self::park_wait).
    pub(crate) fn try_take_permit(&self, worker: usize) -> bool {
        let mut permit = self.parkers[worker].permit.lock();
        std::mem::replace(&mut *permit, false)
    }

    /// Whether `worker` has a pending permit (checker support: the model's
    /// producer mirrors real permit grants onto checker wake flags).
    pub(crate) fn has_permit(&self, worker: usize) -> bool {
        *self.parkers[worker].permit.lock()
    }

    /// Parks `worker` until a permit arrives or `timeout` expires (`None` =
    /// no deadline).  Returns whether a permit was consumed; on timeout the
    /// worker deregisters itself from the idle list.
    pub(crate) fn park_wait(&self, worker: usize, timeout: Option<Duration>) -> bool {
        self.parks.fetch_add(1, Ordering::Relaxed);
        let parker = &self.parkers[worker];
        let granted = {
            let mut permit = parker.permit.lock();
            match timeout {
                None => {
                    while !*permit {
                        permit = parker.wakeup.wait(permit);
                    }
                }
                Some(timeout) => {
                    // One timed wait; a spurious wake just re-scans early.
                    if !*permit {
                        permit = parker.wakeup.wait_timeout(permit, timeout).0;
                    }
                }
            }
            std::mem::replace(&mut *permit, false)
        };
        if !granted {
            // Timed out: the unpark path only grants permits to workers it
            // removed from the idle list, so deregister ourselves.
            self.cancel_park(worker);
        }
        granted
    }

    /// Grants `worker`'s permit and wakes it.
    fn unpark(&self, worker: usize) {
        {
            let mut permit = self.parkers[worker].permit.lock();
            *permit = true;
        }
        self.parkers[worker].wakeup.notify_one();
    }

    /// Wakes one idle worker, if any (also used by the timer path when a
    /// new earliest deadline needs a parked worker to recompute its
    /// timeout).
    pub(crate) fn unpark_one(&self) {
        let target = self.idle.lock().pop();
        if let Some(worker) = target {
            self.unpark(worker);
        }
    }

    /// Wakes `worker` if it is idle, else any other idle worker.
    fn unpark_preferring(&self, worker: usize) {
        let target = {
            let mut idle = self.idle.lock();
            match idle.iter().position(|idle| *idle == worker) {
                Some(position) => Some(idle.remove(position)),
                None => idle.pop(),
            }
        };
        if let Some(worker) = target {
            self.unpark(worker);
        }
    }

    /// Grants every worker's permit, parked or not (shutdown: a worker
    /// between `prepare_park` and `park_wait` must not sleep through it).
    pub(crate) fn unpark_all(&self) {
        for worker in 0..self.parkers.len() {
            self.unpark(worker);
        }
    }

    /// Total ready items across every local queue and the injector — the
    /// scheduler's backlog gauge.  Exposition-only: each queue lock is taken
    /// one at a time (never nested), so the count is a consistent-enough
    /// sample, not an atomic snapshot.
    pub(crate) fn depth(&self) -> usize {
        let mut depth = 0;
        for local in &self.locals {
            let local = local.lock();
            depth += local.fifo.len() + usize::from(local.lifo.is_some());
        }
        depth + self.injector.lock().len()
    }

    /// Empties every queue, returning the drained items (shutdown).
    pub(crate) fn drain(&self) -> Vec<T> {
        let mut drained = Vec::new();
        for local in &self.locals {
            let mut local = local.lock();
            drained.extend(local.lifo.take());
            drained.extend(local.fifo.drain(..));
        }
        drained.extend(self.injector.lock().drain(..));
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_prefers_lifo_then_fifo_then_injector() {
        let queue: RunQueue<u32> = RunQueue::new(2);
        queue.push_remote(NO_WORKER, 3);
        queue.push_local_fifo(0, 2);
        queue.push_local_lifo(0, 1);
        assert_eq!(queue.pop(0), Some(1));
        assert_eq!(queue.pop(0), Some(2));
        assert_eq!(queue.pop(0), Some(3));
        assert_eq!(queue.pop(0), None);
    }

    #[test]
    fn lifo_streak_cap_lets_the_fifo_through() {
        let queue: RunQueue<u32> = RunQueue::new(1);
        queue.push_local_fifo(0, 999);
        for round in 0..u32::from(LIFO_STREAK_CAP) {
            queue.push_local_lifo(0, round);
            assert_eq!(queue.pop(0), Some(round), "hand-off below the cap");
        }
        // The cap is reached: the next pop must service the FIFO even
        // though the LIFO slot is occupied.
        queue.push_local_lifo(0, 1_000);
        assert_eq!(queue.pop(0), Some(999));
        assert_eq!(queue.pop(0), Some(1_000));
    }

    #[test]
    fn displaced_lifo_tasks_demote_to_the_fifo() {
        let queue: RunQueue<u32> = RunQueue::new(1);
        queue.push_local_lifo(0, 1);
        queue.push_local_lifo(0, 2);
        assert_eq!(queue.pop(0), Some(2), "most recent wake runs first");
        assert_eq!(queue.pop(0), Some(1), "displaced task survives in fifo");
    }

    #[test]
    fn injector_interval_services_remote_work_under_local_pressure() {
        let queue: RunQueue<u32> = RunQueue::new(1);
        queue.push_remote(NO_WORKER, 7_777);
        let mut served_remote = 0;
        for _ in 0..(2 * INJECTOR_INTERVAL) {
            queue.push_local_fifo(0, 1);
            if queue.pop(0) == Some(7_777) {
                served_remote += 1;
            }
        }
        assert_eq!(served_remote, 1, "the injector item broke through");
    }

    #[test]
    fn steal_takes_half_of_the_victims_fifo() {
        let queue: RunQueue<u32> = RunQueue::new(2);
        for item in 0..8 {
            queue.push_local_fifo(0, item);
        }
        let stolen = queue.steal(1).expect("victim had work");
        let stats = queue.stats();
        assert_eq!(stats.steals, 1);
        // The thief took the back half: one returned, the rest re-homed.
        let mut thief_side = vec![stolen];
        while let Some(item) = {
            let mut local = queue.locals[1].lock();
            local.fifo.pop_front()
        } {
            thief_side.push(item);
        }
        assert_eq!(thief_side, vec![4, 5, 6, 7]);
        // The victim keeps the front half in order.
        let mut victim_side = Vec::new();
        while let Some(item) = queue.pop(0) {
            victim_side.push(item);
        }
        assert_eq!(victim_side, vec![0, 1, 2, 3]);
    }

    #[test]
    fn permits_granted_before_the_park_are_not_lost() {
        let queue: RunQueue<u32> = RunQueue::new(1);
        queue.prepare_park(0);
        // The producer runs completely before the worker parks.
        queue.push_remote(NO_WORKER, 1);
        // The permit is pending, so the park returns immediately.
        assert!(queue.park_wait(0, None));
        assert_eq!(queue.pop(0), Some(1));
    }

    #[test]
    fn park_timeout_deregisters_the_worker() {
        let queue: RunQueue<u32> = RunQueue::new(1);
        queue.prepare_park(0);
        assert!(!queue.park_wait(0, Some(Duration::from_millis(1))));
        assert!(queue.idle.lock().is_empty(), "timed-out worker left idle");
        assert_eq!(queue.stats().parks, 1);
    }

    #[test]
    fn unpark_preferring_wakes_the_hinted_worker() {
        let queue: RunQueue<u32> = RunQueue::new(3);
        queue.prepare_park(0);
        queue.prepare_park(2);
        queue.push_remote(2, 9);
        assert!(queue.try_take_permit(2), "the hinted worker got the permit");
        assert!(!queue.try_take_permit(0));
        assert_eq!(queue.pop(2), Some(9));
    }
}
