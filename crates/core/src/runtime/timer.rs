//! The runtime's timer heap and the [`Sleep`] future.

use std::future::Future;
use std::pin::Pin;
use std::sync::Weak;
use std::task::{Context, Poll, Waker};
use std::time::Instant;

use super::RuntimeInner;

/// One pending sleep registration in the scheduler's timer heap.
pub(crate) struct TimerEntry {
    pub(crate) deadline: Instant,
    /// Registration order, breaking deadline ties FIFO.
    pub(crate) seq: usize,
    pub(crate) waker: Waker,
}

// BinaryHeap is a max-heap; invert the ordering so the *earliest* deadline
// surfaces first.
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .deadline
            .cmp(&self.deadline)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}

impl Eq for TimerEntry {}

/// A future that resolves once its deadline passes (see
/// [`Runtime::sleep`](super::Runtime::sleep)).
///
/// If the owning runtime is dropped first, the sleep resolves immediately so
/// a sleeping task can observe the shutdown instead of being stranded — a
/// periodic background task should therefore re-check its own shutdown
/// signal after every await.
#[derive(Debug)]
pub struct Sleep {
    deadline: Instant,
    runtime: Weak<RuntimeInner>,
}

impl Sleep {
    pub(crate) fn until(runtime: Weak<RuntimeInner>, deadline: Instant) -> Self {
        Sleep { deadline, runtime }
    }

    /// The instant this sleep resolves at.
    pub fn deadline(&self) -> Instant {
        self.deadline
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.deadline {
            return Poll::Ready(());
        }
        match self.runtime.upgrade() {
            // Re-registering on every poll is safe: a stale entry for a
            // task that was woken early just causes one spurious wake.
            Some(runtime) => {
                runtime.register_timer(self.deadline, cx.waker().clone());
                Poll::Pending
            }
            // Runtime gone: resolve rather than strand the sleeper.
            None => Poll::Ready(()),
        }
    }
}
