//! Signature-indexed entry storage shared by all cache policies (paper §3).
//!
//! WATCHMAN speeds up cache lookup by storing a *signature* (a hash of the
//! query ID) with every cache entry; only entries whose signature matches the
//! looked-up query are compared by exact query-ID match.  [`EntryStore`]
//! packages that scheme as a slab of policy-specific entries plus a
//! signature → entry-id index, so every policy gets collision-safe,
//! allocation-friendly lookups without duplicating the bookkeeping.

use std::collections::HashMap;

use crate::key::QueryKey;

/// A stable handle to an entry inside an [`EntryStore`].
///
/// Ids are reused after removal, so holders must not retain an `EntryId`
/// across a `remove` of that entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntryId(usize);

impl EntryId {
    /// Returns the raw slot index (useful only for diagnostics).
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds an id from a raw slot index, for tests that exercise index
    /// structures without a backing store.
    #[cfg(test)]
    pub(crate) fn from_index_for_tests(index: usize) -> Self {
        EntryId(index)
    }
}

/// Trait implemented by policy entry types so the store can maintain its
/// signature index.
pub trait KeyedEntry {
    /// The query key identifying this entry.
    fn key(&self) -> &QueryKey;
}

/// A slab of entries indexed by query-ID signature.
#[derive(Debug, Clone)]
pub struct EntryStore<E> {
    slots: Vec<Option<E>>,
    free: Vec<usize>,
    /// signature → ids of entries with that signature (normally exactly one).
    index: HashMap<u64, Vec<EntryId>>,
    len: usize,
}

impl<E: KeyedEntry> EntryStore<E> {
    /// Creates an empty store.
    pub fn new() -> Self {
        EntryStore {
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            len: 0,
        }
    }

    /// Creates an empty store with room for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        EntryStore {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            index: HashMap::with_capacity(capacity),
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry and returns its id.
    ///
    /// The caller is responsible for not inserting two entries with the same
    /// key; [`EntryStore::find`] can be used to check first.  If a duplicate
    /// is inserted anyway, lookups will consistently return the first one.
    pub fn insert(&mut self, entry: E) -> EntryId {
        let signature = entry.key().signature().value();
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some(entry);
                slot
            }
            None => {
                self.slots.push(Some(entry));
                self.slots.len() - 1
            }
        };
        let id = EntryId(slot);
        self.index.entry(signature).or_default().push(id);
        self.len += 1;
        id
    }

    /// Finds the id of the entry with the given key, resolving signature
    /// collisions by exact key comparison.
    pub fn find(&self, key: &QueryKey) -> Option<EntryId> {
        let ids = self.index.get(&key.signature().value())?;
        ids.iter()
            .copied()
            .find(|id| self.slots[id.0].as_ref().is_some_and(|e| e.key() == key))
    }

    /// Whether an entry with the given key exists.
    pub fn contains(&self, key: &QueryKey) -> bool {
        self.find(key).is_some()
    }

    /// Returns a reference to the entry with the given key.
    pub fn get(&self, key: &QueryKey) -> Option<&E> {
        self.find(key).and_then(|id| self.by_id(id))
    }

    /// Returns a mutable reference to the entry with the given key.
    pub fn get_mut(&mut self, key: &QueryKey) -> Option<&mut E> {
        let id = self.find(key)?;
        self.by_id_mut(id)
    }

    /// Returns a reference to the entry with the given id.
    pub fn by_id(&self, id: EntryId) -> Option<&E> {
        self.slots.get(id.0).and_then(Option::as_ref)
    }

    /// Returns a mutable reference to the entry with the given id.
    pub fn by_id_mut(&mut self, id: EntryId) -> Option<&mut E> {
        self.slots.get_mut(id.0).and_then(Option::as_mut)
    }

    /// Removes and returns the entry with the given id.
    pub fn remove(&mut self, id: EntryId) -> Option<E> {
        let entry = self.slots.get_mut(id.0)?.take()?;
        let signature = entry.key().signature().value();
        if let Some(ids) = self.index.get_mut(&signature) {
            ids.retain(|&other| other != id);
            if ids.is_empty() {
                self.index.remove(&signature);
            }
        }
        self.free.push(id.0);
        self.len -= 1;
        Some(entry)
    }

    /// Removes and returns the entry with the given key.
    pub fn remove_by_key(&mut self, key: &QueryKey) -> Option<E> {
        let id = self.find(key)?;
        self.remove(id)
    }

    /// Iterates over `(id, entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (EntryId, &E)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|e| (EntryId(i), e)))
    }

    /// Iterates over mutable entries in unspecified order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (EntryId, &mut E)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_mut().map(|e| (EntryId(i), e)))
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.index.clear();
        self.len = 0;
    }
}

impl<E: KeyedEntry> Default for EntryStore<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct TestEntry {
        key: QueryKey,
        payload: u32,
    }

    impl KeyedEntry for TestEntry {
        fn key(&self) -> &QueryKey {
            &self.key
        }
    }

    fn entry(name: &str, payload: u32) -> TestEntry {
        TestEntry {
            key: QueryKey::new(name.to_owned()),
            payload,
        }
    }

    #[test]
    fn insert_find_remove_round_trip() {
        let mut store = EntryStore::new();
        let id = store.insert(entry("q1", 7));
        assert_eq!(store.len(), 1);
        assert_eq!(store.find(&QueryKey::new("q1")), Some(id));
        assert_eq!(store.get(&QueryKey::new("q1")).unwrap().payload, 7);
        let removed = store.remove(id).unwrap();
        assert_eq!(removed.payload, 7);
        assert!(store.is_empty());
        assert_eq!(store.find(&QueryKey::new("q1")), None);
    }

    #[test]
    fn missing_key_is_none() {
        let store: EntryStore<TestEntry> = EntryStore::new();
        assert_eq!(store.find(&QueryKey::new("nope")), None);
        assert!(!store.contains(&QueryKey::new("nope")));
    }

    #[test]
    fn slots_are_reused_after_removal() {
        let mut store = EntryStore::new();
        let a = store.insert(entry("a", 1));
        store.remove(a);
        let b = store.insert(entry("b", 2));
        // The freed slot must be reused so the slab does not grow unboundedly.
        assert_eq!(a.index(), b.index());
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(&QueryKey::new("b")).unwrap().payload, 2);
        assert_eq!(store.get(&QueryKey::new("a")), None);
    }

    #[test]
    fn get_mut_allows_updates() {
        let mut store = EntryStore::new();
        store.insert(entry("q", 1));
        store.get_mut(&QueryKey::new("q")).unwrap().payload = 99;
        assert_eq!(store.get(&QueryKey::new("q")).unwrap().payload, 99);
    }

    #[test]
    fn iter_visits_all_live_entries() {
        let mut store = EntryStore::new();
        store.insert(entry("a", 1));
        let b = store.insert(entry("b", 2));
        store.insert(entry("c", 3));
        store.remove(b);
        let mut payloads: Vec<u32> = store.iter().map(|(_, e)| e.payload).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, vec![1, 3]);
    }

    #[test]
    fn iter_mut_allows_updates() {
        let mut store = EntryStore::new();
        store.insert(entry("a", 1));
        store.insert(entry("b", 2));
        for (_, e) in store.iter_mut() {
            e.payload *= 10;
        }
        assert_eq!(store.get(&QueryKey::new("a")).unwrap().payload, 10);
        assert_eq!(store.get(&QueryKey::new("b")).unwrap().payload, 20);
    }

    #[test]
    fn remove_by_key_works() {
        let mut store = EntryStore::new();
        store.insert(entry("x", 5));
        assert_eq!(store.remove_by_key(&QueryKey::new("x")).unwrap().payload, 5);
        assert!(store.remove_by_key(&QueryKey::new("x")).is_none());
    }

    #[test]
    fn clear_empties_the_store() {
        let mut store = EntryStore::with_capacity(4);
        store.insert(entry("a", 1));
        store.insert(entry("b", 2));
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.find(&QueryKey::new("a")), None);
        // Store remains usable after clear.
        store.insert(entry("c", 3));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn colliding_signatures_are_resolved_by_exact_match() {
        // Force a collision by inserting two entries and then corrupting the
        // index is not possible from outside, so instead verify that two
        // distinct keys that happen to live in the same bucket (same store)
        // are independently retrievable.  This exercises the per-signature
        // Vec path for the normal case and documents the exact-match rule.
        let mut store = EntryStore::new();
        store.insert(entry("q-one", 1));
        store.insert(entry("q-two", 2));
        assert_eq!(store.get(&QueryKey::new("q-one")).unwrap().payload, 1);
        assert_eq!(store.get(&QueryKey::new("q-two")).unwrap().payload, 2);
    }
}
