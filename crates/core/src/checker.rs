//! A loom-lite deterministic interleaving explorer for the engine's
//! concurrency state machines.
//!
//! PRs 3–5 each shipped at least one race that was found only by staring at
//! the code (the `JoinHandle` alive-counter race, the zero-waiter cell leak,
//! the self-deadlocking `Runtime::drop`).  Stress tests shake some of those
//! out, but a stress test samples schedules at random; the bugs above lived
//! in *specific* interleavings a loaded box may never produce.  This module
//! takes the systematic route, in the spirit of loom/CHESS: run a small
//! multi-thread model under a **controlled scheduler** that permits exactly
//! one thread to run between *yield points*, enumerate every reachable
//! schedule by depth-first replay, and assert the model's invariants on each
//! one.
//!
//! ## How it works
//!
//! * A model ([`Model`]) instantiates fresh shared state plus a closure per
//!   model thread.  Threads are real OS threads, but they only execute while
//!   holding the scheduler's token; every instrumented operation on the
//!   [`Ctl`] handle ([`Ctl::point`], [`Ctl::lock`], [`Ctl::wait_flag`], …)
//!   hands the token back.
//! * At each decision point the scheduler computes the *eligible* threads
//!   (ready, or blocked on a lock that is now free / a flag that is now
//!   set), consults the schedule script, and grants the token.  Replaying a
//!   choice prefix and then always taking the first eligible thread makes
//!   runs deterministic, so the explorer can enumerate schedules
//!   depth-first: each run records how many options every decision point
//!   had, and every untaken option becomes a new prefix to explore.
//! * **Deadlocks are detected, not suffered**: a state where unfinished
//!   threads exist but none is eligible is reported with every thread's
//!   block reason.  A thread blocked forever on a wake flag that nobody
//!   will set is precisely a *lost wakeup*, and is labelled as such.
//! * Model threads assert invariants inline (plus a finale check after all
//!   threads finish); panics are caught and reported with the offending
//!   schedule.
//!
//! Virtual locks ([`Ctl::lock`]) only *model* blocking — the scheduler
//! never actually deadlocks the process.  Because exactly one model thread
//! runs at a time, models may also drive **real** engine types (the
//! single-flight model below runs the production [`Flight`] cell) and
//! explore their API-level interleavings safely.
//!
//! The state machines this repo most needs checked ship as built-in
//! models: [`models::SingleFlightModel`] (leader panic → takeover →
//! forget_waiter), [`models::RuntimeDropModel`] (`Runtime::drop` vs a
//! worker mid-poll), [`models::RebalanceModel`] (two-lock capacity
//! transfer vs an atomic stats snapshot),
//! [`models::ReactorRegistrationModel`] (IO-reactor event delivery vs a
//! cancelled task dropping its registration, against the real `ReadyCell`),
//! [`models::WorkStealingQueueModel`] (the run-queue push/steal/park
//! protocol, against the real `RunQueue` — a parked worker nobody wakes
//! while work sits queued is a lost wakeup) and
//! [`models::CircuitBreakerModel`] (the per-shard breaker's trip /
//! half-open / re-close cycle, against the real `CircuitBreaker`).
//! `cargo run -p watchman-core --bin checker` explores all six; see
//! `CONCURRENCY.md`.
//!
//! [`Flight`]: crate::engine::single_flight::Flight

use std::collections::HashMap;
use std::sync::Arc;

use crate::sync::{Condvar, Mutex};

/// Why a parked model thread cannot run right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockReason {
    /// Waiting on a virtual lock currently held by another thread.
    Lock(u64),
    /// Waiting for a wake flag to be set.
    Flag(u64),
}

/// A model thread's scheduling status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Parked at a yield point, eligible to run.
    Ready,
    /// Currently holding the token.
    Running,
    /// Parked, not eligible until the blocking resource frees up.
    Blocked(BlockReason),
    /// Returned (or unwound).
    Finished,
}

/// The scheduler's shared state: one instance per schedule run.
struct CtlState {
    status: Vec<Status>,
    /// The thread currently allowed to run, if any.
    token: Option<usize>,
    /// Virtual lock table: lock id → holding thread.
    holders: HashMap<u64, usize>,
    /// Wake flags (edge state persists until explicitly cleared).
    flags: HashMap<u64, bool>,
    /// A model thread panicked with this message.
    failure: Option<String>,
    /// Tear-down: parked threads unwind instead of waiting for a token.
    abort: bool,
}

struct Controller {
    state: Mutex<CtlState>,
    changed: Condvar,
}

/// The panic payload used to unwind parked model threads at tear-down.
struct AbortToken;

impl Controller {
    fn new(threads: usize) -> Self {
        Controller {
            state: Mutex::new(CtlState {
                // Threads start as Running and park themselves at their
                // startup pause; the scheduler's "everyone parked" wait
                // therefore also covers thread startup.
                status: vec![Status::Running; threads],
                token: None,
                holders: HashMap::new(),
                flags: HashMap::new(),
                failure: None,
                abort: false,
            }),
            changed: Condvar::new(),
        }
    }

    /// Parks thread `me` with the status `classify` derives from current
    /// state, then blocks until the scheduler grants it the token.
    fn pause(&self, me: usize, classify: impl Fn(&CtlState) -> Status) {
        let mut state = self.state.lock();
        debug_assert_eq!(state.status[me], Status::Running);
        state.token = None;
        let parked_as = classify(&state);
        state.status[me] = parked_as;
        self.changed.notify_all();
        loop {
            if state.abort {
                drop(state);
                std::panic::panic_any(AbortToken);
            }
            if state.token == Some(me) {
                state.status[me] = Status::Running;
                return;
            }
            state = self.changed.wait(state);
        }
    }

    fn set_flag_raw(&self, flag: u64) {
        self.state.lock().flags.insert(flag, true);
        // No notify needed: flags are only consulted by the scheduler at
        // decision points, which the setter's own pause/finish triggers.
    }

    /// Marks `me` finished (normally or by panic) and releases the token.
    fn finish(&self, me: usize, panic_message: Option<String>) {
        let mut state = self.state.lock();
        if state.token == Some(me) {
            state.token = None;
        }
        state.status[me] = Status::Finished;
        if let Some(message) = panic_message {
            state.failure.get_or_insert(message);
        }
        self.changed.notify_all();
    }
}

/// A model thread's handle to the controlled scheduler.  Every method that
/// can interleave with other threads is a *yield point*: the token goes back
/// to the scheduler and the thread parks until rescheduled.
pub struct Ctl {
    controller: Arc<Controller>,
    id: usize,
}

impl Ctl {
    /// A plain interleaving point: any eligible thread may run next.
    pub fn point(&self) {
        self.controller.pause(self.id, |_| Status::Ready);
    }

    /// Acquires a virtual lock, blocking (in model time) while another
    /// thread holds it.  One yield point per acquisition.
    pub fn lock(&self, lock: u64) {
        loop {
            self.controller.pause(self.id, |state| {
                if state.holders.contains_key(&lock) {
                    Status::Blocked(BlockReason::Lock(lock))
                } else {
                    Status::Ready
                }
            });
            let mut state = self.controller.state.lock();
            if let std::collections::hash_map::Entry::Vacant(entry) = state.holders.entry(lock) {
                entry.insert(self.id);
                return;
            }
            // The scheduler only grants the token when the lock is free, so
            // this retry is unreachable; loop anyway rather than trust it.
        }
    }

    /// Acquires a virtual lock only if it is free right now (one yield
    /// point either way).  Mirrors `Mutex::try_lock`.
    pub fn try_lock(&self, lock: u64) -> bool {
        self.controller.pause(self.id, |_| Status::Ready);
        let mut state = self.controller.state.lock();
        if let std::collections::hash_map::Entry::Vacant(slot) = state.holders.entry(lock) {
            slot.insert(self.id);
            true
        } else {
            false
        }
    }

    /// Releases a virtual lock this thread holds.
    pub fn unlock(&self, lock: u64) {
        let mut state = self.controller.state.lock();
        let holder = state.holders.remove(&lock);
        assert_eq!(holder, Some(self.id), "unlock of a lock not held");
    }

    /// Sets a wake flag (typically called from a model waker).
    pub fn set_flag(&self, flag: u64) {
        self.controller.set_flag_raw(flag);
    }

    /// Clears a wake flag (re-arming before a poll, like a real waker slot).
    pub fn clear_flag(&self, flag: u64) {
        self.controller.state.lock().flags.insert(flag, false);
    }

    /// Reads a wake flag without yielding.
    pub fn flag(&self, flag: u64) -> bool {
        *self
            .controller
            .state
            .lock()
            .flags
            .get(&flag)
            .unwrap_or(&false)
    }

    /// Blocks (in model time) until the flag is set.  A thread parked here
    /// when no live thread will ever set the flag is a **lost wakeup**; the
    /// scheduler reports it as such.
    pub fn wait_flag(&self, flag: u64) {
        loop {
            self.controller.pause(self.id, |state| {
                if *state.flags.get(&flag).unwrap_or(&false) {
                    Status::Ready
                } else {
                    Status::Blocked(BlockReason::Flag(flag))
                }
            });
            if self.flag(flag) {
                return;
            }
        }
    }

    /// A `std::task::Waker` that sets `flag` when woken — the bridge for
    /// models that drive real poll-based engine types.
    pub fn flag_waker(&self, flag: u64) -> std::task::Waker {
        struct FlagWaker {
            controller: Arc<Controller>,
            flag: u64,
        }
        impl std::task::Wake for FlagWaker {
            fn wake(self: Arc<Self>) {
                self.controller.set_flag_raw(self.flag);
            }
            fn wake_by_ref(self: &Arc<Self>) {
                self.controller.set_flag_raw(self.flag);
            }
        }
        std::task::Waker::from(Arc::new(FlagWaker {
            controller: Arc::clone(&self.controller),
            flag,
        }))
    }
}

/// One instantiation of a model: fresh shared state baked into per-thread
/// closures, plus a finale invariant check run after every thread finishes.
/// A model thread body: runs to completion under the controlled scheduler.
pub type ThreadBody = Box<dyn FnOnce(&Ctl) + Send>;

/// One instantiation of a model: fresh shared state baked into per-thread
/// closures, plus a finale invariant check run after every thread finishes.
pub struct ModelRun {
    /// One closure per model thread, executed under the controlled scheduler.
    pub threads: Vec<ThreadBody>,
    /// Checked after all threads finish; `Err` fails the schedule.
    pub finale: Box<dyn FnOnce() -> Result<(), String> + Send>,
}

/// A concurrency state machine the explorer can enumerate.
pub trait Model {
    /// Short name for reports.
    fn name(&self) -> &'static str;
    /// Creates fresh state and threads for one schedule run.
    fn instantiate(&self) -> ModelRun;
}

/// How a single scheduled run ended.
enum RunOutcome {
    /// All threads finished and the finale check passed.
    Passed,
    /// Invariant violation or deadlock, with a description.
    Violated(String),
}

struct RunResult {
    outcome: RunOutcome,
    /// The eligible-set index taken at each decision point.
    choices: Vec<usize>,
    /// The eligible-set size at each decision point.
    options: Vec<usize>,
}

/// Safety valve against non-terminating models.
const MAX_STEPS: usize = 100_000;

thread_local! {
    /// Set inside model threads so the quiet panic hook knows their panics
    /// are caught and reported by the explorer, not genuine crashes.
    static IN_MODEL_THREAD: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Model panics (invariant asserts, abort-token unwinds) are caught and
/// folded into the exploration report; without this, every violating
/// schedule would also spray a stack trace on stderr.  The hook delegates
/// non-checker panics to whatever hook was installed before.
fn install_quiet_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_MODEL_THREAD.with(std::cell::Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Runs one schedule: replay `prefix`, then always take the first eligible
/// thread, recording every decision point's option count.
fn run_schedule(model: &dyn Model, prefix: &[usize]) -> RunResult {
    install_quiet_panic_hook();
    let run = model.instantiate();
    let thread_count = run.threads.len();
    let controller = Arc::new(Controller::new(thread_count));
    let mut choices = Vec::new();
    let mut options = Vec::new();
    let mut outcome = None;

    std::thread::scope(|scope| {
        for (id, body) in run.threads.into_iter().enumerate() {
            let ctl = Ctl {
                controller: Arc::clone(&controller),
                id,
            };
            scope.spawn(move || {
                IN_MODEL_THREAD.with(|flag| flag.set(true));
                // Every thread starts parked: wait for the first grant.
                ctl.controller.pause(id, |_| Status::Ready);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&ctl)));
                let message = match result {
                    Ok(()) => None,
                    Err(payload) if payload.is::<AbortToken>() => None,
                    Err(payload) => Some(describe_panic(payload.as_ref())),
                };
                ctl.controller.finish(id, message);
            });
        }

        let scheduler_outcome = loop {
            let mut state = controller.state.lock();
            // Wait until the token is free and nobody is running.
            while state.token.is_some() || state.status.contains(&Status::Running) {
                state = controller.changed.wait(state);
            }
            if let Some(failure) = state.failure.take() {
                break RunOutcome::Violated(format!("model thread panicked: {failure}"));
            }
            let unfinished = state
                .status
                .iter()
                .filter(|status| **status != Status::Finished)
                .count();
            if unfinished == 0 {
                break match (run.finale)() {
                    Ok(()) => RunOutcome::Passed,
                    Err(message) => RunOutcome::Violated(format!("finale check failed: {message}")),
                };
            }
            let eligible: Vec<usize> = state
                .status
                .iter()
                .enumerate()
                .filter_map(|(id, status)| match status {
                    Status::Ready => Some(id),
                    Status::Blocked(BlockReason::Lock(lock)) => {
                        (!state.holders.contains_key(lock)).then_some(id)
                    }
                    Status::Blocked(BlockReason::Flag(flag)) => state
                        .flags
                        .get(flag)
                        .copied()
                        .unwrap_or(false)
                        .then_some(id),
                    Status::Running | Status::Finished => None,
                })
                .collect();
            if eligible.is_empty() {
                break RunOutcome::Violated(describe_deadlock(&state));
            }
            if choices.len() >= MAX_STEPS {
                break RunOutcome::Violated(format!(
                    "schedule exceeded {MAX_STEPS} steps without terminating"
                ));
            }
            let step = choices.len();
            let pick = if step < prefix.len() {
                assert!(
                    prefix[step] < eligible.len(),
                    "non-deterministic model: replay prefix no longer fits"
                );
                prefix[step]
            } else {
                0
            };
            choices.push(pick);
            options.push(eligible.len());
            state.token = Some(eligible[pick]);
            drop(state);
            controller.changed.notify_all();
        };

        // Tear down: release any threads still parked (deadlock, panic) so
        // the scope can join them.
        {
            let mut state = controller.state.lock();
            state.abort = true;
        }
        controller.changed.notify_all();
        outcome = Some(scheduler_outcome);
    });

    RunResult {
        outcome: outcome.expect("scheduler loop always sets an outcome"),
        choices,
        options,
    }
}

fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&'static str>() {
        (*message).to_owned()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn describe_deadlock(state: &CtlState) -> String {
    let mut parts = Vec::new();
    let mut lost_wakeup = false;
    for (id, status) in state.status.iter().enumerate() {
        match status {
            Status::Blocked(BlockReason::Lock(lock)) => {
                let holder = state.holders.get(lock);
                parts.push(format!(
                    "thread {id} blocked on lock #{lock} (held by {})",
                    holder.map_or_else(|| "nobody".to_owned(), |h| format!("thread {h}"))
                ));
            }
            Status::Blocked(BlockReason::Flag(flag)) => {
                lost_wakeup = true;
                parts.push(format!(
                    "thread {id} waiting on wake flag #{flag} that no live thread will set \
                     (lost wakeup)"
                ));
            }
            Status::Ready | Status::Running => {
                parts.push(format!("thread {id} unexpectedly {status:?}"));
            }
            Status::Finished => {}
        }
    }
    let kind = if lost_wakeup {
        "lost wakeup / deadlock"
    } else {
        "deadlock"
    };
    format!("{kind}: {}", parts.join("; "))
}

/// The result of exploring one model's schedule space.
#[derive(Debug)]
pub struct Exploration {
    /// The model's name.
    pub name: &'static str,
    /// Distinct schedules executed.
    pub schedules: usize,
    /// Every violation found, as `(schedule, description)`; the schedule is
    /// the choice list to replay it.
    pub violations: Vec<(Vec<usize>, String)>,
    /// Whether the whole schedule space was enumerated (false = the limit
    /// cut exploration short).
    pub exhausted: bool,
}

impl Exploration {
    /// A one-line summary for reports.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} schedules ({}), {} violations",
            self.name,
            self.schedules,
            if self.exhausted {
                "exhaustive"
            } else {
                "bounded"
            },
            self.violations.len()
        )
    }
}

/// Depth-first schedule enumeration with replay, bounded by `limit` runs.
///
/// Every run records the eligible-set size at each decision point; each
/// untaken option spawns a new prefix.  With a deterministic model this
/// enumerates distinct schedules without repetition, exactly once each.
pub fn explore(model: &dyn Model, limit: usize) -> Exploration {
    let mut pending: Vec<Vec<usize>> = vec![Vec::new()];
    let mut schedules = 0;
    let mut violations = Vec::new();
    let mut exhausted = true;
    while let Some(prefix) = pending.pop() {
        if schedules >= limit {
            exhausted = false;
            break;
        }
        let result = run_schedule(model, &prefix);
        schedules += 1;
        if let RunOutcome::Violated(message) = result.outcome {
            violations.push((result.choices.clone(), message));
        }
        // Queue the untaken branches discovered beyond the replayed prefix,
        // deepest first so the DFS finishes subtrees before moving on.
        for step in (prefix.len()..result.options.len()).rev() {
            for alternative in 1..result.options[step] {
                let mut branch = result.choices[..step].to_vec();
                branch.push(alternative);
                pending.push(branch);
            }
        }
    }
    Exploration {
        name: model.name(),
        schedules,
        violations,
        exhausted,
    }
}

pub mod models {
    //! The built-in models: the state machines earlier PRs shipped with
    //! hand-found races, the work-stealing run queue's push/steal/park
    //! protocol, plus a deliberately broken lock-order model that proves
    //! the explorer actually detects deadlocks.

    use super::{Ctl, Model, ModelRun, ThreadBody};
    use crate::engine::single_flight::{Flight, FlightOutcome, LeaderOutcome, WaiterSlot};
    use crate::sync::Mutex;
    use crate::value::ExecutionCost;
    use std::sync::Arc;
    use std::task::{Context, Poll};

    /// Model 1: the single-flight abandonment / takeover protocol, driving
    /// the **real** [`Flight`] cell.
    ///
    /// Thread 0 is the original leader: its fetch fails, so it records the
    /// panic payload, abandons the flight, and then polls as the leader
    /// session expecting to observe its own failure.  Thread 1 is a loyal
    /// waiter: it polls until the flight resolves, and if it wins the
    /// takeover race it completes the flight itself.  Thread 2 is a flaky
    /// waiter: the first time it suspends it gives up (`forget_waiter`),
    /// exercising the candidate-cancellation path that must pass the
    /// takeover wake along rather than lose it.
    ///
    /// Invariants: no schedule deadlocks (in particular, no registered
    /// waiter sleeps through the abandonment — a lost wakeup parks thread 1
    /// forever and the scheduler reports it), and the cell always ends
    /// `Done` with the takeover value.
    pub struct SingleFlightModel;

    /// The value the takeover leader publishes.
    const TAKEOVER_VALUE: u64 = 42;
    /// Wake flags: one per session.
    const FLAG_LEADER: u64 = 100;
    const FLAG_LOYAL: u64 = 101;
    const FLAG_FLAKY: u64 = 102;

    /// Polls `flight` as a waiter until it resolves; completes the flight
    /// when this session wins the takeover race.  Returns the observed value.
    fn drive_waiter(ctl: &Ctl, flight: &Flight<u64>, flag: u64, flaky: bool) -> Option<u64> {
        let waker = ctl.flag_waker(flag);
        let mut cx = Context::from_waker(&waker);
        let mut slot = WaiterSlot::new();
        let mut first_suspension = true;
        loop {
            ctl.clear_flag(flag);
            ctl.point();
            match flight.poll_wait(&mut slot, &mut cx) {
                Poll::Ready(FlightOutcome::Done(value, _)) => return Some(*value),
                Poll::Ready(FlightOutcome::Failed(_)) => {
                    panic!("this model never fails the flight with a fetch error")
                }
                Poll::Ready(FlightOutcome::TakeOver) => {
                    // This session is the new leader: execute and publish.
                    ctl.point();
                    flight.complete(Arc::new(TAKEOVER_VALUE), ExecutionCost::from_blocks(1));
                    return Some(TAKEOVER_VALUE);
                }
                Poll::Pending if flaky && first_suspension => {
                    // Cancelled session: its future is dropped while the
                    // flight is unresolved.
                    ctl.point();
                    flight.forget_waiter(&mut slot);
                    return None;
                }
                Poll::Pending => {
                    first_suspension = false;
                    ctl.wait_flag(flag);
                }
            }
        }
    }

    impl Model for SingleFlightModel {
        fn name(&self) -> &'static str {
            "single-flight leader panic / takeover / forget_waiter"
        }

        fn instantiate(&self) -> ModelRun {
            let flight: Arc<Flight<u64>> = Arc::new(Flight::new());
            let observed: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

            let leader = {
                let flight = Arc::clone(&flight);
                Box::new(move |ctl: &Ctl| {
                    let epoch = flight.new_leader_epoch();
                    ctl.point();
                    // The fetch fails: record the payload, then abandon.
                    flight.set_panic(epoch, Box::new("fetch failed"));
                    ctl.point();
                    flight.abandon();
                    // The leader session observes its own generation's
                    // failure, even if a takeover already completed the cell.
                    let waker = ctl.flag_waker(FLAG_LEADER);
                    let mut cx = Context::from_waker(&waker);
                    loop {
                        ctl.clear_flag(FLAG_LEADER);
                        ctl.point();
                        match flight.poll_leader(epoch, &mut cx) {
                            Poll::Ready(LeaderOutcome::Failed(payload)) => {
                                assert!(
                                    payload.is_some(),
                                    "leader session must observe its recorded panic payload"
                                );
                                return;
                            }
                            Poll::Ready(LeaderOutcome::Done(..)) => {
                                panic!("leader session must observe its own failure, not Done")
                            }
                            Poll::Ready(LeaderOutcome::Error(_)) => {
                                panic!("this model never fails the flight with a fetch error")
                            }
                            Poll::Pending => ctl.wait_flag(FLAG_LEADER),
                        }
                    }
                }) as Box<dyn FnOnce(&Ctl) + Send>
            };

            let loyal = {
                let flight = Arc::clone(&flight);
                let observed = Arc::clone(&observed);
                Box::new(move |ctl: &Ctl| {
                    let value = drive_waiter(ctl, &flight, FLAG_LOYAL, false)
                        .expect("loyal waiter always resolves");
                    observed.lock().push(value);
                }) as Box<dyn FnOnce(&Ctl) + Send>
            };

            let flaky = {
                let flight = Arc::clone(&flight);
                let observed = Arc::clone(&observed);
                Box::new(move |ctl: &Ctl| {
                    if let Some(value) = drive_waiter(ctl, &flight, FLAG_FLAKY, true) {
                        observed.lock().push(value);
                    }
                }) as Box<dyn FnOnce(&Ctl) + Send>
            };

            ModelRun {
                threads: vec![leader, loyal, flaky],
                finale: Box::new(move || {
                    let observed = observed.lock();
                    if observed.iter().any(|value| *value != TAKEOVER_VALUE) {
                        return Err(format!(
                            "a waiter observed a value other than the takeover's: {observed:?}"
                        ));
                    }
                    if observed.is_empty() {
                        return Err("no session ever observed the completed flight".to_owned());
                    }
                    Ok(())
                }),
            }
        }
    }

    /// Model 2: `Runtime::drop` versus a worker mid-poll, mirrored with
    /// checker primitives (the real runtime's threads cannot be scheduled
    /// from outside, so the model re-implements the exact protocol of
    /// `Runtime::drop` + `RunnableTask::run`'s shutdown epilogue:
    /// atomic-flag-first, lock-clear-sweep, non-blocking `try_cancel`,
    /// join, second sweep).
    ///
    /// Task A is being polled by the worker when shutdown starts; task B is
    /// suspended on an external waker.  Invariant: both tasks settle
    /// exactly once (a task settled twice double-decrements the alive
    /// counter; a task never settled leaves its `JoinHandle` hanging
    /// forever — both are the PR 3 bug classes).
    pub struct RuntimeDropModel;

    /// Virtual locks: the scheduler state and each task's future slot.
    const LOCK_SCHED: u64 = 0;
    const LOCK_FUT_A: u64 = 1;
    const LOCK_FUT_B: u64 = 2;
    /// Wake flag: the worker thread exited (models `join`).
    const FLAG_WORKER_DONE: u64 = 200;

    /// The mirrored runtime state (plain data; real mutual exclusion is
    /// provided by the controlled scheduler's virtual locks).
    #[derive(Default)]
    struct DropState {
        shutdown_flag: bool,
        /// `Some` while the task's future exists; dropping it settles.
        future: [bool; 2],
        /// Times each task settled (must end exactly 1 each).
        settled: [u32; 2],
    }

    impl DropState {
        fn cancel(&mut self, task: usize) {
            if self.future[task] {
                self.future[task] = false;
                self.settled[task] += 1;
            }
        }
    }

    impl Model for RuntimeDropModel {
        fn name(&self) -> &'static str {
            "Runtime::drop vs in-flight task poll"
        }

        fn instantiate(&self) -> ModelRun {
            let state = Arc::new(Mutex::new(DropState {
                shutdown_flag: false,
                future: [true, true],
                settled: [0, 0],
            }));

            let dropper = {
                let state = Arc::clone(&state);
                Box::new(move |ctl: &Ctl| {
                    // Runtime::drop, step by step.
                    state.lock().shutdown_flag = true; // atomic flag first
                    ctl.point();
                    ctl.lock(LOCK_SCHED); // clear queues under the lock
                    ctl.unlock(LOCK_SCHED);
                    // First try_cancel sweep: non-blocking on purpose.
                    for lock in [LOCK_FUT_A, LOCK_FUT_B] {
                        if ctl.try_lock(lock) {
                            state.lock().cancel((lock - LOCK_FUT_A) as usize);
                            ctl.unlock(lock);
                        }
                    }
                    // Join the worker.
                    ctl.wait_flag(FLAG_WORKER_DONE);
                    // Second sweep, after the join.
                    for lock in [LOCK_FUT_A, LOCK_FUT_B] {
                        if ctl.try_lock(lock) {
                            state.lock().cancel((lock - LOCK_FUT_A) as usize);
                            ctl.unlock(lock);
                        }
                    }
                }) as Box<dyn FnOnce(&Ctl) + Send>
            };

            let worker = {
                let state = Arc::clone(&state);
                Box::new(move |ctl: &Ctl| {
                    // RunnableTask::run for task A: hold the future-slot
                    // lock across the poll.
                    ctl.lock(LOCK_FUT_A);
                    ctl.point(); // the poll itself (returns Pending)
                    let shutting_down = state.lock().shutdown_flag;
                    if shutting_down {
                        // The poll epilogue: the cancel sweep could not take
                        // our future mutex, so drop the future here.
                        state.lock().cancel(0);
                    }
                    ctl.unlock(LOCK_FUT_A);
                    ctl.point();
                    ctl.set_flag(FLAG_WORKER_DONE); // worker exits
                }) as Box<dyn FnOnce(&Ctl) + Send>
            };

            ModelRun {
                threads: vec![dropper, worker],
                finale: Box::new(move || {
                    let state = state.lock();
                    for (task, count) in state.settled.iter().enumerate() {
                        if *count != 1 {
                            return Err(format!(
                                "task {task} settled {count} times (expected exactly once): \
                                 0 = hung JoinHandle, 2+ = double-settled alive counter"
                            ));
                        }
                    }
                    Ok(())
                }),
            }
        }
    }

    /// Model 3: the rebalancer's two-lock capacity transfer versus a
    /// concurrent all-shard stats snapshot, mirrored with checker
    /// primitives.  Both sides follow the index-order discipline the engine
    /// documents (`CONCURRENCY.md`); the invariant is Σ-capacity
    /// conservation — the snapshot must never observe capacity mid-flight
    /// (the transfer happens under both shard locks), and the total must
    /// still sum after every schedule.
    pub struct RebalanceModel;

    const LOCK_SHARD_0: u64 = 10;
    const LOCK_SHARD_1: u64 = 11;
    const TOTAL_CAPACITY: u64 = 100;

    struct RebalanceState {
        capacity: [u64; 2],
        snapshots: Vec<u64>,
    }

    impl Model for RebalanceModel {
        fn name(&self) -> &'static str {
            "rebalance two-lock transfer vs stats snapshot"
        }

        fn instantiate(&self) -> ModelRun {
            let state = Arc::new(Mutex::new(RebalanceState {
                capacity: [60, 40],
                snapshots: Vec::new(),
            }));

            let rebalancer = {
                let state = Arc::clone(&state);
                Box::new(move |ctl: &Ctl| {
                    // Observe phase: one shard lock at a time.
                    ctl.lock(LOCK_SHARD_0);
                    let donor_has = state.lock().capacity[0];
                    ctl.unlock(LOCK_SHARD_0);
                    ctl.lock(LOCK_SHARD_1);
                    let _recipient_has = state.lock().capacity[1];
                    ctl.unlock(LOCK_SHARD_1);
                    // Transfer phase: both locks, in index order, donor
                    // shrinks and recipient grows under the pair.
                    let step = donor_has.min(10);
                    ctl.lock(LOCK_SHARD_0);
                    ctl.lock(LOCK_SHARD_1);
                    {
                        let mut state = state.lock();
                        state.capacity[0] -= step;
                        ctl.point(); // snapshot must NOT observe this window
                        state.capacity[1] += step;
                    }
                    ctl.unlock(LOCK_SHARD_1);
                    ctl.unlock(LOCK_SHARD_0);
                }) as Box<dyn FnOnce(&Ctl) + Send>
            };

            let snapshotter = {
                let state = Arc::clone(&state);
                Box::new(move |ctl: &Ctl| {
                    // stats_snapshot: all shard locks, in index order, held
                    // simultaneously.
                    ctl.lock(LOCK_SHARD_0);
                    let first = state.lock().capacity[0];
                    ctl.point();
                    ctl.lock(LOCK_SHARD_1);
                    let second = state.lock().capacity[1];
                    let total = first + second;
                    ctl.unlock(LOCK_SHARD_1);
                    ctl.unlock(LOCK_SHARD_0);
                    assert_eq!(
                        total, TOTAL_CAPACITY,
                        "snapshot observed a capacity transfer mid-flight"
                    );
                    state.lock().snapshots.push(total);
                }) as Box<dyn FnOnce(&Ctl) + Send>
            };

            ModelRun {
                threads: vec![rebalancer, snapshotter],
                finale: Box::new(move || {
                    let state = state.lock();
                    let total: u64 = state.capacity.iter().sum();
                    if total != TOTAL_CAPACITY {
                        return Err(format!(
                            "capacity not conserved: {:?} sums to {total}, expected \
                             {TOTAL_CAPACITY}",
                            state.capacity
                        ));
                    }
                    Ok(())
                }),
            }
        }
    }

    /// Model 4: reactor event delivery versus registration drop, driving
    /// the **real** [`ReadyCell`](crate::runtime::reactor::ReadyCell) from
    /// the IO reactor.
    ///
    /// Thread 0 is a session task's read future running the exact net-wrapper
    /// loop: `poll_ready` → non-blocking syscall → tick-checked
    /// `clear_ready` on `WouldBlock`, parking on a waker between edges.  It
    /// tolerates one suspension; if it suspends a *second* time (a spurious
    /// readable edge with no data, e.g. `EPOLLRDHUP`) the task is cancelled —
    /// its future drops, which deregisters the token from the table.  Thread
    /// 1 is the reactor thread delivering two edge events for that token —
    /// one spurious, one carrying data — each time cloning the cell `Arc`
    /// out of the (virtually locked) registration table and calling
    /// `set_ready` strictly after releasing it.
    ///
    /// The schedule space covers exactly the windows `reactor.rs` documents:
    /// an event landing between the syscall and the `clear_ready` (the tick
    /// mismatch must keep the cell ready — losing that edge parks the task
    /// forever and the scheduler reports the lost wakeup), and the
    /// deregister-while-ready race where the reactor has cloned the cell,
    /// the task drops the registration, and `set_ready` then wakes a stale
    /// waker on an orphaned cell (harmless by construction).  Invariants: no
    /// schedule deadlocks, the task either reads exactly once or is
    /// cancelled, and the registration is always gone at the end.
    pub struct ReactorRegistrationModel;

    /// Virtual lock guarding the model's one-entry registration table.
    const LOCK_TABLE: u64 = 20;
    /// Wake flag for the IO task's readiness waker.
    const FLAG_IO: u64 = 300;

    /// How the model's session task ended.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum IoOutcome {
        /// The read completed and the future resolved.
        Read,
        /// The task was cancelled after a second spurious suspension.
        Cancelled,
    }

    impl Model for ReactorRegistrationModel {
        fn name(&self) -> &'static str {
            "reactor event delivery vs registration drop (deregister-while-ready)"
        }

        fn instantiate(&self) -> ModelRun {
            use crate::runtime::reactor::{Dir, ReadyCell};

            // The registration table entry (`Reactor::registrations` has one
            // relevant token here); `None` means deregistered.
            let table: Arc<Mutex<Option<Arc<ReadyCell>>>> =
                Arc::new(Mutex::new(Some(Arc::new(ReadyCell::new()))));
            // Whether the peer's bytes have arrived (what the non-blocking
            // read syscall would observe).
            let data = Arc::new(Mutex::new(false));
            let outcome: Arc<Mutex<Option<IoOutcome>>> = Arc::new(Mutex::new(None));

            let io_task = {
                let table = Arc::clone(&table);
                let data = Arc::clone(&data);
                let outcome = Arc::clone(&outcome);
                Box::new(move |ctl: &Ctl| {
                    let cell = table.lock().clone().expect("registration starts live");
                    let waker = ctl.flag_waker(FLAG_IO);
                    let mut cx = Context::from_waker(&waker);
                    let mut suspensions = 0u32;
                    let finished = loop {
                        ctl.clear_flag(FLAG_IO);
                        ctl.point();
                        match cell.poll_ready(Dir::Read, &mut cx) {
                            Poll::Ready(tick) => {
                                // The non-blocking read attempt.
                                ctl.point();
                                if *data.lock() {
                                    break IoOutcome::Read;
                                }
                                // WouldBlock: clear with the observed tick.
                                // If an event landed since, this must no-op
                                // and the loop retries instead of parking.
                                cell.clear_ready(Dir::Read, tick);
                            }
                            Poll::Pending if suspensions >= 1 => {
                                // A second data-less suspension: the session
                                // is cancelled and its future drops.
                                break IoOutcome::Cancelled;
                            }
                            Poll::Pending => {
                                suspensions += 1;
                                ctl.wait_flag(FLAG_IO);
                            }
                        }
                    };
                    // Registration::drop — remove the table entry.  The
                    // reactor may already hold a clone of the cell.
                    ctl.lock(LOCK_TABLE);
                    let registration = table.lock().take();
                    ctl.unlock(LOCK_TABLE);
                    assert!(
                        registration.is_some(),
                        "nothing else deregisters this token"
                    );
                    *outcome.lock() = Some(finished);
                }) as ThreadBody
            };

            let reactor = {
                let table = Arc::clone(&table);
                let data = Arc::clone(&data);
                Box::new(move |ctl: &Ctl| {
                    // Two edge events for the token: a spurious readable
                    // edge (no data behind it), then the real one.
                    for event in 0..2u32 {
                        if event == 1 {
                            *data.lock() = true;
                            ctl.point();
                        }
                        // Clone out under the table lock, deliver after
                        // dropping it — the deregistration window.
                        ctl.lock(LOCK_TABLE);
                        let cell = table.lock().clone();
                        ctl.unlock(LOCK_TABLE);
                        if let Some(cell) = cell {
                            ctl.point();
                            // May target an orphaned cell by now; must stay
                            // a harmless stale wake either way.
                            cell.set_ready(true, false);
                        }
                    }
                }) as ThreadBody
            };

            ModelRun {
                threads: vec![io_task, reactor],
                finale: Box::new(move || {
                    if table.lock().is_some() {
                        return Err(
                            "registration still in the table after the task ended".to_owned()
                        );
                    }
                    match *outcome.lock() {
                        Some(IoOutcome::Read) => {
                            if !*data.lock() {
                                return Err("task read before the data arrived".to_owned());
                            }
                            Ok(())
                        }
                        Some(IoOutcome::Cancelled) => Ok(()),
                        None => Err("task neither read nor was cancelled".to_owned()),
                    }
                }),
            }
        }
    }

    /// Model 5: the work-stealing scheduler's push/steal/park protocol,
    /// driving the **real** [`RunQueue`](crate::runtime::queue::RunQueue)
    /// from the runtime.
    ///
    /// Two workers and a producer share a `RunQueue<u32>`.  The producer
    /// submits one item to the injector and one with a worker-0 placement
    /// hint; each worker runs the exact worker-loop idle protocol —
    /// pop/steal, then `prepare_park`, then the mandatory *re-scan*, then
    /// park — with the blocking `park_wait` replaced by a checker wake
    /// flag.  Real permit grants are mirrored onto the flags atomically
    /// (within the granting thread's model step), so a schedule where a
    /// worker parks while an item sits unclaimed and no permit is pending
    /// is precisely a **lost wakeup**, and the scheduler reports the parked
    /// thread as such.
    ///
    /// The explored windows are the ones `queue.rs` documents: a push
    /// landing between a worker's `prepare_park` and its re-scan (the
    /// re-scan must find the item), between the re-scan and the park (the
    /// idle-list registration must route the permit to the parked worker),
    /// and a steal racing the victim's own pop (the item must be consumed
    /// exactly once, by exactly one of them).  Invariants: no deadlocks, no
    /// item lost or double-consumed, and the queue drains empty.
    pub struct WorkStealingQueueModel;

    /// Park wake flags, one per model worker.
    const FLAG_PARK: [u64; 2] = [400, 401];
    /// The items the producer submits (distinct, so double-consumption is
    /// visible).
    const QUEUE_ITEMS: [u32; 2] = [11, 22];

    /// Shared tallies for the queue model.
    struct QueueModelState {
        remaining: u32,
        consumed: Vec<u32>,
    }

    /// Consumes `item`; when it was the last one, performs the end-of-run
    /// wake (the real `unpark_all`, mirrored onto both park flags) so
    /// parked workers can observe completion and exit.
    fn queue_model_consume(
        ctl: &Ctl,
        queue: &crate::runtime::queue::RunQueue<u32>,
        state: &Mutex<QueueModelState>,
        item: u32,
    ) {
        let drained = {
            let mut state = state.lock();
            state.consumed.push(item);
            state.remaining -= 1;
            state.remaining == 0
        };
        if drained {
            queue.unpark_all();
            ctl.set_flag(FLAG_PARK[0]);
            ctl.set_flag(FLAG_PARK[1]);
        }
    }

    impl Model for WorkStealingQueueModel {
        fn name(&self) -> &'static str {
            "work-stealing run queue push/steal/park (lost-wakeup hunt)"
        }

        fn instantiate(&self) -> ModelRun {
            use crate::runtime::queue::{RunQueue, NO_WORKER};

            let queue: Arc<RunQueue<u32>> = Arc::new(RunQueue::new(2));
            let state = Arc::new(Mutex::new(QueueModelState {
                remaining: QUEUE_ITEMS.len() as u32,
                consumed: Vec::new(),
            }));

            let producer = {
                let queue = Arc::clone(&queue);
                Box::new(move |ctl: &Ctl| {
                    for (index, item) in QUEUE_ITEMS.into_iter().enumerate() {
                        ctl.point();
                        // One injector submission, one with a worker hint —
                        // both unpark paths.  The real push grants permits;
                        // mirror them onto the checker flags within this
                        // same model step (no yield between), so flag and
                        // permit appear together atomically.
                        let hint = if index == 0 { NO_WORKER } else { 0 };
                        queue.push_remote(hint, item);
                        for (worker, flag) in FLAG_PARK.into_iter().enumerate() {
                            if queue.has_permit(worker) {
                                ctl.set_flag(flag);
                            }
                        }
                    }
                }) as ThreadBody
            };

            let worker = |me: usize| {
                let queue = Arc::clone(&queue);
                let state = Arc::clone(&state);
                Box::new(move |ctl: &Ctl| {
                    loop {
                        ctl.point();
                        if let Some(item) = queue.pop(me).or_else(|| queue.steal(me)) {
                            queue_model_consume(ctl, &queue, &state, item);
                            continue;
                        }
                        // The worker-loop idle protocol, step for step:
                        // register as idle FIRST...
                        ctl.point();
                        queue.prepare_park(me);
                        // ...re-scan SECOND (a push that missed the
                        // registration must be seen here)...
                        ctl.point();
                        if let Some(item) = queue.pop(me).or_else(|| queue.steal(me)) {
                            queue.cancel_park(me);
                            queue_model_consume(ctl, &queue, &state, item);
                            continue;
                        }
                        if state.lock().remaining == 0 {
                            queue.cancel_park(me);
                            return;
                        }
                        // ...and only then park.  The blocking park_wait is
                        // modelled as: consume a pending permit, else wait
                        // on the mirrored flag — a wait nobody will satisfy
                        // is reported by the scheduler as a lost wakeup.
                        ctl.clear_flag(FLAG_PARK[me]);
                        ctl.point();
                        if !queue.try_take_permit(me) {
                            ctl.wait_flag(FLAG_PARK[me]);
                            let _ = queue.try_take_permit(me);
                        }
                    }
                }) as ThreadBody
            };

            ModelRun {
                threads: vec![producer, worker(0), worker(1)],
                finale: Box::new(move || {
                    let state = state.lock();
                    if state.remaining != 0 {
                        return Err(format!(
                            "{} items never consumed (lost in the queues)",
                            state.remaining
                        ));
                    }
                    let mut consumed = state.consumed.clone();
                    consumed.sort_unstable();
                    if consumed != QUEUE_ITEMS {
                        return Err(format!(
                            "items consumed {consumed:?}, expected {QUEUE_ITEMS:?} \
                             (lost or double-consumed)"
                        ));
                    }
                    if !queue.drain().is_empty() {
                        return Err("queue not empty after all items consumed".to_owned());
                    }
                    Ok(())
                }),
            }
        }
    }

    /// Model 6: the per-shard circuit breaker's full transition cycle,
    /// driving the **real** [`CircuitBreaker`] under the virtual shard lock
    /// it lives inside in the engine.
    ///
    /// Thread 0 is a failing session: two fetch episodes (admit under the
    /// shard lock, fetch outside it, record the failure back under the
    /// lock) whose failures trip the breaker.  Thread 1 is a recovering
    /// session: one early success that may or may not land in the rolling
    /// window before the trip, then — once the failer is done — probe
    /// fetches with timestamps past the open interval until the breaker
    /// re-closes.
    ///
    /// Invariants, on every schedule: a refused admit never happens on a
    /// closed breaker (fast-fail is only for open/half-open states); the
    /// breaker always trips (the window math is interleaving-independent);
    /// the recovering session always re-closes it within the probe budget
    /// (a breaker stuck open past its interval would starve every session
    /// on the shard); and the final transition count is exactly
    /// closed → open → half-open → closed.
    ///
    /// [`CircuitBreaker`]: crate::engine::CircuitBreaker
    pub struct CircuitBreakerModel;

    /// The virtual shard lock the breaker lives under.
    const LOCK_BREAKER_SHARD: u64 = 30;
    /// Set once the failing session has recorded both failures.
    const FLAG_FAILER_DONE: u64 = 500;
    /// The model's open interval, in logical microseconds.
    const OPEN_FOR_US: u64 = 100;

    impl Model for CircuitBreakerModel {
        fn name(&self) -> &'static str {
            "circuit breaker trip / half-open probe / re-close"
        }

        fn instantiate(&self) -> ModelRun {
            use crate::clock::Timestamp;
            use crate::engine::{BreakerConfig, BreakerState, CircuitBreaker};

            let breaker = Arc::new(Mutex::new(CircuitBreaker::new(BreakerConfig {
                window: 4,
                failure_threshold: 0.5,
                min_samples: 2,
                open_for_us: OPEN_FOR_US,
                half_open_probes: 2,
            })));

            let failer = {
                let breaker = Arc::clone(&breaker);
                Box::new(move |ctl: &Ctl| {
                    for ts in [10u64, 20] {
                        let now = Timestamp::from_micros(ts);
                        ctl.lock(LOCK_BREAKER_SHARD);
                        let admitted = breaker.lock().admit(now);
                        if !admitted {
                            // Fast-fail is legal only once the trip happened.
                            assert_ne!(
                                breaker.lock().state(),
                                BreakerState::Closed,
                                "a closed breaker refused a fetch"
                            );
                        }
                        ctl.unlock(LOCK_BREAKER_SHARD);
                        if admitted {
                            ctl.point(); // the fetch runs outside the lock
                            ctl.lock(LOCK_BREAKER_SHARD);
                            breaker.lock().record_failure(now);
                            ctl.unlock(LOCK_BREAKER_SHARD);
                        }
                        ctl.point();
                    }
                    ctl.set_flag(FLAG_FAILER_DONE);
                }) as Box<dyn FnOnce(&Ctl) + Send>
            };

            let recoverer = {
                let breaker = Arc::clone(&breaker);
                Box::new(move |ctl: &Ctl| {
                    // An early success: recorded if admitted (the window may
                    // or may not contain it when the trip is evaluated),
                    // skipped if the breaker already tripped.
                    let early = Timestamp::from_micros(15);
                    ctl.lock(LOCK_BREAKER_SHARD);
                    let admitted = breaker.lock().admit(early);
                    if !admitted {
                        assert_ne!(
                            breaker.lock().state(),
                            BreakerState::Closed,
                            "a closed breaker refused a fetch"
                        );
                    }
                    ctl.unlock(LOCK_BREAKER_SHARD);
                    if admitted {
                        ctl.point();
                        ctl.lock(LOCK_BREAKER_SHARD);
                        breaker.lock().record_success(early);
                        ctl.unlock(LOCK_BREAKER_SHARD);
                    }

                    // Recovery: strictly after the failures, with timestamps
                    // past any reachable `until` (failure times ≤ 20, so
                    // until ≤ 20 + OPEN_FOR_US < 200).
                    ctl.wait_flag(FLAG_FAILER_DONE);
                    for probe in 0..6u64 {
                        let now = Timestamp::from_micros(200 + probe * 10);
                        ctl.lock(LOCK_BREAKER_SHARD);
                        if breaker.lock().state() == BreakerState::Closed {
                            ctl.unlock(LOCK_BREAKER_SHARD);
                            return;
                        }
                        let admitted = breaker.lock().admit(now);
                        ctl.unlock(LOCK_BREAKER_SHARD);
                        ctl.point();
                        if admitted {
                            ctl.lock(LOCK_BREAKER_SHARD);
                            breaker.lock().record_success(now);
                            ctl.unlock(LOCK_BREAKER_SHARD);
                            ctl.point();
                        }
                    }
                    let state = breaker.lock().state();
                    assert_eq!(
                        state,
                        BreakerState::Closed,
                        "breaker never re-closed within the probe budget"
                    );
                }) as Box<dyn FnOnce(&Ctl) + Send>
            };

            ModelRun {
                threads: vec![failer, recoverer],
                finale: Box::new(move || {
                    let breaker = breaker.lock();
                    if breaker.state() != BreakerState::Closed {
                        return Err(format!(
                            "breaker finished {} with {} transitions, expected closed",
                            breaker.state(),
                            breaker.transitions()
                        ));
                    }
                    // Half-open is unreachable before the failer finishes
                    // (every pre-recovery timestamp is inside the open
                    // interval), so the only legal history is one trip, one
                    // half-opening, one close.
                    if breaker.transitions() != 3 {
                        return Err(format!(
                            "{} transitions, expected exactly closed → open → half-open → closed",
                            breaker.transitions()
                        ));
                    }
                    Ok(())
                }),
            }
        }
    }

    /// A deliberately broken variant — two threads taking the two shard
    /// locks in **opposite** order — used to prove the explorer actually
    /// finds deadlocks (a checker that reports "0 violations" on everything
    /// is indistinguishable from one that checks nothing).
    pub struct InvertedLockOrderModel;

    impl Model for InvertedLockOrderModel {
        fn name(&self) -> &'static str {
            "inverted lock order (deadlock expected)"
        }

        fn instantiate(&self) -> ModelRun {
            let forward = Box::new(move |ctl: &Ctl| {
                ctl.lock(LOCK_SHARD_0);
                ctl.point();
                ctl.lock(LOCK_SHARD_1);
                ctl.unlock(LOCK_SHARD_1);
                ctl.unlock(LOCK_SHARD_0);
            }) as Box<dyn FnOnce(&Ctl) + Send>;
            let backward = Box::new(move |ctl: &Ctl| {
                ctl.lock(LOCK_SHARD_1);
                ctl.point();
                ctl.lock(LOCK_SHARD_0);
                ctl.unlock(LOCK_SHARD_0);
                ctl.unlock(LOCK_SHARD_1);
            }) as Box<dyn FnOnce(&Ctl) + Send>;
            ModelRun {
                threads: vec![forward, backward],
                finale: Box::new(|| Ok(())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::models::{
        CircuitBreakerModel, InvertedLockOrderModel, ReactorRegistrationModel, RebalanceModel,
        RuntimeDropModel, SingleFlightModel, WorkStealingQueueModel,
    };
    use super::*;

    #[test]
    fn single_flight_model_is_clean() {
        let exploration = explore(&SingleFlightModel, 400);
        assert!(exploration.schedules > 10, "{}", exploration.summary());
        assert!(
            exploration.violations.is_empty(),
            "{}\nfirst violation: {:?}",
            exploration.summary(),
            exploration.violations.first()
        );
    }

    #[test]
    fn runtime_drop_model_is_clean_and_exhaustive() {
        let exploration = explore(&RuntimeDropModel, 5_000);
        assert!(exploration.exhausted, "{}", exploration.summary());
        assert!(
            exploration.violations.is_empty(),
            "{}\nfirst violation: {:?}",
            exploration.summary(),
            exploration.violations.first()
        );
    }

    #[test]
    fn rebalance_model_is_clean_and_exhaustive() {
        let exploration = explore(&RebalanceModel, 5_000);
        assert!(exploration.exhausted, "{}", exploration.summary());
        assert!(
            exploration.violations.is_empty(),
            "{}\nfirst violation: {:?}",
            exploration.summary(),
            exploration.violations.first()
        );
    }

    #[test]
    fn reactor_registration_model_is_clean() {
        let exploration = explore(&ReactorRegistrationModel, 5_000);
        assert!(exploration.schedules > 10, "{}", exploration.summary());
        assert!(
            exploration.violations.is_empty(),
            "{}\nfirst violation: {:?}",
            exploration.summary(),
            exploration.violations.first()
        );
    }

    #[test]
    fn work_stealing_queue_model_is_clean() {
        let exploration = explore(&WorkStealingQueueModel, 4_000);
        assert!(exploration.schedules > 10, "{}", exploration.summary());
        assert!(
            exploration.violations.is_empty(),
            "{}\nfirst violation: {:?}",
            exploration.summary(),
            exploration.violations.first()
        );
    }

    #[test]
    fn circuit_breaker_model_is_clean() {
        let exploration = explore(&CircuitBreakerModel, 5_000);
        assert!(exploration.schedules > 10, "{}", exploration.summary());
        assert!(
            exploration.violations.is_empty(),
            "{}\nfirst violation: {:?}",
            exploration.summary(),
            exploration.violations.first()
        );
    }

    #[test]
    fn explorer_detects_the_seeded_deadlock() {
        let exploration = explore(&InvertedLockOrderModel, 1_000);
        assert!(
            exploration
                .violations
                .iter()
                .any(|(_, message)| message.contains("deadlock")),
            "the inverted-order model must deadlock on some schedule: {}",
            exploration.summary()
        );
    }

    #[test]
    fn replaying_a_violation_schedule_reproduces_it() {
        let exploration = explore(&InvertedLockOrderModel, 1_000);
        let (schedule, _) = exploration.violations.first().expect("deadlock found");
        // Replaying the recorded choices must hit the same violation.
        let replay = run_schedule(&InvertedLockOrderModel, schedule);
        assert!(matches!(replay.outcome, RunOutcome::Violated(_)));
    }
}
