//! A thread-safe wrapper around any cache policy.
//!
//! WATCHMAN is described in the paper as "a library of routines that may be
//! linked with an application" (§3).  In a multiuser warehouse front end
//! several sessions share one retrieved-set cache, so the library provides
//! [`SharedCache`], a mutex-guarded handle that exposes the same operations
//! as [`QueryCache`] but returns owned values (cloned payloads) instead of
//! references, making it safe to use from multiple threads.
//!
//! A single `parking_lot::Mutex` is sufficient here: cache operations are
//! micro- to millisecond-scale while the warehouse queries they save are
//! seconds-scale, so the lock is never the bottleneck (this is measured in
//! the `concurrent_access` benchmark).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::Timestamp;
use crate::key::QueryKey;
use crate::metrics::CacheStats;
use crate::policy::{InsertOutcome, QueryCache};
use crate::value::{CachePayload, ExecutionCost};

/// A cloneable, thread-safe handle to a cache policy.
pub struct SharedCache<V, P> {
    inner: Arc<Mutex<P>>,
    _marker: std::marker::PhantomData<fn() -> V>,
}

impl<V, P> Clone for SharedCache<V, P> {
    fn clone(&self) -> Self {
        SharedCache {
            inner: Arc::clone(&self.inner),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<V, P> std::fmt::Debug for SharedCache<V, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedCache").finish_non_exhaustive()
    }
}

impl<V, P> SharedCache<V, P>
where
    V: CachePayload + Clone,
    P: QueryCache<V>,
{
    /// Wraps a policy in a thread-safe handle.
    pub fn new(policy: P) -> Self {
        SharedCache {
            inner: Arc::new(Mutex::new(policy)),
            _marker: std::marker::PhantomData,
        }
    }

    /// Looks up a retrieved set, returning a clone of the cached payload.
    pub fn get(&self, key: &QueryKey, now: Timestamp) -> Option<V> {
        self.inner.lock().get(key, now).cloned()
    }

    /// Offers a retrieved set for admission.
    pub fn insert(
        &self,
        key: QueryKey,
        value: V,
        cost: ExecutionCost,
        now: Timestamp,
    ) -> InsertOutcome {
        self.inner.lock().insert(key, value, cost, now)
    }

    /// Looks up a retrieved set; on a miss, executes `fetch` to produce the
    /// value and its cost, offers the result for admission and returns it.
    ///
    /// This is the ergonomic entry point for applications: it mirrors the
    /// "check cache, otherwise run the query and offer the result" protocol
    /// in one call.  `fetch` runs *outside* the cache lock so concurrent
    /// sessions are not serialized behind a slow warehouse query.
    pub fn get_or_insert_with<F>(&self, key: &QueryKey, now: Timestamp, fetch: F) -> V
    where
        F: FnOnce() -> (V, ExecutionCost),
    {
        if let Some(hit) = self.get(key, now) {
            return hit;
        }
        let (value, cost) = fetch();
        self.insert(key.clone(), value.clone(), cost, now);
        value
    }

    /// Whether a retrieved set for `key` is currently cached.
    pub fn contains(&self, key: &QueryKey) -> bool {
        self.inner.lock().contains(key)
    }

    /// Number of cached retrieved sets.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Bytes currently in use.
    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().used_bytes()
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.inner.lock().capacity_bytes()
    }

    /// A snapshot of the accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats().clone()
    }

    /// A snapshot of the currently cached keys.
    pub fn cached_keys(&self) -> Vec<QueryKey> {
        self.inner.lock().cached_keys()
    }

    /// Removes every cached set.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// Runs a closure with exclusive access to the underlying policy, for
    /// operations not covered by the convenience methods.
    pub fn with_policy<R>(&self, f: impl FnOnce(&mut P) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::lnc::LncCache;
    use crate::value::SizedPayload;

    fn ts(us: u64) -> Timestamp {
        Timestamp::from_micros(us)
    }

    fn key(name: &str) -> QueryKey {
        QueryKey::new(name.to_owned())
    }

    #[test]
    fn shared_cache_round_trip() {
        let cache = SharedCache::new(LncCache::<SizedPayload>::lnc_ra(10_000));
        assert!(cache.get(&key("q"), ts(1)).is_none());
        cache.insert(key("q"), SizedPayload::new(100), ExecutionCost::from_blocks(50), ts(1));
        assert!(cache.get(&key("q"), ts(2)).is_some());
        assert!(cache.contains(&key("q")));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
        assert_eq!(cache.used_bytes(), 100);
        assert_eq!(cache.capacity_bytes(), 10_000);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.cached_keys(), vec![key("q")]);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn get_or_insert_with_fetches_only_on_miss() {
        let cache = SharedCache::new(LncCache::<SizedPayload>::lnc_ra(10_000));
        let mut fetches = 0;
        let v = cache.get_or_insert_with(&key("q"), ts(1), || {
            fetches += 1;
            (SizedPayload::new(64), ExecutionCost::from_blocks(10))
        });
        assert_eq!(v.size_bytes(), 64);
        let _ = cache.get_or_insert_with(&key("q"), ts(2), || {
            fetches += 1;
            (SizedPayload::new(64), ExecutionCost::from_blocks(10))
        });
        assert_eq!(fetches, 1, "second call must be served from cache");
    }

    #[test]
    fn handles_are_cloneable_and_share_state() {
        let cache = SharedCache::new(LncCache::<SizedPayload>::lnc_ra(10_000));
        let other = cache.clone();
        other.insert(key("q"), SizedPayload::new(10), ExecutionCost::from_blocks(5), ts(1));
        assert!(cache.contains(&key("q")));
    }

    #[test]
    fn concurrent_references_from_multiple_threads() {
        let cache = SharedCache::new(LncCache::<SizedPayload>::lnc_ra(1_000_000));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = cache.clone();
                scope.spawn(move || {
                    for i in 0..250u64 {
                        let name = format!("q{}", (t * 7 + i) % 50);
                        let k = key(&name);
                        let now = ts(t * 1_000 + i);
                        if cache.get(&k, now).is_none() {
                            cache.insert(
                                k,
                                SizedPayload::new(128),
                                ExecutionCost::from_blocks(100),
                                now,
                            );
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.references, 4 * 250 + stats.hits - stats.hits); // references recorded once per get/insert pair
        assert!(stats.references >= 1_000);
        assert!(cache.len() <= 50);
        assert!(cache.used_bytes() <= cache.capacity_bytes());
    }

    #[test]
    fn with_policy_gives_access_to_policy_specifics() {
        let cache = SharedCache::new(LncCache::<SizedPayload>::lnc_ra(1_000));
        cache.insert(key("q"), SizedPayload::new(10), ExecutionCost::from_blocks(5), ts(1));
        let retained = cache.with_policy(|p| p.retained_entries());
        assert_eq!(retained, 0);
        let name = cache.with_policy(|p| p.name());
        assert_eq!(name, "LNC-RA");
    }
}
