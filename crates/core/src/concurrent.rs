//! Deprecated thread-safe wrapper, retained as a shim over the engine.
//!
//! Earlier versions of this library offered [`SharedCache`]: one big mutex
//! around a policy, cloning the whole retrieved set on every hit.  The
//! [`engine`](crate::engine) subsystem supersedes it — sharded locking,
//! `Arc<V>` payload sharing, single-flight miss deduplication and an
//! observer hook — so `SharedCache` is now a thin shim over a **one-shard**
//! [`Watchman`] engine, kept only to ease migration.  New code should use
//! [`Watchman::builder`] directly.

#![allow(deprecated)]

use std::sync::Arc;

use crate::clock::Timestamp;
use crate::engine::{PolicyKind, Watchman};
use crate::key::QueryKey;
use crate::metrics::CacheStats;
use crate::policy::InsertOutcome;
use crate::value::{CachePayload, ExecutionCost};

/// A cloneable, thread-safe cache handle over a single shard.
///
/// Deprecated: this is the old single-mutex API.  [`Watchman`] offers the
/// same operations plus sharding, single-flight misses and cache events.
#[deprecated(
    since = "0.2.0",
    note = "use watchman_core::engine::Watchman, the sharded concurrent engine"
)]
pub struct SharedCache<V> {
    engine: Watchman<V>,
}

impl<V> Clone for SharedCache<V> {
    fn clone(&self) -> Self {
        SharedCache {
            engine: self.engine.clone(),
        }
    }
}

impl<V> std::fmt::Debug for SharedCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedCache").finish_non_exhaustive()
    }
}

impl<V> SharedCache<V>
where
    V: CachePayload + Send + Sync + 'static,
{
    /// Wraps a one-shard engine running `policy` with the given capacity.
    pub fn new(policy: PolicyKind, capacity_bytes: u64) -> Self {
        SharedCache {
            engine: Watchman::builder()
                .shards(1)
                .policy(policy)
                .capacity_bytes(capacity_bytes)
                .build(),
        }
    }

    /// An LNC-RA shared cache with the paper's default configuration.
    pub fn lnc_ra(capacity_bytes: u64) -> Self {
        Self::new(PolicyKind::LNC_RA, capacity_bytes)
    }

    /// The underlying engine, for callers migrating incrementally.
    pub fn engine(&self) -> &Watchman<V> {
        &self.engine
    }

    /// Looks up a retrieved set, returning a shared handle to the payload.
    pub fn get(&self, key: &QueryKey, now: Timestamp) -> Option<Arc<V>> {
        self.engine.get(key, now)
    }

    /// Offers a retrieved set for admission.
    pub fn insert(
        &self,
        key: QueryKey,
        value: V,
        cost: ExecutionCost,
        now: Timestamp,
    ) -> InsertOutcome {
        self.engine.insert(key, value, cost, now)
    }

    /// Looks up a retrieved set; on a miss, executes `fetch` to produce the
    /// value and its cost, offers the result for admission and returns it.
    ///
    /// `fetch` runs outside the cache lock, and concurrent misses on the same
    /// key are deduplicated by the engine's single-flight machinery.
    pub fn get_or_insert_with<F>(&self, key: &QueryKey, now: Timestamp, fetch: F) -> Arc<V>
    where
        F: FnOnce() -> (V, ExecutionCost),
    {
        self.engine.get_or_execute(key, now, fetch).value
    }

    /// Whether a retrieved set for `key` is currently cached.
    pub fn contains(&self, key: &QueryKey) -> bool {
        self.engine.contains(key)
    }

    /// Number of cached retrieved sets.
    pub fn len(&self) -> usize {
        self.engine.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.engine.is_empty()
    }

    /// Bytes currently in use.
    pub fn used_bytes(&self) -> u64 {
        self.engine.used_bytes()
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.engine.capacity_bytes()
    }

    /// A snapshot of the accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.engine.stats()
    }

    /// A snapshot of the currently cached keys.
    pub fn cached_keys(&self) -> Vec<QueryKey> {
        self.engine.cached_keys()
    }

    /// Removes every cached set.
    pub fn clear(&self) {
        self.engine.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::SizedPayload;

    fn ts(us: u64) -> Timestamp {
        Timestamp::from_micros(us)
    }

    fn key(name: &str) -> QueryKey {
        QueryKey::new(name.to_owned())
    }

    #[test]
    fn shared_cache_round_trip() {
        let cache: SharedCache<SizedPayload> = SharedCache::lnc_ra(10_000);
        assert!(cache.get(&key("q"), ts(1)).is_none());
        cache.insert(
            key("q"),
            SizedPayload::new(100),
            ExecutionCost::from_blocks(50),
            ts(1),
        );
        assert!(cache.get(&key("q"), ts(2)).is_some());
        assert!(cache.contains(&key("q")));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
        assert_eq!(cache.used_bytes(), 100);
        assert_eq!(cache.capacity_bytes(), 10_000);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.cached_keys(), vec![key("q")]);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn get_or_insert_with_fetches_only_on_miss() {
        let cache: SharedCache<SizedPayload> = SharedCache::lnc_ra(10_000);
        let mut fetches = 0;
        let v = cache.get_or_insert_with(&key("q"), ts(1), || {
            fetches += 1;
            (SizedPayload::new(64), ExecutionCost::from_blocks(10))
        });
        assert_eq!(v.size_bytes(), 64);
        let _ = cache.get_or_insert_with(&key("q"), ts(2), || {
            fetches += 1;
            (SizedPayload::new(64), ExecutionCost::from_blocks(10))
        });
        assert_eq!(fetches, 1, "second call must be served from cache");
    }

    #[test]
    fn handles_are_cloneable_and_share_state() {
        let cache: SharedCache<SizedPayload> = SharedCache::lnc_ra(10_000);
        let other = cache.clone();
        other.insert(
            key("q"),
            SizedPayload::new(10),
            ExecutionCost::from_blocks(5),
            ts(1),
        );
        assert!(cache.contains(&key("q")));
    }

    #[test]
    fn concurrent_references_from_multiple_threads() {
        let cache: SharedCache<SizedPayload> = SharedCache::lnc_ra(1_000_000);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = cache.clone();
                scope.spawn(move || {
                    for i in 0..250u64 {
                        let name = format!("q{}", (t * 7 + i) % 50);
                        let k = key(&name);
                        let now = ts(t * 1_000 + i);
                        if cache.get(&k, now).is_none() {
                            cache.insert(
                                k,
                                SizedPayload::new(128),
                                ExecutionCost::from_blocks(100),
                                now,
                            );
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert!(stats.references >= 1_000);
        assert!(cache.len() <= 50);
        assert!(cache.used_bytes() <= cache.capacity_bytes());
    }

    #[test]
    fn shim_exposes_its_engine() {
        let cache: SharedCache<SizedPayload> = SharedCache::new(PolicyKind::Lru, 1_000);
        assert_eq!(cache.engine().shard_count(), 1);
        assert_eq!(cache.engine().policy(), PolicyKind::Lru);
    }
}
