//! LRU-K replacement over retrieved sets (O'Neil, O'Neil & Weikum, SIGMOD'93).
//!
//! LRU-K evicts the set whose K-th most recent reference lies furthest in the
//! past (equivalently: the set with the greatest *backward K-distance*).
//! Sets with fewer than K recorded references have infinite backward
//! K-distance and are evicted first, oldest last-reference first.  Like LRU,
//! LRU-K ignores retrieved-set sizes and query execution costs; the paper
//! uses it in the "impact of K" experiment (Figure 3) to isolate the benefit
//! of the multi-reference rate estimate from the benefit of the profit
//! metric.
//!
//! Following the original LRU-K design (and paper §2.4), reference history is
//! retained for a configurable period after eviction so a re-referenced set
//! does not restart with an empty history.
//!
//! The backward-K-distance rank of every entry is kept in an [`OrdIndex`]
//! and re-keyed on each reference, so victim selection is O(log n) instead
//! of the former full scan per eviction.

use std::collections::HashMap;

use crate::clock::Timestamp;
use crate::history::ReferenceHistory;
use crate::index::{EntryId, EntryStore, KeyedEntry};
use crate::key::QueryKey;
use crate::metrics::CacheStats;
use crate::policy::index::{OrdIndex, VictimIndexed};
use crate::policy::{InsertOutcome, QueryCache, RejectReason};
use crate::profit::Profit;
use crate::value::{CachePayload, ExecutionCost};

/// Configuration for [`LruKCache`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LruKConfig {
    /// Cache capacity in bytes.
    pub capacity_bytes: u64,
    /// Number of reference times considered (the `K`).
    pub k: usize,
    /// How long (in microseconds of logical time) reference history is
    /// retained after eviction.  The classical guideline is the Five Minute
    /// Rule; the default is 300 seconds of logical time.
    pub retained_info_period: u64,
    /// Hard bound on retained histories.
    pub max_retained_entries: usize,
}

impl LruKConfig {
    /// LRU-K with the given capacity and window `K`.
    pub fn new(capacity_bytes: u64, k: usize) -> Self {
        LruKConfig {
            capacity_bytes,
            k: k.max(1),
            retained_info_period: 300 * 1_000_000,
            max_retained_entries: 16_384,
        }
    }
}

#[derive(Debug, Clone)]
struct LruKEntry<V> {
    key: QueryKey,
    value: V,
    size_bytes: u64,
    cost: ExecutionCost,
    history: ReferenceHistory,
}

impl<V> KeyedEntry for LruKEntry<V> {
    fn key(&self) -> &QueryKey {
        &self.key
    }
}

#[derive(Debug, Clone)]
struct RetainedHistory {
    history: ReferenceHistory,
    evicted_at: Timestamp,
}

/// A retrieved-set cache with LRU-K replacement.
#[derive(Debug, Clone)]
pub struct LruKCache<V> {
    config: LruKConfig,
    entries: EntryStore<LruKEntry<V>>,
    /// Victim index over backward-K-distance ranks; the victim is
    /// [`OrdIndex::min`].
    distance: OrdIndex<(bool, u64)>,
    retained: HashMap<QueryKey, RetainedHistory>,
    used_bytes: u64,
    stats: CacheStats,
}

impl<V: CachePayload> LruKCache<V> {
    /// Creates an LRU-K cache from a configuration.
    pub fn new(config: LruKConfig) -> Self {
        LruKCache {
            config,
            entries: EntryStore::new(),
            distance: OrdIndex::new(),
            retained: HashMap::new(),
            used_bytes: 0,
            stats: CacheStats::new(),
        }
    }

    /// Creates an LRU-K cache with the given capacity and `K`.
    pub fn with_capacity(capacity_bytes: u64, k: usize) -> Self {
        Self::new(LruKConfig::new(capacity_bytes, k))
    }

    /// The configured `K`.
    pub fn k(&self) -> usize {
        self.config.k
    }

    /// Number of retained (post-eviction) histories currently held.
    pub fn retained_entries(&self) -> usize {
        self.retained.len()
    }

    /// The eviction priority of an entry: entries with fewer than K samples
    /// sort first (ascending by last reference), then entries by ascending
    /// K-th most recent reference time.
    fn victim_rank(entry: &LruKEntry<V>, k: usize) -> (bool, u64) {
        let full = entry.history.sample_count() >= k;
        if full {
            // Oldest retained sample is exactly the K-th most recent one.
            (
                true,
                entry
                    .history
                    .oldest_reference()
                    .map_or(0, |t| t.as_micros()),
            )
        } else {
            (
                false,
                entry.history.last_reference().map_or(0, |t| t.as_micros()),
            )
        }
    }

    /// Records a reference for `id` at `now` (skipping duplicate
    /// timestamps), re-keying its index position.
    fn touch(&mut self, id: EntryId, now: Timestamp) {
        let k = self.config.k;
        if let Some(entry) = self.entries.by_id_mut(id) {
            if entry.history.last_reference() == Some(now) {
                return;
            }
            let old = Self::victim_rank(entry, k);
            entry.history.record(now);
            let new = Self::victim_rank(entry, k);
            if old != new {
                self.distance.update(old, new, id);
            }
        }
    }

    /// The entry LRU-K would evict next (greatest backward K-distance).
    /// Single source of truth for `evict_one` and `min_cached_profit`.
    fn victim(&self) -> Option<EntryId> {
        self.distance.min().map(|(_, id)| id)
    }

    /// The eviction order the pre-index implementation derived by scanning.
    /// Kept as the differential-test oracle.
    #[cfg(test)]
    pub(crate) fn reference_victim_plan(&self, needed: u64) -> Vec<QueryKey> {
        let mut excluded = std::collections::HashSet::new();
        let mut used = self.used_bytes;
        let mut plan = Vec::new();
        while used + needed > self.config.capacity_bytes {
            let Some((id, entry)) = self
                .entries
                .iter()
                .filter(|(id, _)| !excluded.contains(id))
                .min_by_key(|(_, e)| Self::victim_rank(e, self.config.k))
            else {
                break;
            };
            excluded.insert(id);
            used -= entry.size_bytes;
            plan.push(entry.key.clone());
        }
        plan
    }

    /// The eviction order the index would produce, without mutating.
    #[cfg(test)]
    pub(crate) fn indexed_victim_plan(&self, needed: u64) -> Vec<QueryKey> {
        let mut used = self.used_bytes;
        let mut plan = Vec::new();
        for (_, id) in self.distance.iter() {
            if used + needed <= self.config.capacity_bytes {
                break;
            }
            let entry = self.entries.by_id(id).expect("indexed entry is cached");
            used -= entry.size_bytes;
            plan.push(entry.key.clone());
        }
        plan
    }

    fn retain_history(&mut self, key: QueryKey, history: ReferenceHistory, now: Timestamp) {
        if self.retained.len() >= self.config.max_retained_entries {
            self.expire_retained(now);
            if self.retained.len() >= self.config.max_retained_entries {
                return;
            }
        }
        self.retained.insert(
            key,
            RetainedHistory {
                history,
                evicted_at: now,
            },
        );
    }

    /// Drops retained histories older than the configured retention period
    /// (the timeout-based scheme of the original LRU-K paper).
    fn expire_retained(&mut self, now: Timestamp) {
        let period = self.config.retained_info_period;
        self.retained
            .retain(|_, r| now.saturating_since(r.evicted_at) <= period);
    }
}

impl<V: CachePayload> VictimIndexed for LruKCache<V> {
    fn occupied_bytes(&self) -> u64 {
        self.used_bytes
    }

    fn limit_bytes(&self) -> u64 {
        self.config.capacity_bytes
    }

    fn evict_one(&mut self, now: Timestamp) -> Option<QueryKey> {
        let (rank, id) = self.distance.min()?;
        self.distance.remove(rank, id);
        let entry = self.entries.remove(id)?;
        self.used_bytes -= entry.size_bytes;
        self.stats.record_eviction(entry.size_bytes);
        self.retain_history(entry.key.clone(), entry.history, now);
        Some(entry.key)
    }
}

impl<V: CachePayload> QueryCache<V> for LruKCache<V> {
    fn name(&self) -> &'static str {
        "LRU-K"
    }

    fn get(&mut self, key: &QueryKey, now: Timestamp) -> Option<&V> {
        if let Some(id) = self.entries.find(key) {
            // Same-timestamp dedupe happens in `touch`: a retried logical
            // reference may already be in the history via a promoted
            // retained one.
            self.touch(id, now);
            let cost = self.entries.by_id(id).map(|e| e.cost).unwrap_or_default();
            self.stats.record_hit(cost);
            return self.entries.by_id(id).map(|e| &e.value);
        }
        if let Some(retained) = self.retained.get_mut(key) {
            // Skip duplicate timestamps: a single-flight waiter retrying after
            // an abandoned flight re-issues the same logical reference.
            if retained.history.last_reference() != Some(now) {
                retained.history.record(now);
            }
        }
        None
    }

    fn insert(
        &mut self,
        key: QueryKey,
        value: V,
        cost: ExecutionCost,
        now: Timestamp,
    ) -> InsertOutcome {
        let size_bytes = value.size_bytes();
        self.stats.record_miss(cost);

        if let Some(id) = self.entries.find(&key) {
            if let Some(entry) = self.entries.by_id_mut(id) {
                let old = entry.size_bytes;
                entry.value = value;
                entry.cost = cost;
                entry.size_bytes = size_bytes;
                self.used_bytes = self.used_bytes - old + size_bytes;
            }
            self.touch(id, now);
            // Restore the capacity invariant if the refreshed payload grew.
            let evicted = self.evict_for(0, now);
            return InsertOutcome::AlreadyCached { evicted };
        }

        if self.config.capacity_bytes == 0 {
            self.stats.record_admission(false);
            return InsertOutcome::Rejected(RejectReason::ZeroCapacity);
        }
        if size_bytes > self.config.capacity_bytes {
            self.stats.record_admission(false);
            return InsertOutcome::Rejected(RejectReason::TooLarge);
        }

        self.expire_retained(now);
        let history = match self.retained.remove(&key) {
            Some(mut retained) => {
                if retained.history.last_reference() != Some(now) {
                    retained.history.record(now);
                }
                retained.history
            }
            None => ReferenceHistory::with_first_reference(self.config.k, now),
        };

        let evicted = self.evict_for(size_bytes, now);
        let entry = LruKEntry {
            key,
            value,
            size_bytes,
            cost,
            history,
        };
        let rank = Self::victim_rank(&entry, self.config.k);
        let id = self.entries.insert(entry);
        self.distance.insert(rank, id);
        self.used_bytes += size_bytes;
        self.stats.record_admission(true);
        InsertOutcome::Admitted { evicted }
    }

    fn remove(&mut self, key: &QueryKey) -> bool {
        match self.entries.find(key) {
            Some(id) => {
                let entry = self.entries.remove(id).expect("found entry is live");
                self.distance
                    .remove(Self::victim_rank(&entry, self.config.k), id);
                // Invalidation discards reference history: the update that
                // triggered it may have changed the set entirely.
                self.retained.remove(key);
                self.used_bytes -= entry.size_bytes;
                true
            }
            None => false,
        }
    }

    fn peek(&self, key: &QueryKey) -> Option<&V> {
        self.entries.get(key).map(|entry| &entry.value)
    }

    fn contains(&self, key: &QueryKey) -> bool {
        self.entries.contains(key)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    fn capacity_bytes(&self) -> u64 {
        self.config.capacity_bytes
    }

    fn set_capacity_bytes(&mut self, capacity_bytes: u64, now: Timestamp) -> Vec<QueryKey> {
        self.config.capacity_bytes = capacity_bytes;
        // Shrinking below occupancy evicts by greatest backward K-distance,
        // retaining the victims' histories like any other eviction.
        self.evict_for(0, now)
    }

    fn min_cached_profit(&mut self, _now: Timestamp) -> Option<Profit> {
        // LRU-K's next victim is the greatest-backward-K-distance set; report
        // its estimated profit (Eq. 6) since LRU-K ignores cost and size.
        self.victim()
            .and_then(|id| self.entries.by_id(id))
            .map(|e| Profit::estimated(e.cost, e.size_bytes))
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn record_coalesced_reference(&mut self, cost: ExecutionCost) {
        self.stats.record_coalesced(cost);
    }

    fn record_error_reference(&mut self) {
        self.stats.record_fetch_error();
    }

    fn record_stale_reference(&mut self, cost: ExecutionCost) {
        self.stats.record_stale(cost);
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.distance.clear();
        self.retained.clear();
        self.used_bytes = 0;
    }

    fn cached_keys(&self) -> Vec<QueryKey> {
        self.entries.iter().map(|(_, e)| e.key.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::SizedPayload;

    fn ts(us: u64) -> Timestamp {
        Timestamp::from_micros(us)
    }

    fn key(name: &str) -> QueryKey {
        QueryKey::new(name.to_owned())
    }

    fn insert(
        cache: &mut LruKCache<SizedPayload>,
        name: &str,
        size: u64,
        now: u64,
    ) -> InsertOutcome {
        cache.insert(
            key(name),
            SizedPayload::new(size),
            ExecutionCost::from_blocks(10),
            ts(now),
        )
    }

    #[test]
    fn k_equals_one_behaves_like_lru() {
        let mut cache = LruKCache::with_capacity(300, 1);
        insert(&mut cache, "a", 100, 1);
        insert(&mut cache, "b", 100, 2);
        insert(&mut cache, "c", 100, 3);
        cache.get(&key("a"), ts(4));
        let outcome = insert(&mut cache, "d", 100, 5);
        assert_eq!(outcome.evicted(), &[key("b")]);
    }

    #[test]
    fn entries_with_incomplete_history_are_evicted_first() {
        let mut cache = LruKCache::with_capacity(300, 2);
        insert(&mut cache, "seasoned", 100, 1);
        cache.get(&key("seasoned"), ts(2)); // now has 2 samples
        insert(&mut cache, "rookie1", 100, 3);
        insert(&mut cache, "rookie2", 100, 4);
        // Evict one: rookies (1 sample) must go before "seasoned", and the
        // older rookie goes first.
        let outcome = insert(&mut cache, "new", 100, 5);
        assert_eq!(outcome.evicted(), &[key("rookie1")]);
        assert!(cache.contains(&key("seasoned")));
    }

    #[test]
    fn full_histories_compared_by_kth_reference() {
        let mut cache = LruKCache::with_capacity(200, 2);
        // "x": references at 1 and 10 → 2nd most recent = 1.
        insert(&mut cache, "x", 100, 1);
        cache.get(&key("x"), ts(10));
        // "y": references at 5 and 6 → 2nd most recent = 5.
        insert(&mut cache, "y", 100, 5);
        cache.get(&key("y"), ts(6));
        // Victim must be "x" (older K-th reference) even though its most
        // recent reference (10) is newer than y's (6) — the defining
        // difference between LRU and LRU-K.
        let outcome = insert(&mut cache, "z", 100, 20);
        assert_eq!(outcome.evicted(), &[key("x")]);
        assert!(cache.contains(&key("y")));
    }

    #[test]
    fn retained_history_survives_eviction_and_reinsert() {
        let mut cache = LruKCache::with_capacity(100, 2);
        insert(&mut cache, "a", 100, 1);
        cache.get(&key("a"), ts(2));
        // Evict "a" by inserting "b".
        let outcome = insert(&mut cache, "b", 100, 3);
        assert_eq!(outcome.evicted(), &[key("a")]);
        assert_eq!(cache.retained_entries(), 1);
        // Re-reference "a": its retained history plus the new reference give
        // it a full history immediately.
        assert!(cache.get(&key("a"), ts(4)).is_none());
        insert(&mut cache, "a", 100, 4);
        let entry_samples = {
            // "a" is cached again; check through public behaviour: evicting
            // now should prefer nothing with incomplete history.
            cache.len()
        };
        assert_eq!(entry_samples, 1);
        assert!(cache.contains(&key("a")));
    }

    #[test]
    fn duplicate_timestamp_misses_record_once_in_retained_history() {
        // A single-flight waiter retrying after an abandoned flight re-issues
        // the same logical reference; the retained history must count it once.
        let mut cache = LruKCache::with_capacity(100, 4);
        insert(&mut cache, "a", 100, 1);
        insert(&mut cache, "b", 100, 2); // evicts a, retains its history
        assert!(cache.get(&key("a"), ts(5)).is_none());
        assert!(cache.get(&key("a"), ts(5)).is_none()); // the retry
        let samples = cache
            .retained
            .get(&key("a"))
            .unwrap()
            .history
            .sample_count();
        assert_eq!(samples, 2, "insert-time + one miss, not two");
    }

    #[test]
    fn retained_history_expires_after_period() {
        let mut config = LruKConfig::new(100, 2);
        config.retained_info_period = 10;
        let mut cache: LruKCache<SizedPayload> = LruKCache::new(config);
        insert(&mut cache, "a", 100, 1);
        insert(&mut cache, "b", 100, 2); // evicts a, retains its history
        assert_eq!(cache.retained_entries(), 1);
        // Far in the future the retained history must be gone.
        insert(&mut cache, "c", 100, 1_000);
        assert_eq!(
            cache.retained_entries(),
            1,
            "only b's fresh eviction is retained"
        );
        assert!(!cache.retained.contains_key(&key("a")));
    }

    #[test]
    fn rejects_oversized_sets() {
        let mut cache = LruKCache::with_capacity(100, 2);
        assert_eq!(
            insert(&mut cache, "big", 500, 1),
            InsertOutcome::Rejected(RejectReason::TooLarge)
        );
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut cache = LruKCache::with_capacity(1_000, 2);
        assert!(cache.get(&key("a"), ts(1)).is_none());
        insert(&mut cache, "a", 100, 1);
        assert!(cache.get(&key("a"), ts(2)).is_some());
        // One miss (counted at insert time) plus one hit.
        assert_eq!(cache.stats().references, 2);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn used_bytes_bounded_by_capacity() {
        let mut cache = LruKCache::with_capacity(1_000, 3);
        for i in 0..200u64 {
            let name = format!("q{}", i % 23);
            insert(&mut cache, &name, 80 + (i % 7) * 50, i + 1);
            assert!(cache.used_bytes() <= cache.capacity_bytes());
        }
    }

    #[test]
    fn clear_resets_state() {
        let mut cache = LruKCache::with_capacity(200, 2);
        insert(&mut cache, "a", 100, 1);
        insert(&mut cache, "b", 150, 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
        assert_eq!(cache.retained_entries(), 0);
    }
}
