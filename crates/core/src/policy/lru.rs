//! Vanilla LRU over whole retrieved sets — the paper's primary baseline.
//!
//! Every referenced retrieved set is admitted (there is no admission
//! control); when space is needed, the least recently used sets are evicted
//! until the newcomer fits.  Reference rate, size-relative value and
//! execution cost play no role in the decision, which is exactly why LRU
//! underperforms on decision-support workloads (paper §4.2).

use std::collections::BTreeMap;

use crate::clock::Timestamp;
use crate::index::{EntryId, EntryStore, KeyedEntry};
use crate::key::QueryKey;
use crate::metrics::CacheStats;
use crate::policy::{InsertOutcome, QueryCache, RejectReason};
use crate::profit::Profit;
use crate::value::{CachePayload, ExecutionCost};

#[derive(Debug, Clone)]
struct LruEntry<V> {
    key: QueryKey,
    value: V,
    size_bytes: u64,
    cost: ExecutionCost,
    /// Recency sequence number; larger = more recently used.
    tick: u64,
}

impl<V> KeyedEntry for LruEntry<V> {
    fn key(&self) -> &QueryKey {
        &self.key
    }
}

/// A retrieved-set cache with least-recently-used replacement.
#[derive(Debug)]
pub struct LruCache<V> {
    capacity_bytes: u64,
    entries: EntryStore<LruEntry<V>>,
    /// tick → entry id, ordered oldest first.
    recency: BTreeMap<u64, EntryId>,
    next_tick: u64,
    used_bytes: u64,
    stats: CacheStats,
}

impl<V: CachePayload> LruCache<V> {
    /// Creates an LRU cache with the given capacity in bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        LruCache {
            capacity_bytes,
            entries: EntryStore::new(),
            recency: BTreeMap::new(),
            next_tick: 0,
            used_bytes: 0,
            stats: CacheStats::new(),
        }
    }

    fn bump(&mut self, id: EntryId) {
        let tick = self.next_tick;
        self.next_tick += 1;
        if let Some(entry) = self.entries.by_id_mut(id) {
            let old = entry.tick;
            entry.tick = tick;
            self.recency.remove(&old);
            self.recency.insert(tick, id);
        }
    }

    /// The entry LRU would evict next (the oldest recency tick).  Single
    /// source of truth for `evict_for` and `min_cached_profit`.
    fn victim(&self) -> Option<(u64, EntryId)> {
        self.recency.iter().next().map(|(&tick, &id)| (tick, id))
    }

    /// Evicts least-recently-used entries until at least `needed` bytes are
    /// free.  Returns the evicted keys.
    fn evict_for(&mut self, needed: u64) -> Vec<QueryKey> {
        let mut evicted = Vec::new();
        while self.used_bytes + needed > self.capacity_bytes {
            let Some((tick, id)) = self.victim() else {
                break;
            };
            self.recency.remove(&tick);
            if let Some(entry) = self.entries.remove(id) {
                self.used_bytes -= entry.size_bytes;
                self.stats.record_eviction(entry.size_bytes);
                evicted.push(entry.key);
            }
        }
        evicted
    }
}

impl<V: CachePayload> QueryCache<V> for LruCache<V> {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn get(&mut self, key: &QueryKey, _now: Timestamp) -> Option<&V> {
        match self.entries.find(key) {
            Some(id) => {
                self.bump(id);
                let cost = self.entries.by_id(id).map(|e| e.cost).unwrap_or_default();
                self.stats.record_hit(cost);
                self.entries.by_id(id).map(|e| &e.value)
            }
            None => None,
        }
    }

    fn insert(
        &mut self,
        key: QueryKey,
        value: V,
        cost: ExecutionCost,
        _now: Timestamp,
    ) -> InsertOutcome {
        let size_bytes = value.size_bytes();
        self.stats.record_miss(cost);

        if let Some(id) = self.entries.find(&key) {
            if let Some(entry) = self.entries.by_id_mut(id) {
                let old = entry.size_bytes;
                entry.value = value;
                entry.cost = cost;
                entry.size_bytes = size_bytes;
                self.used_bytes = self.used_bytes - old + size_bytes;
            }
            self.bump(id);
            // Restore the capacity invariant if the refreshed payload grew.
            let evicted = self.evict_for(0);
            return InsertOutcome::AlreadyCached { evicted };
        }

        if self.capacity_bytes == 0 {
            self.stats.record_admission(false);
            return InsertOutcome::Rejected(RejectReason::ZeroCapacity);
        }
        if size_bytes > self.capacity_bytes {
            self.stats.record_admission(false);
            return InsertOutcome::Rejected(RejectReason::TooLarge);
        }

        let evicted = self.evict_for(size_bytes);
        let tick = self.next_tick;
        self.next_tick += 1;
        let id = self.entries.insert(LruEntry {
            key,
            value,
            size_bytes,
            cost,
            tick,
        });
        self.recency.insert(tick, id);
        self.used_bytes += size_bytes;
        self.stats.record_admission(true);
        InsertOutcome::Admitted { evicted }
    }

    fn remove(&mut self, key: &QueryKey) -> bool {
        match self.entries.remove_by_key(key) {
            Some(entry) => {
                self.recency.remove(&entry.tick);
                self.used_bytes -= entry.size_bytes;
                true
            }
            None => false,
        }
    }

    fn contains(&self, key: &QueryKey) -> bool {
        self.entries.contains(key)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    fn set_capacity_bytes(&mut self, capacity_bytes: u64, _now: Timestamp) -> Vec<QueryKey> {
        self.capacity_bytes = capacity_bytes;
        // Shrinking below occupancy evicts least-recently-used sets first.
        self.evict_for(0)
    }

    fn min_cached_profit(&self, _now: Timestamp) -> Option<Profit> {
        // LRU's next victim is the least recently used set; report its
        // estimated profit (Eq. 6) since LRU keeps no rate estimate.
        let (_, id) = self.victim()?;
        self.entries
            .by_id(id)
            .map(|e| Profit::estimated(e.cost, e.size_bytes))
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn record_coalesced_reference(&mut self, cost: ExecutionCost) {
        self.stats.record_coalesced(cost);
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.recency.clear();
        self.used_bytes = 0;
    }

    fn cached_keys(&self) -> Vec<QueryKey> {
        self.entries.iter().map(|(_, e)| e.key.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::SizedPayload;

    fn ts(us: u64) -> Timestamp {
        Timestamp::from_micros(us)
    }

    fn key(name: &str) -> QueryKey {
        QueryKey::new(name.to_owned())
    }

    fn insert(
        cache: &mut LruCache<SizedPayload>,
        name: &str,
        size: u64,
        now: u64,
    ) -> InsertOutcome {
        cache.insert(
            key(name),
            SizedPayload::new(size),
            ExecutionCost::from_blocks(10),
            ts(now),
        )
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut cache = LruCache::new(300);
        insert(&mut cache, "a", 100, 1);
        insert(&mut cache, "b", 100, 2);
        insert(&mut cache, "c", 100, 3);
        // Touch "a" so "b" becomes the LRU victim.
        assert!(cache.get(&key("a"), ts(4)).is_some());
        let outcome = insert(&mut cache, "d", 100, 5);
        assert!(outcome.is_admitted());
        assert_eq!(outcome.evicted(), &[key("b")]);
        assert!(cache.contains(&key("a")));
        assert!(cache.contains(&key("c")));
        assert!(cache.contains(&key("d")));
    }

    #[test]
    fn large_insert_evicts_multiple_victims() {
        let mut cache = LruCache::new(300);
        insert(&mut cache, "a", 100, 1);
        insert(&mut cache, "b", 100, 2);
        insert(&mut cache, "c", 100, 3);
        let outcome = insert(&mut cache, "big", 250, 4);
        assert!(outcome.is_admitted());
        assert_eq!(outcome.evicted().len(), 3);
        assert_eq!(cache.len(), 1);
        assert!(cache.used_bytes() <= 300);
    }

    #[test]
    fn admits_everything_regardless_of_cost() {
        // LRU has no admission control: a cheap huge set displaces everything.
        let mut cache = LruCache::new(1_000);
        for i in 0..10 {
            let name = format!("agg{i}");
            cache.insert(
                key(&name),
                SizedPayload::new(100),
                ExecutionCost::from_blocks(1_000),
                ts(i + 1),
            );
        }
        let outcome = cache.insert(
            key("cheap-projection"),
            SizedPayload::new(1_000),
            ExecutionCost::from_blocks(1),
            ts(100),
        );
        assert!(outcome.is_admitted());
        assert_eq!(outcome.evicted().len(), 10);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn hit_updates_recency_and_stats() {
        let mut cache = LruCache::new(500);
        insert(&mut cache, "a", 100, 1);
        assert!(cache.get(&key("a"), ts(2)).is_some());
        assert!(cache.get(&key("missing"), ts(3)).is_none());
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().references, 2);
    }

    #[test]
    fn rejects_oversized_and_zero_capacity() {
        let mut cache = LruCache::new(100);
        assert_eq!(
            insert(&mut cache, "big", 200, 1),
            InsertOutcome::Rejected(RejectReason::TooLarge)
        );
        let mut zero = LruCache::new(0);
        assert_eq!(
            insert(&mut zero, "any", 1, 1),
            InsertOutcome::Rejected(RejectReason::ZeroCapacity)
        );
    }

    #[test]
    fn already_cached_refreshes_size() {
        let mut cache = LruCache::new(500);
        insert(&mut cache, "a", 100, 1);
        let outcome = insert(&mut cache, "a", 200, 2);
        assert_eq!(outcome, InsertOutcome::already_cached());
        assert_eq!(cache.used_bytes(), 200);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_resets_contents() {
        let mut cache = LruCache::new(500);
        insert(&mut cache, "a", 100, 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
        insert(&mut cache, "b", 100, 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn used_bytes_never_exceeds_capacity() {
        let mut cache = LruCache::new(1_000);
        for i in 0..300u64 {
            let name = format!("q{}", i % 41);
            insert(&mut cache, &name, 60 + (i % 11) * 40, i);
            assert!(cache.used_bytes() <= cache.capacity_bytes());
        }
    }
}
